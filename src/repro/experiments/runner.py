"""The experiment runner: sharded execution, artifact cache, resume.

:class:`ExperimentRunner` drives any :class:`~repro.experiments.spec.ExperimentSpec`
through :func:`repro.parallel.parallel_map`:

- **Sharding** — the tasks of *every requested experiment* are
  flattened into one list and fanned across worker processes together,
  so 26 mostly-single-task experiments still saturate a multi-core box;
  shard results are merged back per experiment in task order, making
  every output worker-count independent.
- **Caching** — a merged result is serialized to a JSON artifact whose
  name is content-addressed by ``(experiment id, canonical params, code
  fingerprint)``.  Any parameter or source change misses the cache; the
  fingerprint covers every ``.py`` file of the :mod:`repro` package.
- **Resume** — with ``resume=True`` the runner serves cache hits
  instead of recomputing, so a crashed or repeated ``repro report``
  only pays for what is missing.  Artifacts are written as each
  experiment merges, not at the end of the batch.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..parallel import parallel_map, resolve_workers
from .harness import ExperimentResult, encode_value
from .spec import ExperimentSpec

__all__ = [
    "ARTIFACT_SCHEMA",
    "ExperimentRunner",
    "ResultCache",
    "RunRecord",
    "RunSummary",
    "artifact_document",
    "code_fingerprint",
    "result_from_json",
    "result_to_json",
    "run_spec",
]

#: bump when the artifact document layout changes
ARTIFACT_SCHEMA = 1

_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Part of every cache key: an artifact computed by different code is
    never served, however equal its parameters.  Computed once per
    process (the tree is ~60 small files).
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


def result_to_json(result: Any) -> dict[str, Any]:
    """Serialize a merged experiment result to its artifact document."""
    # deferred import: figures.py builds specs, so it imports this module
    from .figures import FigureOutput

    if isinstance(result, (ExperimentResult, FigureOutput)):
        return result.to_json()
    raise TypeError(
        f"cannot serialize experiment result of type {type(result).__name__}"
    )


def result_from_json(doc: Mapping[str, Any]) -> Any:
    """Inverse of :func:`result_to_json`."""
    from .figures import FigureOutput

    kind = doc.get("kind")
    if kind == "table":
        return ExperimentResult.from_json(doc)
    if kind == "figure":
        return FigureOutput.from_json(doc)
    raise ValueError(f"unknown artifact kind {kind!r}")


def canonical_params(params: Mapping[str, Any]) -> str:
    """Key-stable JSON encoding of a resolved parameter dict."""
    return json.dumps(encode_value(dict(params)), sort_keys=True)


def artifact_document(
    spec: ExperimentSpec, params: Mapping[str, Any], result: Any
) -> dict[str, Any]:
    """The JSON artifact for one merged result.

    The same document the cache stores and ``repro run --json`` writes:
    schema, provenance (id/title/module/params/fingerprint), result.
    """
    return {
        "schema": ARTIFACT_SCHEMA,
        "experiment": spec.id,
        "title": spec.title,
        "module": spec.module,
        "params": json.loads(canonical_params(params)),
        "fingerprint": code_fingerprint(),
        "result": result_to_json(result),
    }


class ResultCache:
    """Content-addressed on-disk store of experiment artifacts."""

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def key(self, spec: ExperimentSpec, params: Mapping[str, Any]) -> str:
        payload = json.dumps(
            {
                "schema": ARTIFACT_SCHEMA,
                "experiment": spec.id,
                "params": json.loads(canonical_params(params)),
                "fingerprint": code_fingerprint(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def path(self, spec: ExperimentSpec, params: Mapping[str, Any]) -> Path:
        # the id prefix is for humans browsing the cache dir; the hash
        # alone addresses the content
        return self.root / f"{spec.id}-{self.key(spec, params)[:20]}.json"

    def load(self, spec: ExperimentSpec, params: Mapping[str, Any]) -> Any:
        """The cached result, or ``None`` on a miss / unreadable artifact."""
        path = self.path(spec, params)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if doc.get("schema") != ARTIFACT_SCHEMA:
            return None
        try:
            return result_from_json(doc["result"])
        except (KeyError, ValueError):
            return None

    def store(self, spec: ExperimentSpec, params: Mapping[str, Any], result: Any) -> Path:
        path = self.path(spec, params)
        self.root.mkdir(parents=True, exist_ok=True)
        doc = artifact_document(spec, params, result)
        tmp = path.with_suffix(".tmp")
        # no sort_keys: row dicts are insertion-ordered (column order)
        tmp.write_text(json.dumps(doc, indent=1) + "\n")
        tmp.replace(path)
        return path


@dataclass
class RunRecord:
    """One experiment's outcome within a runner batch."""

    experiment_id: str
    params: dict[str, Any]
    result: Any
    cached: bool
    tasks: int
    seconds: float
    artifact: Optional[Path] = None


@dataclass
class RunSummary:
    """Outcome of a runner batch, in request order."""

    records: list[RunRecord]
    seconds: float = 0.0

    @property
    def computed(self) -> int:
        return sum(1 for r in self.records if not r.cached)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.cached)

    def results(self) -> dict[str, Any]:
        return {r.experiment_id: r.result for r in self.records}

    def render(self) -> str:
        n = len(self.records)
        shards = sum(r.tasks for r in self.records if not r.cached)
        return (
            f"{n} experiment{'s' if n != 1 else ''}: "
            f"{self.computed} computed ({shards} shards), "
            f"cache hits: {self.cache_hits}/{n} "
            f"in {self.seconds:.1f}s"
        )


def _execute_spec_task(payload: tuple[str, Any]) -> Any:
    """Run one shard of one spec (top-level: pickles into workers).

    Only the experiment id and the task payload travel to the worker;
    the spec's functions are re-resolved from the worker's own import
    of the registry.
    """
    spec_id, task = payload
    from . import SPEC_REGISTRY  # deferred: the package imports us

    return SPEC_REGISTRY[spec_id].run_task(task)


class ExperimentRunner:
    """Drive specs through ``parallel_map`` with caching and resume.

    ``progress`` is called with each experiment id as its record is
    opened (cache hits included), mirroring the historical
    ``generate_report`` callback contract.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache_dir: Optional[str | Path] = None,
        resume: bool = False,
        progress: Optional[Callable[[str], None]] = None,
    ):
        self.workers = workers
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.resume = resume
        self.progress = progress

    def run(
        self,
        spec: ExperimentSpec,
        overrides: Optional[Mapping[str, Any]] = None,
        profile: Optional[str] = None,
    ) -> Any:
        """Run one spec; the merged result."""
        summary = self.run_many([(spec, overrides)], profile=profile)
        return summary.records[0].result

    def run_many(
        self,
        requests: Sequence[tuple[ExperimentSpec, Optional[Mapping[str, Any]]]],
        profile: Optional[str] = None,
    ) -> RunSummary:
        """Run a batch of specs, fanning all their shards together.

        Cache hits (under ``resume``) are served first; the remaining
        experiments' tasks are flattened into one ``parallel_map`` call,
        then merged and stored per experiment in request order.
        """
        started = time.perf_counter()
        serial = resolve_workers(self.workers) <= 1
        resolved: list[tuple[ExperimentSpec, dict[str, Any]]] = [
            (spec, spec.resolve(overrides, profile=profile))
            for spec, overrides in requests
        ]

        records: dict[str, RunRecord] = {}
        pending: list[tuple[ExperimentSpec, dict[str, Any], list[Any]]] = []
        flat: list[tuple[str, Any]] = []
        for spec, params in resolved:
            if self.progress is not None:
                self.progress(spec.id)
            if self.resume and self.cache is not None:
                hit = self.cache.load(spec, params)
                if hit is not None:
                    records[spec.id] = RunRecord(
                        experiment_id=spec.id,
                        params=params,
                        result=hit,
                        cached=True,
                        tasks=0,
                        seconds=0.0,
                        artifact=self.cache.path(spec, params),
                    )
                    continue
            tasks = spec.tasks(params)
            if serial:
                # compute right here (experiment by experiment, artifact
                # written as each completes — a crash resumes from them)
                records[spec.id] = self._merge_and_store(
                    spec, params, tasks, [spec.run_task(t) for t in tasks]
                )
            else:
                pending.append((spec, params, tasks))
                flat.extend((spec.id, task) for task in tasks)

        if pending:
            # one flat wave: the shards of every pending experiment fan
            # across the pool together, merged back per experiment in
            # task order afterwards
            shard_results = parallel_map(
                _execute_spec_task, flat, workers=self.workers
            )
            cursor = 0
            for spec, params, tasks in pending:
                shard = shard_results[cursor : cursor + len(tasks)]
                cursor += len(tasks)
                records[spec.id] = self._merge_and_store(spec, params, tasks, shard)

        ordered = [records[spec.id] for spec, _params in resolved]
        return RunSummary(records=ordered, seconds=time.perf_counter() - started)

    def _merge_and_store(
        self,
        spec: ExperimentSpec,
        params: dict[str, Any],
        tasks: list[Any],
        shard: list[Any],
    ) -> RunRecord:
        t0 = time.perf_counter()
        result = spec.merge(params, shard)
        artifact = self.cache.store(spec, params, result) if self.cache else None
        return RunRecord(
            experiment_id=spec.id,
            params=params,
            result=result,
            cached=False,
            tasks=len(tasks),
            seconds=time.perf_counter() - t0,
            artifact=artifact,
        )


def run_spec(
    spec: ExperimentSpec,
    overrides: Optional[Mapping[str, Any]] = None,
    workers: Optional[int] = None,
    profile: Optional[str] = None,
) -> Any:
    """One-shot uncached run — the back-compat ``run_*`` wrapper path.

    Serial by default, byte-identical to the historical direct call;
    ``workers`` shards multi-task specs exactly as their old
    ``workers=`` keyword did.
    """
    return ExperimentRunner(workers=workers).run(spec, overrides, profile=profile)
