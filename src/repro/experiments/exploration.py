"""Experiment X5: hill-climbing falsification attempt on the bounds.

Starting from random and adversarial seeds, the explorer mutates
instances to maximise each algorithm's measured ratio under a µ cap.
The experiment's assertions are the interesting part: if the search ever
pushed First Fit past µ+4 (or Next Fit past 2µ+1), the reproduction
would have falsified the theory.  It never does — and the ratios it
*does* reach show how much of the bound the search can realise without
hand-crafted gadgets.
"""

from __future__ import annotations

from ..adversary.explorer import explore_worst_case
from ..algorithms import make_algorithm
from ..workloads.adversarial import universal_lower_bound
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["WORST_CASE_SPEC", "run_worst_case_search"]


def _worst_case_search(
    mu: float = 4.0,
    iterations: int = 120,
    targets: tuple[str, ...] = ("first-fit", "next-fit", "best-fit"),
    seeds: tuple[int, ...] = (0, 1),
) -> ExperimentResult:
    """Explore from a random seed and from the universal gadget."""
    exp = ExperimentResult(
        "X5",
        f"Hill-climbing worst-case search at µ ≤ {mu:g}",
        notes=(
            "found_ratio is the best ratio the mutation search reached;\n"
            "bound is the algorithm's analytic ceiling at this µ.  A\n"
            "found_ratio above its bound would falsify the theory."
        ),
    )
    starts = {
        "random": lambda s: poisson_workload(
            18, seed=s, mu_target=mu, arrival_rate=2.0
        ),
        "gadget": lambda s: universal_lower_bound(8, mu),
    }
    bounds = {
        "first-fit": mu + 4.0,
        "next-fit": 2.0 * mu + 1.0,
        "best-fit": float("inf"),
    }
    for name in targets:
        for start_name, make_start in starts.items():
            best = 0.0
            improvement = 0.0
            for s in seeds:
                res = explore_worst_case(
                    make_start(s),
                    make_algorithm(name),
                    iterations=iterations,
                    seed=s,
                    mu_cap=mu,
                )
                if res.best_ratio > best:
                    best = res.best_ratio
                    improvement = res.improvement
            exp.rows.append(
                {
                    "algorithm": name,
                    "start": start_name,
                    "found_ratio": best,
                    "improvement": improvement,
                    "bound": bounds.get(name, float("nan")),
                    "within_bound": best <= bounds.get(name, float("inf")) + 1e-9,
                }
            )
    return exp


WORST_CASE_SPEC = simple_spec(
    "X5",
    "Hill-climbing worst-case search on the bounds",
    _worst_case_search,
    smoke=dict(mu=3.0, iterations=10, targets=("first-fit",), seeds=(0,)),
)


def run_worst_case_search(**overrides) -> ExperimentResult:
    """Explore from a random seed and from the universal gadget.

    Back-compat wrapper: runs the X5 spec through the serial runner.
    """
    return run_spec(WORST_CASE_SPEC, overrides)
