"""Experiments T3/T4: the cited lower-bound constructions.

- **T3** (:func:`run_universal_lower_bound`): the blocker/filler gadget
  behind the universal µ lower bound — *every* algorithm, Any Fit or
  not, pays ≈ nµ against OPT ≈ n + µ, so all measured ratios coincide
  and approach µ.
- **T4** (:func:`run_bestfit_staircase`): the staircase gadget that
  separates Best Fit from First Fit: BF scatters the long fillers over
  Θ(√n) bins while FF consolidates them into one, exhibiting the
  Best-Fit-specific failure mode behind the cited "Best Fit unbounded"
  result (Li–Tang–Cai).
"""

from __future__ import annotations

from ..algorithms import BestFit, FirstFit, LastFit, NextFit, WorstFit
from ..opt.opt_total import opt_total
from ..workloads.adversarial import best_fit_staircase, universal_lower_bound
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import simple_spec

__all__ = [
    "BESTFIT_STAIRCASE_SPEC",
    "UNIVERSAL_LB_SPEC",
    "run_bestfit_staircase",
    "run_universal_lower_bound",
]


def _universal_lower_bound(
    ns: tuple[int, ...] = (8, 16, 32),
    mus: tuple[float, ...] = (2.0, 4.0, 8.0),
    node_budget: int = 100_000,
) -> ExperimentResult:
    """T3: every algorithm forced to the same ≈ µ·n/(n+µ) ratio."""
    exp = ExperimentResult(
        "T3",
        "Universal lower-bound construction: all algorithms → µ",
        notes=(
            "analytic_ratio ≈ nµ/(n+µ) → µ.  The construction leaves no\n"
            "placement choice, so every policy's ratio is identical —\n"
            "which is the point: no online algorithm can beat µ."
        ),
    )
    for mu in mus:
        for n in ns:
            inst = universal_lower_bound(n, mu)
            opt = opt_total(inst, node_budget=node_budget)
            ms = {
                "ff": measure_ratio(inst, FirstFit(), opt=opt),
                "bf": measure_ratio(inst, BestFit(), opt=opt),
                "wf": measure_ratio(inst, WorstFit(), opt=opt),
                "nf": measure_ratio(inst, NextFit(), opt=opt),
            }
            exp.rows.append(
                {
                    "mu": mu,
                    "n": n,
                    "opt_lower": opt.lower,
                    "ff_ratio": ms["ff"].ratio_upper,
                    "bf_ratio": ms["bf"].ratio_upper,
                    "wf_ratio": ms["wf"].ratio_upper,
                    "nf_ratio": ms["nf"].ratio_upper,
                    "analytic": n * mu / (n + mu),
                }
            )
    return exp


def _bestfit_staircase(
    ns: tuple[int, ...] = (12, 24, 48),
    mus: tuple[float, ...] = (4.0, 8.0, 16.0),
    node_budget: int = 100_000,
) -> ExperimentResult:
    """T4: Best Fit scatters, First Fit consolidates."""
    exp = ExperimentResult(
        "T4",
        "Best Fit staircase: BF/FF separation grows with n and µ",
        notes=(
            "Best Fit keeps Θ(√n) bins open for the full µ; First Fit\n"
            "keeps one.  The BF/FF cost gap grows without bound as n, µ\n"
            "grow — the directional reproduction of the cited 'Best Fit\n"
            "unbounded' result (proved in the paper's references [5][6])."
        ),
    )
    for mu in mus:
        for n in ns:
            inst = best_fit_staircase(n, mu)
            opt = opt_total(inst, node_budget=node_budget)
            bf = measure_ratio(inst, BestFit(), opt=opt)
            ff = measure_ratio(inst, FirstFit(), opt=opt)
            lf = measure_ratio(inst, LastFit(), opt=opt)
            exp.rows.append(
                {
                    "mu": mu,
                    "n": n,
                    "opt_lower": opt.lower,
                    "bf_ratio": bf.ratio_upper,
                    "ff_ratio": ff.ratio_upper,
                    "lf_ratio": lf.ratio_upper,
                    "bf_over_ff": bf.total_usage_time / ff.total_usage_time,
                }
            )
    return exp


UNIVERSAL_LB_SPEC = simple_spec(
    "T3",
    "Universal lower-bound construction: all algorithms → µ",
    _universal_lower_bound,
    smoke=dict(ns=(8,), mus=(4.0,), node_budget=10_000),
)

BESTFIT_STAIRCASE_SPEC = simple_spec(
    "T4",
    "Best Fit staircase: BF/FF separation grows with n and µ",
    _bestfit_staircase,
    smoke=dict(ns=(12,), mus=(4.0,), node_budget=10_000),
)


def run_universal_lower_bound(**overrides) -> ExperimentResult:
    """T3: every algorithm forced to the same ≈ µ·n/(n+µ) ratio.

    Back-compat wrapper: runs the T3 spec through the serial runner.
    """
    return run_spec(UNIVERSAL_LB_SPEC, overrides)


def run_bestfit_staircase(**overrides) -> ExperimentResult:
    """T4: Best Fit scatters, First Fit consolidates.

    Back-compat wrapper: runs the T4 spec through the serial runner.
    """
    return run_spec(BESTFIT_STAIRCASE_SPEC, overrides)
