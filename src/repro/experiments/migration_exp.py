"""Experiment X10: the adversary's migration budget.

The paper motivates no-migration dispatch ("high migration overheads and
penalty") and then benchmarks against an adversary that migrates freely.
This experiment makes that tension quantitative: for each instance
family, it reconstructs the adversary's actual repacking trajectory and
counts the migrations it performs, next to the non-migratory offline
optimum and First Fit — so the lower bound's hidden assumption is
visible as a number.
"""

from __future__ import annotations

from ..algorithms.first_fit import FirstFit
from ..core.packing import run_packing
from ..offline.solvers import greedy_offline, local_search
from ..opt.opt_total import opt_total
from ..opt.schedule import build_repacking_schedule
from ..workloads.adversarial import next_fit_lower_bound, universal_lower_bound
from ..workloads.gaming import gaming_workload
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["MIGRATION_SPEC", "run_migration_budget"]


def _migration_budget(node_budget: int = 100_000) -> ExperimentResult:
    """Repacking trajectory + migration counts across instance families."""
    exp = ExperimentResult(
        "X10",
        "The adversary's migration budget (repack OPT vs non-migratory)",
        notes=(
            "migr/step = items moved between bins per event transition in\n"
            "the adversary's own optimal trajectory.  offline is the\n"
            "non-migratory heuristic (greedy + local search) cost; the\n"
            "repack→offline gap is what migration buys, offline→FF is the\n"
            "price of online-ness.  Finding: even on the adversarial\n"
            "gadgets, migration buys little — the damage is online-ness."
        ),
    )
    families = {
        "poisson(n=50)": poisson_workload(50, seed=3, mu_target=6.0, arrival_rate=3.0),
        "gaming(n=60)": gaming_workload(60, seed=5, request_rate=4.0),
        "universal-lb(12,4)": universal_lower_bound(12, 4.0),
        "nextfit-lb(12,4)": next_fit_lower_bound(12, 4.0),
    }
    for name, inst in families.items():
        sched = build_repacking_schedule(inst, node_budget=node_budget)
        opt = opt_total(inst, node_budget=node_budget)
        offline = local_search(greedy_offline(inst)).cost()
        ff = run_packing(inst, FirstFit()).total_usage_time
        exp.rows.append(
            {
                "family": name,
                "repack_opt": opt.lower,
                "schedule": sched.total_usage_time,
                "migrations": sched.migrations,
                "migr_per_step": sched.migrations_per_item_event,
                "offline_nonmigr": offline,
                "first_fit": ff,
                "migration_gain": offline / opt.lower,
                "online_price": ff / offline,
            }
        )
    return exp


MIGRATION_SPEC = simple_spec(
    "X10",
    "The adversary's migration budget (repack OPT vs non-migratory)",
    _migration_budget,
    smoke=dict(node_budget=20_000),
)


def run_migration_budget(**overrides) -> ExperimentResult:
    """Repacking trajectory + migration counts across instance families.

    Back-compat wrapper: runs the X10 spec through the serial runner.
    """
    return run_spec(MIGRATION_SPEC, overrides)
