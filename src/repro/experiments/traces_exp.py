"""Experiment X12: packing algorithms on cluster-trace workloads.

The first measured, non-synthetic scenario class: seeded synthetic
trace *files* in the Azure Packing Trace and Google task_events schemas
run through the full ingestion pipeline (generate → adapter → normalize)
and then through the algorithm registry, including the duration-
classified First Fit family (Murhekar et al.) at several class counts.

Two questions per schema:

- how far above the certified lower bound ``max(span, TS-demand)``
  (Proposition 1) does each non-clairvoyant policy land on trace-shaped
  demand (heavy-tailed durations, discrete size catalogue)?
- how much of First Fit's gap does duration knowledge close, and how
  many duration classes does it take?  ``K=1`` is plain FF by
  construction (the differential tests pin it bit-identical), so the
  ``classes`` column reads as a dose-response curve.

Everything is deterministic given (n, seed): the trace bytes, the
adapter output, and every packing.  The trace files live in a
throwaway temp dir — only their *content* feeds the result, so the
content-addressed result cache stays byte-stable.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from ..algorithms import DurationClassifiedFirstFit, make_algorithm
from ..core.packing import run_packing
from ..traces import generate_trace, load_items, normalize_items
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["TRACES_SPEC", "run_trace_benchmark"]

#: non-clairvoyant registry policies worth running on trace demand
_BASELINES = ("first-fit", "best-fit", "worst-fit", "next-fit")

#: duration-class counts for the classified family (1 ≡ plain FF)
_CLASS_COUNTS = (1, 2, 4, 8)

#: dirt knobs per schema — real slices are never clean, so the
#: pipeline's skip accounting is part of what the experiment exercises
_SCHEMA_KNOBS = {
    "azure": dict(censored=0.02, malformed=0.01),
    "google": dict(orphaned=0.02, unfinished=0.02, malformed=0.01),
}


def _trace_instance(schema: str, n: int, seed: int, tmp: Path):
    suffix = ".csv" if schema == "azure" else ".csv"
    path = tmp / f"{schema}-{n}-{seed}{suffix}"
    generate_trace(schema, path, n, seed=seed, **_SCHEMA_KNOBS[schema])
    instance, stats = load_items(path, schema=schema)
    # rebase to t=0; clamping is a no-op on the generated catalogues
    instance, _ = normalize_items(instance)
    return instance, stats


def _duration_anchor(instance) -> float:
    """Anchor geometric classes at the instance's minimum duration."""
    return instance.min_duration


def _trace_benchmark(
    n: int = 4000,
    seed: int = 99,
    schemas: tuple[str, ...] = ("azure", "google"),
) -> ExperimentResult:
    """Algorithm registry + duration-classified FF over generated traces."""
    exp = ExperimentResult(
        "X12",
        "Cluster-trace workloads: registry + duration-classified FF",
        notes=(
            "Synthetic Azure/Google-schema trace files through the full\n"
            "ingestion pipeline (adapter, skip accounting, normalization),\n"
            "packed against the Prop. 1 certified lower bound\n"
            "max(span, time-space demand).  duration-classified-ff is\n"
            "clairvoyant (knows durations); classes=1 is plain FF\n"
            "bit-for-bit, so the K column measures what duration\n"
            "knowledge buys."
        ),
    )
    with tempfile.TemporaryDirectory(prefix="repro-x12-") as tmpdir:
        tmp = Path(tmpdir)
        for schema in schemas:
            instance, stats = _trace_instance(schema, n, seed, tmp)
            lb = max(instance.span, instance.time_space_demand)
            anchor = _duration_anchor(instance)
            runs = [(name, make_algorithm(name)) for name in _BASELINES]
            runs.extend(
                (
                    f"duration-classified-ff(K={k})",
                    DurationClassifiedFirstFit(classes=k, anchor=anchor),
                )
                for k in _CLASS_COUNTS
            )
            for label, algorithm in runs:
                result = run_packing(instance, algorithm)
                exp.rows.append(
                    {
                        "schema": schema,
                        "algorithm": label,
                        "items": len(instance),
                        "skipped": stats.malformed + stats.orphaned
                        + stats.censored + stats.unfinished,
                        "mu": round(instance.mu, 2),
                        "bins": result.num_bins,
                        "usage_time": round(result.total_usage_time, 4),
                        "ratio_lb": round(result.total_usage_time / lb, 4),
                    }
                )
    return exp


TRACES_SPEC = simple_spec(
    "X12",
    "Cluster-trace workloads: registry + duration-classified FF",
    _trace_benchmark,
    smoke=dict(n=300),
)


def run_trace_benchmark(**overrides) -> ExperimentResult:
    """Algorithm registry + duration-classified FF over generated traces.

    Back-compat wrapper: runs the X12 spec through the serial runner.
    """
    return run_spec(TRACES_SPEC, overrides)
