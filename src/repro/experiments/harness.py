"""Experiment harness: results, table formatting, ratio measurement."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..algorithms.base import PackingAlgorithm
from ..core.items import ItemList
from ..core.packing import run_packing
from ..opt.opt_total import OptTotalBracket, opt_total

__all__ = [
    "ExperimentResult",
    "decode_value",
    "encode_value",
    "format_table",
    "measure_ratio",
    "RatioMeasurement",
]


def encode_value(value: Any) -> Any:
    """Encode a result value for a JSON artifact, reversibly.

    JSON has no tuple type, and the experiment tables rely on the
    list/tuple distinction surviving a round trip (rendered reprs must
    be byte-identical).  Tuples are tagged; every other supported type
    maps onto JSON directly (``float('nan')``/infinities ride on
    Python's ``allow_nan`` JSON extension).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(f"non-string artifact key {k!r}")
            out[k] = encode_value(v)
        return out
    raise TypeError(f"value {value!r} of type {type(value).__name__} "
                    "is not JSON-artifact serializable")


def decode_value(value: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"__tuple__"}:
            return tuple(decode_value(v) for v in value["__tuple__"])
        return {k: decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_value(v) for v in value]
    return value


@dataclass(frozen=True)
class RatioMeasurement:
    """One algorithm run against the OPT bracket of its instance."""

    algorithm: str
    total_usage_time: float
    opt: OptTotalBracket
    mu: float

    @property
    def ratio_upper(self) -> float:
        """Conservative ratio estimate (ALG / OPT lower bound)."""
        return self.total_usage_time / self.opt.lower

    @property
    def ratio_lower(self) -> float:
        """Optimistic ratio estimate (ALG / OPT upper bound)."""
        return self.total_usage_time / self.opt.upper


def measure_ratio(
    items: ItemList,
    algorithm: PackingAlgorithm,
    opt: OptTotalBracket | None = None,
    node_budget: int = 200_000,
) -> RatioMeasurement:
    """Run one algorithm and bracket its competitive ratio.

    ``opt`` may be passed in to share one OPT computation across several
    algorithms on the same instance.
    """
    result = run_packing(items, algorithm, capacity=items.capacity)
    if opt is None:
        opt = opt_total(items, node_budget=node_budget)
    return RatioMeasurement(
        algorithm=result.algorithm_name,
        total_usage_time=result.total_usage_time,
        opt=opt,
        mu=items.mu,
    )


@dataclass
class ExperimentResult:
    """A named experiment with tabular output.

    ``rows`` are ordered mappings column → value; ``notes`` document the
    paper-vs-measured interpretation (copied into EXPERIMENTS.md).
    """

    experiment_id: str
    title: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: str = ""

    def column_names(self) -> list[str]:
        cols: list[str] = []
        for row in self.rows:
            for k in row:
                if k not in cols:
                    cols.append(k)
        return cols

    def render(self) -> str:
        header = f"== {self.experiment_id}: {self.title} =="
        body = format_table(self.rows)
        parts = [header, body]
        if self.notes:
            parts.append(self.notes.strip())
        return "\n".join(parts)

    def column(self, name: str) -> list[Any]:
        return [row.get(name) for row in self.rows]

    def to_json(self) -> dict[str, Any]:
        """JSON-artifact document; inverse of :meth:`from_json`."""
        return {
            "kind": "table",
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rows": [encode_value(row) for row in self.rows],
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=doc["experiment_id"],
            title=doc["title"],
            rows=[decode_value(row) for row in doc["rows"]],
            notes=doc["notes"],
        )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]]) -> str:
    """Fixed-width plain-text table over dict rows."""
    if not rows:
        return "(no rows)"
    cols: list[str] = []
    for row in rows:
        for k in row:
            if k not in cols:
                cols.append(k)
    rendered = [[_fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(c), max(len(r[i]) for r in rendered)) for i, c in enumerate(cols)
    ]
    lines = [
        "  ".join(c.rjust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rendered:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)
