"""Experiment X4: adaptive adversary vs every deterministic policy.

The fixed gadgets of :mod:`repro.workloads.adversarial` hard-code one
algorithm's responses; the adaptive game replays the true lower-bound
interaction against *any* deterministic policy.  The keep-alive drain
strategy pins every bin a wave touches open for µ; policies that spread
waves across many bins (Worst Fit) or strand bins (Next Fit) get hurt
more than policies that concentrate (First/Best Fit) — and size-
classified hybrids behave like their base policy here since all jobs
have equal size.
"""

from __future__ import annotations

from ..adversary.game import play_game
from ..adversary.strategies import KeepAliveAdversary
from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..opt.opt_total import opt_total
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["ADAPTIVE_SPEC", "run_adaptive_adversary"]

DEFAULT_TARGETS = (
    "first-fit",
    "best-fit",
    "worst-fit",
    "last-fit",
    "next-fit",
    "hybrid-first-fit",
)


def _adaptive_adversary(
    waves: int = 6,
    k: int = 5,
    bins_per_wave: int = 3,
    mus: tuple[float, ...] = (4.0, 8.0),
    targets: tuple[str, ...] = DEFAULT_TARGETS,
    node_budget: int = 150_000,
) -> ExperimentResult:
    """Play the keep-alive game against each policy and measure ratios."""
    exp = ExperimentResult(
        "X4",
        "Adaptive keep-alive adversary vs deterministic policies",
        notes=(
            "ratio = policy cost / certified OPT lower bound on the\n"
            "instance the game produced *for that policy* (each policy\n"
            "faces its own personalised worst case)."
        ),
    )
    for mu in mus:
        for name in targets:
            adversary = KeepAliveAdversary(
                waves=waves, k=k, mu=mu, bins_per_wave=bins_per_wave
            )
            instance, result = play_game(adversary, make_algorithm(name))
            opt = opt_total(instance, node_budget=node_budget)
            exp.rows.append(
                {
                    "mu": mu,
                    "policy": name,
                    "jobs": len(instance),
                    "bins": result.num_bins,
                    "cost": result.total_usage_time,
                    "opt_lower": opt.lower,
                    "ratio": result.total_usage_time / opt.lower,
                }
            )
    return exp


ADAPTIVE_SPEC = simple_spec(
    "X4",
    "Adaptive keep-alive adversary vs deterministic policies",
    _adaptive_adversary,
    smoke=dict(waves=2, k=3, bins_per_wave=2, mus=(4.0,), node_budget=30_000),
)


def run_adaptive_adversary(**overrides) -> ExperimentResult:
    """Play the keep-alive game against each policy and measure ratios.

    Back-compat wrapper: runs the X4 spec through the serial runner.
    """
    return run_spec(ADAPTIVE_SPEC, overrides)
