"""Experiment T8: warm-server retention under different billing models.

The paper's close-on-empty semantics is one point in a policy space;
this experiment measures the others on the motivating workload:

- under **hourly billing**, holding an empty server until its paid hour
  boundary is free per server, so reuse is usually savings — though the
  placement drift it causes makes the system-wide effect
  workload-dependent (see repro.cloud.retention's docstring);
- under **continuous billing**, idle time costs exactly its duration,
  so retention must weakly lose — the paper's model already had the
  right semantics for its own cost function.
"""

from __future__ import annotations

from ..cloud.billing import ContinuousBilling, HourlyBilling
from ..cloud.retention import (
    BilledHourBoundary,
    FixedCooldown,
    NoRetention,
    RetentionDispatcher,
)
from ..workloads.gaming import gaming_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["RETENTION_SPEC", "run_retention"]


def _retention(
    num_sessions: int = 300,
    rates: tuple[float, ...] = (2.0, 8.0),
    seed: int = 13,
) -> ExperimentResult:
    """Retention-policy × billing × load sweep on the gaming workload."""
    exp = ExperimentResult(
        "T8",
        "Warm-server retention: cost vs policy under each billing model",
        notes=(
            "vs_none = cost / no-retention cost under the same billing.\n"
            "Expect ≈≤ 1 for hour-boundary retention under hourly billing\n"
            "(the hold is free per server) and ≥ 1 for any retention\n"
            "under continuous billing (idle time billed)."
        ),
    )
    policies = (
        NoRetention(),
        BilledHourBoundary(quantum=1.0),
        FixedCooldown(0.25),
        FixedCooldown(1.0),
    )
    for rate in rates:
        jobs = gaming_workload(num_sessions, seed=seed, request_rate=rate)
        for billing, bname in (
            (HourlyBilling(quantum=1.0), "hourly"),
            (ContinuousBilling(), "continuous"),
        ):
            base = None
            for policy in policies:
                rep = RetentionDispatcher(policy, billing=billing).dispatch(jobs)
                if isinstance(policy, NoRetention):
                    base = rep.total_cost
                exp.rows.append(
                    {
                        "rate": rate,
                        "billing": bname,
                        "policy": policy.name
                        + (
                            f"({policy.cooldown:g})"
                            if isinstance(policy, FixedCooldown)
                            else ""
                        ),
                        "servers": rep.num_servers,
                        "reuses": rep.num_reuses,
                        "cost": rep.total_cost,
                        "vs_none": rep.total_cost / base,
                    }
                )
    return exp


RETENTION_SPEC = simple_spec(
    "T8",
    "Warm-server retention: cost vs policy under each billing model",
    _retention,
    smoke=dict(num_sessions=60, rates=(2.0,)),
)


def run_retention(**overrides) -> ExperimentResult:
    """Retention-policy × billing × load sweep on the gaming workload.

    Back-compat wrapper: runs the T8 spec through the serial runner.
    """
    return run_spec(RETENTION_SPEC, overrides)
