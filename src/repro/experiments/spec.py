"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the unit the experiment framework operates
on: it names an experiment, declares its typed parameters (with defaults
and per-profile overrides), and splits the computation into

- ``tasks(params)`` — an ordered decomposition into independent,
  picklable shard payloads,
- ``run_task(task)`` — the pure per-shard computation (executed
  in-process or in a worker process), and
- ``merge(params, results)`` — the ordered reduction of shard results
  into one :class:`~repro.experiments.harness.ExperimentResult` or
  :class:`~repro.experiments.figures.FigureOutput`.

The split is what buys sharding, caching, and resumability for free:
the runner (:mod:`repro.experiments.runner`) fans ``tasks`` through
:func:`repro.parallel.parallel_map`, merges in task order (so outputs
are worker-count independent), and content-addresses the merged result
by ``(experiment id, canonical params, code fingerprint)``.

Most experiments are a single sequential computation; for those,
:func:`simple_spec` derives the parameter table from the implementation
function's signature and wraps it as a one-task spec.  Grid experiments
(T5, X1, X7) declare real multi-task decompositions.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

__all__ = [
    "PROFILES",
    "ExperimentSpec",
    "ParamSpec",
    "params_from_signature",
    "simple_spec",
]

#: Recognised parameter profiles.  ``full`` uses every default as
#: declared; ``smoke`` applies each parameter's ``smoke`` override —
#: a configuration small enough for test suites and CI.
PROFILES = ("full", "smoke")

_UNSET = object()


@dataclass(frozen=True)
class ParamSpec:
    """One typed experiment parameter.

    ``smoke`` is the value used under ``profile="smoke"``; when left
    unset the default applies in every profile.
    """

    name: str
    type: type
    default: Any
    smoke: Any = _UNSET
    help: str = ""

    def value_for(self, profile: str) -> Any:
        if profile == "smoke" and self.smoke is not _UNSET:
            return self.smoke
        return self.default


def _tuplify(value: Any) -> Any:
    """Deep list→tuple coercion (JSON artifacts store tuples as lists)."""
    if isinstance(value, (list, tuple)):
        return tuple(_tuplify(v) for v in value)
    return value


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative experiment: typed params + tasks/run_task/merge."""

    id: str
    title: str
    doc: str
    params: tuple[ParamSpec, ...]
    tasks: Callable[[dict[str, Any]], list[Any]]
    run_task: Callable[[Any], Any]
    merge: Callable[[dict[str, Any], list[Any]], Any]
    #: module that defines the spec (humans + provenance in artifacts)
    module: str = ""

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def has_param(self, name: str) -> bool:
        return any(p.name == name for p in self.params)

    def resolve(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        profile: Optional[str] = None,
    ) -> dict[str, Any]:
        """Defaults (per profile) layered under explicit overrides.

        Unknown override names and unknown profiles are rejected —
        a typo'd parameter must never silently run the defaults.
        """
        profile = profile or "full"
        if profile not in PROFILES:
            raise ValueError(
                f"{self.id}: unknown profile {profile!r} (choose from {PROFILES})"
            )
        resolved = {p.name: p.value_for(profile) for p in self.params}
        for name, value in dict(overrides or {}).items():
            if value is None:
                continue  # "flag not given" from the CLI
            if name not in resolved:
                raise ValueError(
                    f"{self.id}: unknown parameter {name!r} "
                    f"(declared: {', '.join(self.param_names()) or 'none'})"
                )
            spec = next(p for p in self.params if p.name == name)
            if spec.type is tuple:
                value = _tuplify(value)
            resolved[name] = value
        return resolved

    def run(self, params: dict[str, Any]) -> Any:
        """Serial reference path: tasks → run_task → ordered merge."""
        return self.merge(params, [self.run_task(t) for t in self.tasks(params)])


def params_from_signature(
    fn: Callable[..., Any],
    smoke: Optional[Mapping[str, Any]] = None,
) -> tuple[ParamSpec, ...]:
    """Derive the parameter table from a keyword-only-style signature.

    Every parameter must carry a default (the spec's defaults); the
    optional ``smoke`` mapping attaches per-parameter smoke-profile
    overrides and must only name real parameters.
    """
    smoke = dict(smoke or {})
    out: list[ParamSpec] = []
    for name, p in inspect.signature(fn).parameters.items():
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            continue
        if p.default is inspect.Parameter.empty:
            raise ValueError(
                f"{fn.__name__}: spec parameter {name!r} has no default"
            )
        out.append(
            ParamSpec(
                name=name,
                type=type(p.default),
                default=p.default,
                smoke=smoke.pop(name, _UNSET),
            )
        )
    if smoke:
        raise ValueError(
            f"{fn.__name__}: smoke overrides for unknown parameters "
            f"{sorted(smoke)}"
        )
    return tuple(out)


def simple_spec(
    experiment_id: str,
    title: str,
    fn: Callable[..., Any],
    smoke: Optional[Mapping[str, Any]] = None,
    doc: str = "",
) -> ExperimentSpec:
    """Wrap a sequential experiment function as a one-task spec.

    The whole computation is a single shard (``fn(**params)``); the
    runner still provides caching, artifacts, profiles, and uniform CLI
    flags.  Experiments with a natural grid decomposition should declare
    a real multi-task spec instead.
    """
    return ExperimentSpec(
        id=experiment_id,
        title=title,
        doc=doc or (fn.__doc__ or "").strip().splitlines()[0],
        params=params_from_signature(fn, smoke=smoke),
        tasks=lambda params: [dict(params)],
        run_task=lambda task: fn(**task),
        merge=lambda params, results: results[0],
        module=fn.__module__,
    )
