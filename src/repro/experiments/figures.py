"""Experiments F1–F6: regenerating the paper's structural figures.

The paper's figures are worked examples of the analysis constructs; each
function here computes the exact structure on a concrete instance and
returns both the data and an ASCII rendering.  The figure benchmarks
assert the structural invariants each figure illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms.first_fit import FirstFit
from ..analysis.supplier import SupplierAnalysis, analyze_suppliers
from ..analysis.subperiods import build_subperiods
from ..analysis.usage_periods import decompose_usage_periods
from ..analysis.verification import verify_analysis
from ..core.items import Item, ItemList
from ..core.packing import run_packing
from ..core.result import PackingResult
from ..viz.timeline import (
    render_items,
    render_subperiods,
    render_usage_decomposition,
)
from ..workloads.random_workloads import poisson_workload
from .runner import run_spec
from .spec import simple_spec

__all__ = [
    "FIGURE_SPECS",
    "figure1_instance",
    "figure1_span",
    "figure2_usage_periods",
    "figure3_subperiods",
    "figure4_supplier",
    "figures56_nonintersection",
    "FigureOutput",
]


@dataclass(frozen=True)
class FigureOutput:
    """Rendered figure plus the computed data behind it."""

    figure_id: str
    rendering: str
    data: object

    def to_json(self) -> dict:
        """JSON-artifact document; inverse of :meth:`from_json`.

        The rendering (the figure's durable surface — what reports
        embed) always round-trips byte-identically.  ``data`` is kept
        when it is plain JSON-representable structure and dropped
        otherwise (analysis objects hold full packing results; an
        artifact is not a pickle).
        """
        from .harness import encode_value

        try:
            data = encode_value(self.data)
            has_data = True
        except TypeError:
            data, has_data = None, False
        return {
            "kind": "figure",
            "figure_id": self.figure_id,
            "rendering": self.rendering,
            "data": data,
            "data_serialized": has_data,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FigureOutput":
        from .harness import decode_value

        data = decode_value(doc["data"]) if doc.get("data_serialized") else None
        return cls(
            figure_id=doc["figure_id"], rendering=doc["rendering"], data=data
        )


def figure1_instance() -> ItemList:
    """The three-item example in the spirit of Figure 1.

    Three items whose intervals overlap pairwise but not all at once,
    so ``span < Σ durations`` and the span has the two-segment shape of
    the figure.
    """
    return ItemList(
        [
            Item(1, 0.5, 0.0, 2.0),
            Item(2, 0.3, 1.0, 3.0),
            Item(3, 0.4, 4.0, 6.0),
        ]
    )


def _figure1_span() -> FigureOutput:
    """F1: items and their span."""
    items = figure1_instance()
    return FigureOutput("F1", render_items(items), items)


def _four_bin_instance() -> ItemList:
    """An instance on which First Fit opens four bins with staggered
    lifetimes, giving non-trivial V/W splits as in Figure 2."""
    return ItemList(
        [
            Item(1, 0.6, 0.0, 6.0),   # bin 1, long-lived
            Item(2, 0.6, 1.0, 3.0),   # bin 2 (does not fit bin 1)
            Item(3, 0.6, 2.0, 8.0),   # bin 3
            Item(4, 0.3, 2.5, 4.0),   # fits bin 1
            Item(5, 0.6, 7.0, 9.0),   # bin opened after bin 2 closed
            Item(6, 0.35, 7.5, 10.0), # joins an open bin
        ]
    )


def _figure2_usage_periods() -> FigureOutput:
    """F2: the U/V/W/E decomposition on a four-bin First Fit run."""
    result = run_packing(_four_bin_instance(), FirstFit())
    deco = decompose_usage_periods(result)
    return FigureOutput("F2", render_usage_decomposition(result, deco), deco)


def _subperiod_rich_result(seed: int = 3, n: int = 80) -> PackingResult:
    """A random instance dense enough to produce l/h subperiods."""
    inst = poisson_workload(n, seed=seed, mu_target=4.0, arrival_rate=4.0)
    return run_packing(inst, FirstFit())


def _figure3_subperiods() -> FigureOutput:
    """F3: small-item selection and l/h-subperiod split."""
    result = _subperiod_rich_result()
    subs = build_subperiods(result)
    analysis = analyze_suppliers(result, subs)
    return FigureOutput("F3", render_subperiods(result, analysis), subs)


def _figure4_supplier() -> FigureOutput:
    """F4: supplier bins, pairing/consolidation and supplier periods."""
    result = _subperiod_rich_result(seed=5)
    analysis = analyze_suppliers(result)
    return FigureOutput("F4", render_subperiods(result, analysis), analysis)


def _figures56_nonintersection(
    seeds: tuple[int, ...] = tuple(range(20)), n: int = 70
) -> FigureOutput:
    """F5/F6: Lemma 2 (supplier periods never intersect) across instances.

    Figures 5 and 6 illustrate the two cross-bin cases of the
    non-intersection proof; the reproduction checks the conclusion on a
    batch of randomized First Fit runs.
    """
    checked = 0
    violations = 0
    for seed in seeds:
        inst = poisson_workload(n, seed=seed, mu_target=6.0, arrival_rate=3.0)
        report = verify_analysis(run_packing(inst, FirstFit()))
        checked += 1
        violations += len(report.failures("lemma2"))
    rendering = (
        f"Lemma 2 (Figures 5-6): checked {checked} randomized First Fit runs, "
        f"{violations} supplier-period intersections found."
    )
    return FigureOutput("F5-F6", rendering, {"checked": checked, "violations": violations})


F1_SPEC = simple_spec("F1", "Figure 1: items and their span", _figure1_span)
F2_SPEC = simple_spec(
    "F2", "Figure 2: U/V/W/E usage-period decomposition", _figure2_usage_periods
)
F3_SPEC = simple_spec(
    "F3", "Figure 3: small-item selection and l/h-subperiod split",
    _figure3_subperiods,
)
F4_SPEC = simple_spec(
    "F4", "Figure 4: supplier bins, pairing and supplier periods",
    _figure4_supplier,
)
F56_SPEC = simple_spec(
    "F5-F6",
    "Figures 5-6: supplier periods never intersect (Lemma 2)",
    _figures56_nonintersection,
    smoke=dict(seeds=(0, 1), n=40),
)

#: the five figure specs in DESIGN.md order
FIGURE_SPECS = (F1_SPEC, F2_SPEC, F3_SPEC, F4_SPEC, F56_SPEC)


def figure1_span(**overrides) -> FigureOutput:
    """F1: items and their span (back-compat wrapper over the F1 spec)."""
    return run_spec(F1_SPEC, overrides)


def figure2_usage_periods(**overrides) -> FigureOutput:
    """F2: the U/V/W/E decomposition on a four-bin First Fit run."""
    return run_spec(F2_SPEC, overrides)


def figure3_subperiods(**overrides) -> FigureOutput:
    """F3: small-item selection and l/h-subperiod split."""
    return run_spec(F3_SPEC, overrides)


def figure4_supplier(**overrides) -> FigureOutput:
    """F4: supplier bins, pairing/consolidation and supplier periods."""
    return run_spec(F4_SPEC, overrides)


def figures56_nonintersection(**overrides) -> FigureOutput:
    """F5/F6: Lemma 2 (supplier periods never intersect) across instances."""
    return run_spec(F56_SPEC, overrides)
