"""Experiment X1: multi-dimensional extension (Section IX future work).

Vector FF/BF/WF/NF on 2-D and 3-D workloads, measured against the
closed-form lower bound (span vs binding-resource time–space).  Also
sweeps demand correlation: at correlation 1 the instance is effectively
one-dimensional and ratios match the 1-D behaviour; lower correlation
increases packing tension and all ratios rise.
"""

from __future__ import annotations

from ..multidim import (
    VECTOR_REGISTRY,
    run_vector_packing,
    correlated_vector_workload,
    vector_workload,
)
from .harness import ExperimentResult

__all__ = ["run_multidim"]


def run_multidim(
    n: int = 120,
    seeds: tuple[int, ...] = (1, 2, 3),
    dimensions: tuple[int, ...] = (1, 2, 3),
    correlations: tuple[float, ...] = (0.0, 0.5, 1.0),
) -> ExperimentResult:
    """Dimension sweep + correlation sweep for vector policies."""
    exp = ExperimentResult(
        "X1",
        "Multi-dimensional MinUsageTime DBP (paper future work)",
        notes=(
            "ratio = usage time / max(span, binding-resource time-space).\n"
            "Expect vector-FF ≤ vector-NF, and ratios to grow as the\n"
            "number of independent dimensions grows (packing tension)."
        ),
    )
    for dim in dimensions:
        for algo_name, factory in VECTOR_REGISTRY.items():
            ratios = []
            for seed in seeds:
                inst = vector_workload(n, seed=seed, dimensions=dim)
                res = run_vector_packing(inst, factory())
                ratios.append(res.ratio_vs_lower_bound())
            exp.rows.append(
                {
                    "sweep": "dimensions",
                    "value": dim,
                    "algorithm": algo_name,
                    "mean_ratio": sum(ratios) / len(ratios),
                    "max_ratio": max(ratios),
                }
            )
    for corr in correlations:
        for algo_name, factory in VECTOR_REGISTRY.items():
            ratios = []
            for seed in seeds:
                inst = correlated_vector_workload(n, seed=seed, correlation=corr)
                res = run_vector_packing(inst, factory())
                ratios.append(res.ratio_vs_lower_bound())
            exp.rows.append(
                {
                    "sweep": "correlation",
                    "value": corr,
                    "algorithm": algo_name,
                    "mean_ratio": sum(ratios) / len(ratios),
                    "max_ratio": max(ratios),
                }
            )
    return exp
