"""Experiment X1: multi-dimensional extension (Section IX future work).

Vector FF/BF/WF/NF on 2-D and 3-D workloads, measured against the
closed-form lower bound (span vs binding-resource time–space).  Also
sweeps demand correlation: at correlation 1 the instance is effectively
one-dimensional and ratios match the 1-D behaviour; lower correlation
increases packing tension and all ratios rise.

Every (sweep point, algorithm, seed) cell is an independent packing run,
so the grid shards through :func:`repro.parallel.parallel_map` —
``repro run X1 --workers -1`` fans the cells across CPUs and merges in
task order, producing the exact rows of the serial run.
"""

from __future__ import annotations

from typing import Optional

from ..multidim import (
    VECTOR_REGISTRY,
    correlated_vector_workload,
    make_vector_algorithm,
    run_vector_packing,
    vector_workload,
)
from .harness import ExperimentResult
from .runner import run_spec
from .spec import ExperimentSpec, params_from_signature

__all__ = ["MULTIDIM_SPEC", "run_multidim"]


def _run_cell(task: tuple[str, float, str, int, int]) -> float:
    """One shard: pack one seeded instance, return its ratio.

    Top-level and argument-seeded so it pickles into worker processes
    (the :mod:`repro.parallel` determinism contract).
    """
    sweep, value, algo_name, seed, n = task
    if sweep == "dimensions":
        inst = vector_workload(n, seed=seed, dimensions=int(value))
    else:
        inst = correlated_vector_workload(n, seed=seed, correlation=value)
    res = run_vector_packing(inst, make_vector_algorithm(algo_name))
    return res.ratio_vs_lower_bound()


def _multidim_defaults(
    n: int = 120,
    seeds: tuple[int, ...] = (1, 2, 3),
    dimensions: tuple[int, ...] = (1, 2, 3),
    correlations: tuple[float, ...] = (0.0, 0.5, 1.0),
) -> None:
    """Signature-only carrier of the X1 parameter table."""


#: X1 sweeps the non-migratory dispatch policies.  The migration-capable
#: vector-repack-ff is excluded: its ratio depends on the move budget
#: (a knob X1 does not sweep), and X13 owns that axis.
X1_ALGORITHMS = tuple(
    name for name in VECTOR_REGISTRY if name != "vector-repack-ff"
)


def _multidim_groups(params: dict) -> list[tuple[str, float, str]]:
    return [
        ("dimensions", dim, algo_name)
        for dim in params["dimensions"]
        for algo_name in X1_ALGORITHMS
    ] + [
        ("correlation", corr, algo_name)
        for corr in params["correlations"]
        for algo_name in X1_ALGORITHMS
    ]


def _multidim_tasks(params: dict) -> list[tuple[str, float, str, int, int]]:
    """One shard per (sweep point, algorithm, seed) grid cell."""
    return [
        (sweep, value, algo_name, seed, params["n"])
        for sweep, value, algo_name in _multidim_groups(params)
        for seed in params["seeds"]
    ]


def _multidim_merge(params: dict, ratios: list[float]) -> ExperimentResult:
    exp = ExperimentResult(
        "X1",
        "Multi-dimensional MinUsageTime DBP (paper future work)",
        notes=(
            "ratio = usage time / max(span, binding-resource time-space).\n"
            "Expect vector-FF ≤ vector-NF, and ratios to grow as the\n"
            "number of independent dimensions grows (packing tension)."
        ),
    )
    n_seeds = len(params["seeds"])
    for g, (sweep, value, algo_name) in enumerate(_multidim_groups(params)):
        cell = ratios[g * n_seeds : (g + 1) * n_seeds]
        exp.rows.append(
            {
                "sweep": sweep,
                "value": value,
                "algorithm": algo_name,
                "mean_ratio": sum(cell) / len(cell),
                "max_ratio": max(cell),
            }
        )
    return exp


MULTIDIM_SPEC = ExperimentSpec(
    id="X1",
    title="Multi-dimensional MinUsageTime DBP (paper future work)",
    doc="Dimension sweep + correlation sweep for vector policies.",
    params=params_from_signature(
        _multidim_defaults,
        smoke=dict(n=30, seeds=(1,), dimensions=(1, 2), correlations=(1.0,)),
    ),
    tasks=_multidim_tasks,
    run_task=_run_cell,
    merge=_multidim_merge,
    module=__name__,
)


def run_multidim(workers: Optional[int] = None, **overrides) -> ExperimentResult:
    """Dimension sweep + correlation sweep for vector policies.

    Back-compat wrapper over the X1 spec; ``workers`` fans the grid
    cells across CPUs with rows merged in task order, producing the
    exact rows of the serial run.
    """
    return run_spec(MULTIDIM_SPEC, overrides, workers=workers)
