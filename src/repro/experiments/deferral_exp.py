"""Experiment X9: the patience frontier — cost vs waiting time.

Sweeps the deferral window on the gaming workload, reporting the total
usage cost, the mean/max wait, and how many sessions waited at all.
The frontier to reproduce: cost decreases (weakly) as patience grows —
queued jobs slot into freed capacity instead of opening servers — while
waiting statistics rise; zero patience is exactly First Fit.
"""

from __future__ import annotations

from ..algorithms.first_fit import FirstFit
from ..core.packing import run_packing
from ..deferral.engine import run_deferred_first_fit
from ..workloads.gaming import gaming_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["DEFERRAL_SPEC", "run_deferral"]


def _deferral(
    delays: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0),
    num_sessions: int = 300,
    request_rate: float = 8.0,
    seed: int = 31,
) -> ExperimentResult:
    """Patience sweep on one gaming stream."""
    exp = ExperimentResult(
        "X9",
        "Deferred dispatch: usage cost vs waiting time (patience sweep)",
        notes=(
            "delay 0 coincides with plain First Fit (pinned by tests).\n"
            "Larger patience lets queued sessions reuse freed capacity;\n"
            "the cost column is total server usage time, waits in hours."
        ),
    )
    jobs = gaming_workload(num_sessions, seed=seed, request_rate=request_rate)
    ff_cost = run_packing(jobs, FirstFit()).total_usage_time
    for delay in delays:
        res = run_deferred_first_fit(jobs, max_delay=delay)
        exp.rows.append(
            {
                "max_delay": delay,
                "usage_cost": res.total_usage_time,
                "vs_ff": res.total_usage_time / ff_cost,
                "servers": res.packing.num_bins,
                "delayed_jobs": res.delayed_jobs,
                "mean_wait": res.mean_wait,
                "max_wait": res.max_wait,
            }
        )
    return exp


DEFERRAL_SPEC = simple_spec(
    "X9",
    "Deferred dispatch: usage cost vs waiting time (patience sweep)",
    _deferral,
    smoke=dict(delays=(0.0, 0.5), num_sessions=60, request_rate=4.0),
)


def run_deferral(**overrides) -> ExperimentResult:
    """Patience sweep on one gaming stream.

    Back-compat wrapper: runs the X9 spec through the serial runner.
    """
    return run_spec(DEFERRAL_SPEC, overrides)
