"""Experiment X13: usage-time ratio vs. online migration budget.

X10 measures what migration is worth to an *offline adversary* — it
reconstructs the repack-OPT trajectory and counts the moves the
adversary actually performs.  X13 asks the operational converse: what
does a bounded move budget buy an *online* algorithm?  For each instance
family it sweeps :class:`~repro.algorithms.migration.BudgetedRepack`
(First Fit + up to β migrations per event) over β and charts the
usage-time ratio against the paper's µ lower bound — which binds every
**non-migratory** algorithm (Theorem 2), so the β=0 column sits above it
by Theorem 2's logic while the β>0 columns show the bound's hidden
assumption being spent down.

The adversary's own trajectory from X10 is rendered on the same figure:
its ratio is 1.0 by construction (it *is* the repack optimum), and its
move count is the price it paid — the asymptote the online sweep is
reaching toward.
"""

from __future__ import annotations

from ..algorithms.migration import BudgetedRepack
from ..opt.opt_total import opt_total
from ..opt.schedule import build_repacking_schedule
from ..workloads.adversarial import next_fit_lower_bound, universal_lower_bound
from ..workloads.gaming import gaming_workload
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import simple_spec

__all__ = ["DEFRAG_SPEC", "run_defrag_budget"]

#: chart width in characters for the ratio bars
_BAR_WIDTH = 36


def _families() -> dict:
    """The same four instance families X10 measures, for comparability."""
    return {
        "poisson(n=50)": poisson_workload(50, seed=3, mu_target=6.0, arrival_rate=3.0),
        "gaming(n=60)": gaming_workload(60, seed=5, request_rate=4.0),
        "universal-lb(12,4)": universal_lower_bound(12, 4.0),
        "nextfit-lb(12,4)": next_fit_lower_bound(12, 4.0),
    }


def _bar(ratio: float, mu: float, scale: float) -> str:
    """One chart line: ratio as a bar, 'M' marking the µ lower bound.

    Everything is scaled against ``scale`` (the family's max of µ and
    the worst swept ratio), so within a family the bars and the µ marker
    are directly comparable; ratio 0 is the left edge.
    """
    width = max(1, round(_BAR_WIDTH * ratio / scale))
    mu_pos = max(1, round(_BAR_WIDTH * mu / scale))
    cells = ["#" if i < width else "-" for i in range(max(width, mu_pos))]
    cells[mu_pos - 1] = "M"
    return "|" + "".join(cells)


def _defrag_budget(
    node_budget: int = 100_000,
    budgets: tuple = (0, 1, 2, 4, 8),
) -> ExperimentResult:
    """Sweep the per-event move budget β and bracket the ratio per family."""
    chart: list[str] = []
    exp = ExperimentResult(
        "X13",
        "Online bounded-migration repacking (usage ratio vs. move budget)",
    )
    for name, inst in _families().items():
        opt = opt_total(inst, node_budget=node_budget)
        sched = build_repacking_schedule(inst, node_budget=node_budget)
        mu = inst.mu
        adv_ratio = sched.total_usage_time / opt.lower
        scale = mu
        measurements = []
        for beta in budgets:
            policy = BudgetedRepack(budget=beta)
            m = measure_ratio(inst, policy, opt=opt)
            measurements.append((beta, m, policy.moves))
            scale = max(scale, m.ratio_upper)
            exp.rows.append(
                {
                    "family": name,
                    "budget": beta,
                    "usage_time": m.total_usage_time,
                    "ratio": m.ratio_upper,
                    "moves": policy.moves,
                    "mu": mu,
                    "adversary_moves": sched.migrations,
                    "adversary_ratio": adv_ratio,
                }
            )
        chart.append(f"{name}  (mu={mu:.2f})")
        for beta, m, moves in measurements:
            chart.append(
                f"  b={beta:<2d} {_bar(m.ratio_upper, mu, scale)}"
                f"  {m.ratio_upper:.3f}  ({moves} moves)"
            )
        chart.append(
            f"  adv  {_bar(adv_ratio, mu, scale)}"
            f"  {adv_ratio:.3f}  ({sched.migrations} moves, X10 repack-OPT)"
        )
    exp.notes = (
        "ratio = repack-ff usage time / OPT lower bracket; b=0 is plain\n"
        "First Fit (bit-identical, pinned by the migration differential\n"
        "suite).  'M' on each bar marks the paper's mu lower bound, which\n"
        "assumes *no* migration — the b>0 bars spend that assumption\n"
        "down.  The 'adv' line is X10's offline repack-OPT trajectory on\n"
        "the same instance (ratio 1.0 by construction) with the move\n"
        "count it paid; the online sweep approaches it from above.\n\n"
        + "\n".join(chart)
    )
    return exp


DEFRAG_SPEC = simple_spec(
    "X13",
    "Online bounded-migration repacking (usage ratio vs. move budget)",
    _defrag_budget,
    smoke=dict(node_budget=20_000, budgets=(0, 2, 4)),
)


def run_defrag_budget(**overrides) -> ExperimentResult:
    """Budget sweep for online bounded-migration repacking (X13).

    Back-compat wrapper: runs the X13 spec through the serial runner.
    """
    return run_spec(DEFRAG_SPEC, overrides)
