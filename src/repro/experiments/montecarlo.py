"""Experiment X7: expected-ratio curves with bootstrap confidence bands.

The competitive ratio is a worst-case notion; a provider cares about the
*expected* ratio on its traffic.  This experiment estimates
``E[ALG/OPT-lower]`` as a function of offered load and of µ, with
bootstrap 95% confidence intervals, for the main policies.  The shapes
to reproduce: ratios rise with µ (more duration disparity → more
stranding) and fall with load (fuller bins → less per-bin waste), with
First Fit dominating Next Fit everywhere.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import make_algorithm
from ..core.packing import run_packing
from ..opt.opt_total import opt_total
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import ExperimentSpec, params_from_signature

__all__ = ["EXPECTED_RATIO_SPEC", "run_expected_ratio", "bootstrap_ci"]


def _replication_ratios(
    task: tuple[int, float, float, int, tuple[str, ...], int],
) -> list[float]:
    """One Monte Carlo shard: build the instance, bracket OPT, run all
    algorithms.  Top-level so it pickles into worker processes; all
    randomness comes from the seed encoded in the task, so the result is
    identical whether this runs serially or in a pool.
    """
    n, mu, load, rep, algorithms, node_budget = task
    inst = poisson_workload(
        n, seed=1000 * int(mu) + 37 * rep, mu_target=mu, arrival_rate=load
    )
    opt = opt_total(inst, node_budget=node_budget)
    return [
        run_packing(inst, make_algorithm(name)).total_usage_time / opt.lower
        for name in algorithms
    ]


def bootstrap_ci(
    values: np.ndarray, confidence: float = 0.95, resamples: int = 2000, seed: int = 0
) -> tuple[float, float]:
    """Percentile bootstrap CI for the mean of ``values``."""
    if len(values) == 0:
        raise ValueError("no values")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(values), size=(resamples, len(values)))
    means = values[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, alpha)),
        float(np.quantile(means, 1.0 - alpha)),
    )


def _expected_ratio_defaults(
    n: int = 60,
    replications: int = 12,
    algorithms: tuple[str, ...] = ("first-fit", "best-fit", "next-fit"),
    loads: tuple[float, ...] = (0.5, 2.0, 6.0),
    mus: tuple[float, ...] = (2.0, 8.0),
    node_budget: int = 60_000,
) -> None:
    """Signature-only carrier of the X7 parameter table."""


def _expected_ratio_tasks(params: dict) -> list[tuple]:
    """One shard per (µ, load, replication) Monte Carlo cell.

    Seeds travel inside the shards, so the numbers are worker-count
    independent.
    """
    algorithms = tuple(params["algorithms"])
    return [
        (params["n"], mu, load, rep, algorithms, params["node_budget"])
        for mu in params["mus"]
        for load in params["loads"]
        for rep in range(params["replications"])
    ]


def _expected_ratio_merge(params: dict, shard_rows: list) -> ExperimentResult:
    exp = ExperimentResult(
        "X7",
        "Expected competitive ratio vs load and µ (bootstrap 95% CI)",
        notes=(
            "mean over seeded replications of ALG / certified OPT lower\n"
            "bound; ci95 is a percentile bootstrap on the mean."
        ),
    )
    algorithms = tuple(params["algorithms"])
    # one row of ratios (indexed by algorithm) per replication, merged
    # back in task order: the exact sequence the serial loops produced
    rows = iter(shard_rows)
    for mu in params["mus"]:
        for load in params["loads"]:
            block = [next(rows) for _ in range(params["replications"])]
            for j, name in enumerate(algorithms):
                ratios = np.array([row[j] for row in block])
                lo, hi = bootstrap_ci(ratios)
                exp.rows.append(
                    {
                        "mu": mu,
                        "load": load,
                        "algorithm": name,
                        "mean_ratio": float(ratios.mean()),
                        "ci95_lo": lo,
                        "ci95_hi": hi,
                        "max_ratio": float(ratios.max()),
                    }
                )
    return exp


EXPECTED_RATIO_SPEC = ExperimentSpec(
    id="X7",
    title="Expected competitive ratio vs load and µ (bootstrap 95% CI)",
    doc="Load × µ sweep of mean ratios with bootstrap 95% CIs.",
    params=params_from_signature(
        _expected_ratio_defaults,
        smoke=dict(
            n=20,
            replications=2,
            algorithms=("first-fit", "next-fit"),
            loads=(2.0,),
            mus=(2.0,),
            node_budget=5_000,
        ),
    ),
    tasks=_expected_ratio_tasks,
    run_task=_replication_ratios,
    merge=_expected_ratio_merge,
    module=__name__,
)


def run_expected_ratio(workers: int | None = None, **overrides) -> ExperimentResult:
    """Load × µ sweep of mean ratios with bootstrap 95% CIs.

    Back-compat wrapper over the X7 spec: each (µ, load, replication)
    cell — instance generation, the OPT bracket, and all algorithm runs
    — is one shard; ``workers`` spreads the shards over processes
    (serial by default, ``-1`` = all cores).
    """
    return run_spec(EXPECTED_RATIO_SPEC, overrides, workers=workers)
