"""Experiment X3: the price of information and of migration.

Three models bracket each other instance-wise:

    repacking OPT_total  ≤  offline non-migratory OPT  ≤  online ALG

The gap between the first two is the *price of non-migration* (what the
paper's all-powerful adversary gains by repacking); the gap between the
offline optimum and First Fit is the *price of online-ness*; and the
clairvoyant policies sit in between (online decisions, known
departures).  The paper's Section II remarks that known ending times
(interval scheduling) make the problem materially different — this
experiment quantifies how much, on common random workloads.
"""

from __future__ import annotations

from ..algorithms import DepartureAlignedFit, DurationClassifiedFit, FirstFit
from ..core.packing import run_packing
from ..offline.solvers import exact_offline, greedy_offline, local_search
from ..opt.opt_total import opt_total
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["INFORMATION_SPEC", "run_information_price"]


def _information_price(
    n: int = 13,
    seeds: tuple[int, ...] = tuple(range(10)),
    mu_target: float = 6.0,
    node_budget: int = 400_000,
) -> ExperimentResult:
    """Compare the three models on small exactly-solvable instances."""
    exp = ExperimentResult(
        "X3",
        "Price of information and migration (normalised to repacking OPT)",
        notes=(
            "All columns are cost / repacking-OPT lower bound, averaged\n"
            "over seeds.  Expected ordering:\n"
            "  1 ≤ offline_exact ≤ {clairvoyant, greedy+ls} and ≤ first_fit\n"
            "Instances are small so offline_exact is certified optimal."
        ),
    )
    cols = {
        "offline_exact": [],
        "offline_greedy_ls": [],
        "departure_aligned": [],
        "duration_classified": [],
        "first_fit": [],
    }
    certified_all = True
    for seed in seeds:
        inst = poisson_workload(n, seed=seed, mu_target=mu_target, arrival_rate=1.5)
        opt = opt_total(inst, node_budget=node_budget)
        base = opt.lower
        exact, certified = exact_offline(inst, node_budget=node_budget)
        certified_all &= certified
        cols["offline_exact"].append(exact.cost() / base)
        cols["offline_greedy_ls"].append(
            local_search(greedy_offline(inst)).cost() / base
        )
        cols["departure_aligned"].append(
            run_packing(inst, DepartureAlignedFit()).total_usage_time / base
        )
        cols["duration_classified"].append(
            run_packing(inst, DurationClassifiedFit()).total_usage_time / base
        )
        cols["first_fit"].append(
            run_packing(inst, FirstFit()).total_usage_time / base
        )
    for model, vals in cols.items():
        exp.rows.append(
            {
                "model": model,
                "mean_vs_repack_opt": sum(vals) / len(vals),
                "worst_vs_repack_opt": max(vals),
                "exact_certified": certified_all if model == "offline_exact" else "",
            }
        )
    return exp


INFORMATION_SPEC = simple_spec(
    "X3",
    "Price of information and migration (normalised to repacking OPT)",
    _information_price,
    smoke=dict(n=8, seeds=(0,), node_budget=100_000),
)


def run_information_price(**overrides) -> ExperimentResult:
    """Compare the three models on small exactly-solvable instances.

    Back-compat wrapper: runs the X3 spec through the serial runner.
    """
    return run_spec(INFORMATION_SPEC, overrides)
