"""Experiment X2: ablations of the design choices DESIGN.md calls out.

1. **Any-Fit selection rule** — earliest-opened (First Fit) vs fullest
   (Best Fit) vs emptiest (Worst Fit) vs latest-opened (Last Fit) vs
   random, over the standard suite: isolates how much the
   earliest-opened tie-break that Theorem 1's analysis leans on matters
   empirically.
2. **Hybrid First Fit thresholds** — sweep the size-classification
   boundaries.
3. **Analysis-constant reconstruction** — run the Lemma-2 checker under
   neighbouring (pair coefficient, radius divisor) choices, showing the
   reconstructed (µ, µ+1) pair is the one under which the paper's
   non-intersection lemma actually holds.
"""

from __future__ import annotations

from ..algorithms import (
    BestFit,
    FirstFit,
    HybridFirstFit,
    LastFit,
    RandomFit,
    WorstFit,
    make_algorithm,
)
from ..analysis.verification import verify_analysis
from ..core.packing import run_packing
from ..opt.opt_total import opt_total
from ..workloads.random_workloads import batch_workload, poisson_workload
from .comparison import suite_instances
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import simple_spec

__all__ = [
    "CONSTANTS_ABLATION_SPEC",
    "HFF_THRESHOLD_SPEC",
    "SELECTION_ABLATION_SPEC",
    "run_constants_ablation",
    "run_hff_threshold_ablation",
    "run_selection_ablation",
]


def _selection_ablation(
    mu: float = 8.0, node_budget: int = 100_000
) -> ExperimentResult:
    """X2a: Any-Fit selection rules over the standard suite."""
    exp = ExperimentResult(
        "X2a",
        f"Any-Fit selection-rule ablation at µ = {mu:g}",
        notes="worst and mean conservative ratios over the standard suite.",
    )
    suite = suite_instances(mu)
    opts = {name: opt_total(inst, node_budget=node_budget) for name, inst in suite}
    for algo in (FirstFit(), BestFit(), WorstFit(), LastFit(), RandomFit(seed=0)):
        ratios = []
        for inst_name, inst in suite:
            m = measure_ratio(inst, algo, opt=opts[inst_name])
            ratios.append(m.ratio_upper)
        exp.rows.append(
            {
                "selection": algo.name,
                "mean_ratio": sum(ratios) / len(ratios),
                "worst_ratio": max(ratios),
            }
        )
    return exp


def _hff_threshold_ablation(
    mu: float = 8.0,
    thresholds: tuple[tuple[float, ...], ...] = (
        (0.5,),
        (1.0 / 3.0, 0.5),
        (0.25, 0.5, 0.75),
        (),
    ),
    seeds: tuple[int, ...] = (21, 22, 23),
    node_budget: int = 100_000,
) -> ExperimentResult:
    """X2b: Hybrid First Fit classification boundaries.

    The empty threshold tuple degenerates to plain First Fit, giving the
    baseline within the same code path.
    """
    exp = ExperimentResult(
        "X2b",
        "Hybrid First Fit size-threshold ablation",
        notes="mean conservative ratio over random workloads per threshold set.",
    )
    for ts in thresholds:
        ratios = []
        for seed in seeds:
            inst = poisson_workload(80, seed=seed, mu_target=mu, arrival_rate=2.0)
            m = measure_ratio(inst, HybridFirstFit(ts), node_budget=node_budget)
            ratios.append(m.ratio_upper)
        exp.rows.append(
            {
                "thresholds": str(tuple(round(t, 3) for t in ts)) or "()",
                "classes": len(ts) + 1,
                "mean_ratio": sum(ratios) / len(ratios),
                "worst_ratio": max(ratios),
            }
        )
    return exp


def _constants_ablation(
    seeds: tuple[int, ...] = tuple(range(25)),
    n: int = 70,
) -> ExperimentResult:
    """X2c: Lemma 2 holds under (µ, µ+1), fails under neighbours.

    For each candidate (pair coefficient, radius divisor) as functions
    of µ, count the instances (out of the seed batch) with at least one
    supplier-period intersection.
    """
    exp = ExperimentResult(
        "X2c",
        "Analysis-constant reconstruction: Lemma-2 violation rates",
        notes=(
            "The reconstructed constants (pair=µ, radius divisor=µ+1)\n"
            "must show zero violations; neighbouring choices should not."
        ),
    )
    candidates = (
        ("pair=µ, div=µ+1 (reconstructed)", lambda mu: mu, lambda mu: mu + 1.0),
        ("pair=µ, div=µ", lambda mu: mu, lambda mu: mu),
        ("pair=µ-1, div=µ+1", lambda mu: max(mu - 1.0, 0.1), lambda mu: mu + 1.0),
        ("pair=µ, div=2", lambda mu: mu, lambda mu: 2.0),
    )
    # several workload families: small-µ regimes and simultaneous-arrival
    # batches are where wrong constants reveal themselves
    families = [
        lambda seed: poisson_workload(n, seed=seed, mu_target=6.0, arrival_rate=3.0),
        lambda seed: poisson_workload(n, seed=seed, mu_target=5.0, arrival_rate=2.0),
        lambda seed: poisson_workload(n, seed=seed, mu_target=2.0, arrival_rate=3.0),
        lambda seed: batch_workload(6, max(n // 8, 2), seed=seed, mu_target=8.0),
    ]
    results = []
    for seed in seeds:
        for fam in families:
            inst = fam(seed)
            res = run_packing(inst, FirstFit())
            results.append((inst.mu, res))
    for label, pair_fn, div_fn in candidates:
        bad = 0
        for mu, res in results:
            report = verify_analysis(
                res, pair_coefficient=pair_fn(mu), radius_divisor=div_fn(mu)
            )
            if report.failures("lemma2"):
                bad += 1
        exp.rows.append(
            {
                "constants": label,
                "instances": len(results),
                "violating_instances": bad,
            }
        )
    return exp


SELECTION_ABLATION_SPEC = simple_spec(
    "X2a",
    "Any-Fit selection-rule ablation",
    _selection_ablation,
    smoke=dict(mu=4.0, node_budget=8_000),
)

HFF_THRESHOLD_SPEC = simple_spec(
    "X2b",
    "Hybrid First Fit threshold ablation",
    _hff_threshold_ablation,
    smoke=dict(mu=4.0, thresholds=((0.5,), ()), seeds=(1,), node_budget=8_000),
)

CONSTANTS_ABLATION_SPEC = simple_spec(
    "X2c",
    "Analysis-constant reconstruction: Lemma-2 violation rates",
    _constants_ablation,
    smoke=dict(seeds=(0, 1, 2, 3), n=40),
)


def run_selection_ablation(**overrides) -> ExperimentResult:
    """X2a: Any-Fit selection rules over the standard suite.

    Back-compat wrapper: runs the X2a spec through the serial runner.
    """
    return run_spec(SELECTION_ABLATION_SPEC, overrides)


def run_hff_threshold_ablation(**overrides) -> ExperimentResult:
    """X2b: Hybrid First Fit threshold sweep.

    Back-compat wrapper: runs the X2b spec through the serial runner.
    """
    return run_spec(HFF_THRESHOLD_SPEC, overrides)


def run_constants_ablation(**overrides) -> ExperimentResult:
    """X2c: Lemma 2 holds under (µ, µ+1), fails under neighbours.

    Back-compat wrapper: runs the X2c spec through the serial runner.
    """
    return run_spec(CONSTANTS_ABLATION_SPEC, overrides)
