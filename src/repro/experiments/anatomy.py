"""Experiment X11: the anatomy of First Fit's cost.

Equation (1) splits First Fit's cost into `span + ΣV` — the part any
algorithm must pay (some bin must be open whenever work exists) and the
part where *extra* bins overlap earlier ones.  Section V further splits
the overlapped time into h-subperiods (bin provably ≥ half full: dense,
efficient) and l-subperiods (the potentially wasteful part the whole
supplier-period analysis exists to pay for).

This experiment measures those shares across workload families.  The
interpretation key: only the **l-share** can make First Fit bad — the
µ+4 proof is literally a bound on how much l-time the structure permits
— so workloads with a small l-share are First-Fit-friendly regardless
of load, which is exactly what T1's random-vs-adversarial contrast
showed in ratio form.
"""

from __future__ import annotations

from ..algorithms.first_fit import FirstFit
from ..analysis.subperiods import build_subperiods
from ..analysis.usage_periods import decompose_usage_periods
from ..core.packing import run_packing
from ..opt.opt_total import opt_total
from ..workloads.adversarial import universal_lower_bound
from ..workloads.gaming import gaming_workload
from ..workloads.mmpp import mmpp_workload
from ..workloads.random_workloads import batch_workload, poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["ANATOMY_SPEC", "run_cost_anatomy"]


def _cost_anatomy(node_budget: int = 80_000) -> ExperimentResult:
    """span / V(h) / V(l) shares of FF cost across workload families."""
    exp = ExperimentResult(
        "X11",
        "Anatomy of First Fit's cost: span vs overlapped-h vs overlapped-l",
        notes=(
            "shares of FF_total = span + Σ|V| with V split into h-time\n"
            "(level ≥ 1/2, dense) and l-time (the potentially wasteful\n"
            "part the µ+4 proof bounds).  High l-share ⇒ high ratio."
        ),
    )
    families = {
        "poisson-light": poisson_workload(70, seed=2, mu_target=6.0, arrival_rate=1.0),
        "poisson-heavy": poisson_workload(70, seed=2, mu_target=6.0, arrival_rate=5.0),
        "batch": batch_workload(6, 10, seed=2, mu_target=6.0),
        "gaming": gaming_workload(80, seed=2, request_rate=6.0),
        "mmpp-bursty": mmpp_workload(40.0, seed=2, mu_target=6.0),
        "universal-lb": universal_lower_bound(14, 6.0),
    }
    for name, inst in families.items():
        if len(inst) == 0:
            continue
        result = run_packing(inst, FirstFit())
        deco = decompose_usage_periods(result)
        subs = build_subperiods(result, deco)
        total = result.total_usage_time
        l_time = sum(b.total_l for b in subs)
        h_time = sum(b.total_h for b in subs)
        opt = opt_total(inst, node_budget=node_budget)
        exp.rows.append(
            {
                "family": name,
                "ff_total": total,
                "span_share": deco.span / total,
                "overlap_h_share": h_time / total,
                "overlap_l_share": l_time / total,
                "ratio": total / opt.lower,
            }
        )
    return exp


ANATOMY_SPEC = simple_spec(
    "X11",
    "Anatomy of First Fit's cost: span vs overlapped-h vs overlapped-l",
    _cost_anatomy,
    smoke=dict(node_budget=10_000),
)


def run_cost_anatomy(**overrides) -> ExperimentResult:
    """span / V(h) / V(l) shares of FF cost across workload families.

    Back-compat wrapper: runs the X11 spec through the serial runner.
    """
    return run_spec(ANATOMY_SPEC, overrides)
