"""Experiment T2: the Section VIII Next Fit lower bound construction.

Regenerates the paper's comparison: Next Fit pays ``nµ`` on the pair
construction while the optimum pays ``n/2 + µ``, so NF's measured ratio
``nµ/(n/2+µ)`` approaches 2µ as n grows; First Fit on the *same*
instance stays within a small constant of OPT — the paper's point that
the multiplicative factor 2 is inevitable for Next Fit but not for
First Fit.
"""

from __future__ import annotations

from ..algorithms.first_fit import FirstFit
from ..algorithms.next_fit import NextFit
from ..opt.opt_total import opt_total
from ..workloads.adversarial import next_fit_lower_bound
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import simple_spec

__all__ = ["NEXTFIT_LB_SPEC", "run_nextfit_lower_bound"]


def _nextfit_lower_bound(
    ns: tuple[int, ...] = (4, 8, 16, 32, 64),
    mus: tuple[float, ...] = (2.0, 4.0, 8.0),
    node_budget: int = 100_000,
) -> ExperimentResult:
    """Sweep the §VIII construction over n and µ."""
    exp = ExperimentResult(
        "T2",
        "Next Fit lower bound (Section VIII): NF → 2µ, FF stays O(1)",
        notes=(
            "analytic_ratio = nµ/(n/2+µ) — the paper's closed form.  As\n"
            "n → ∞ the NF ratio approaches 2µ.  FF's ratio on the same\n"
            "instance shrinks toward 1."
        ),
    )
    for mu in mus:
        for n in ns:
            inst = next_fit_lower_bound(n, mu)
            opt = opt_total(inst, node_budget=node_budget)
            nf = measure_ratio(inst, NextFit(), opt=opt)
            ff = measure_ratio(inst, FirstFit(), opt=opt)
            analytic = n * mu / (n / 2 + mu)
            exp.rows.append(
                {
                    "mu": mu,
                    "n": n,
                    "nf_total": nf.total_usage_time,
                    "opt_lower": opt.lower,
                    "nf_ratio": nf.ratio_upper,
                    "analytic_ratio": analytic,
                    "limit(2mu)": 2 * mu,
                    "ff_ratio": ff.ratio_upper,
                }
            )
    return exp


NEXTFIT_LB_SPEC = simple_spec(
    "T2",
    "Next Fit lower bound (Section VIII): NF → 2µ, FF stays O(1)",
    _nextfit_lower_bound,
    smoke=dict(ns=(4, 8), mus=(2.0,), node_budget=10_000),
)


def run_nextfit_lower_bound(**overrides) -> ExperimentResult:
    """Sweep the §VIII construction over n and µ.

    Back-compat wrapper: runs the T2 spec through the serial runner.
    """
    return run_spec(NEXTFIT_LB_SPEC, overrides)
