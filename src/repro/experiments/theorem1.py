"""Experiment T1: empirical verification of Theorem 1 (FF ≤ (µ+4)·OPT).

Sweeps µ over adversarial and random workload suites, measuring the
conservative First Fit ratio (FF_total / OPT lower bound) and the bound
µ+4.  The paper proves the bound analytically; the reproduction's claim
is that the measured ratio never exceeds it and that the adversarial
suite pushes the ratio to within a constant of the µ lower bound.
"""

from __future__ import annotations

from ..algorithms.first_fit import FirstFit
from ..analysis.bounds import theorem1_upper_bound
from ..opt.opt_total import opt_total
from ..workloads.adversarial import universal_lower_bound
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import simple_spec

__all__ = ["THEOREM1_SPEC", "run_theorem1"]


def _theorem1(
    mus: tuple[float, ...] = (2.0, 4.0, 8.0, 16.0),
    adversarial_n: int = 24,
    random_n: int = 80,
    random_seeds: tuple[int, ...] = (1, 2, 3),
    node_budget: int = 100_000,
) -> ExperimentResult:
    """Measure the FF ratio against µ+4 across µ and workload families."""
    exp = ExperimentResult(
        "T1",
        "First Fit competitive ratio vs Theorem 1 bound (µ+4)",
        notes=(
            "ratio_upper = FF_total / certified OPT lower bound (conservative).\n"
            "Expect: adversarial ratio ≈ µ·n/(n+µ) (approaches the µ lower\n"
            "bound), random ratios ≈ 1–2, and every row within bound."
        ),
    )
    for mu in mus:
        inst = universal_lower_bound(adversarial_n, mu)
        m = measure_ratio(inst, FirstFit(), node_budget=node_budget)
        exp.rows.append(
            {
                "mu": mu,
                "workload": f"adversarial(n={adversarial_n})",
                "ff_total": m.total_usage_time,
                "opt_lower": m.opt.lower,
                "ratio_upper": m.ratio_upper,
                "bound(mu+4)": theorem1_upper_bound(mu),
                "within_bound": m.ratio_upper <= theorem1_upper_bound(mu) + 1e-9,
            }
        )
        ratios = []
        for seed in random_seeds:
            inst = poisson_workload(
                random_n, seed=seed, mu_target=mu, arrival_rate=2.0
            )
            m = measure_ratio(inst, FirstFit(), node_budget=node_budget)
            ratios.append(m.ratio_upper)
        exp.rows.append(
            {
                "mu": mu,
                "workload": f"poisson(n={random_n})x{len(random_seeds)}",
                "ff_total": float("nan"),
                "opt_lower": float("nan"),
                "ratio_upper": max(ratios),
                "bound(mu+4)": theorem1_upper_bound(mu),
                "within_bound": max(ratios) <= theorem1_upper_bound(mu) + 1e-9,
            }
        )
    return exp


THEOREM1_SPEC = simple_spec(
    "T1",
    "First Fit competitive ratio vs Theorem 1 bound (µ+4)",
    _theorem1,
    smoke=dict(
        mus=(2.0,), adversarial_n=8, random_n=20, random_seeds=(1,),
        node_budget=10_000,
    ),
)


def run_theorem1(**overrides) -> ExperimentResult:
    """Measure the FF ratio against µ+4 across µ and workload families."""
    return run_spec(THEOREM1_SPEC, overrides)
