"""Experiment X8: value of departure predictions vs their accuracy.

Sweeps the predictor's log-normal noise σ from 0 (perfect oracle =
clairvoyant departure alignment) upward, measuring the mean ratio
against First Fit (no information) and the oracle on the same
instances.  The learning-augmented shape to reproduce: *consistency* (at
σ=0 the predicted policy matches the oracle) and graceful degradation
(cost approaches — and with bad enough predictions can exceed — plain
First Fit, which never trusted anyone).
"""

from __future__ import annotations

import numpy as np

from ..algorithms.clairvoyant import DepartureAlignedFit
from ..algorithms.first_fit import FirstFit
from ..algorithms.predictions import PredictedDepartureFit
from ..core.packing import run_packing
from ..opt.opt_total import opt_total
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["PREDICTIONS_SPEC", "run_predictions"]


def _predictions(
    sigmas: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0, 2.0),
    n: int = 70,
    replications: int = 8,
    mu_target: float = 8.0,
    node_budget: int = 50_000,
) -> ExperimentResult:
    """Noise sweep; First Fit and the oracle as anchors."""
    exp = ExperimentResult(
        "X8",
        "Learning-augmented packing: ratio vs departure-prediction noise",
        notes=(
            "mean conservative ratio over replications.  σ=0 must equal\n"
            "the clairvoyant oracle row; growing σ must move the policy\n"
            "toward (or past) the First Fit anchor."
        ),
    )
    instances = [
        poisson_workload(n, seed=500 + r, mu_target=mu_target, arrival_rate=3.0)
        for r in range(replications)
    ]
    opts = [opt_total(inst, node_budget=node_budget) for inst in instances]

    def mean_ratio(make_algo) -> float:
        ratios = [
            run_packing(inst, make_algo()).total_usage_time / opt.lower
            for inst, opt in zip(instances, opts)
        ]
        return float(np.mean(ratios))

    oracle = mean_ratio(DepartureAlignedFit)
    ff = mean_ratio(FirstFit)
    exp.rows.append({"policy": "oracle (σ=0 exact)", "sigma": 0.0, "mean_ratio": oracle})
    for sigma in sigmas:
        exp.rows.append(
            {
                "policy": "predicted-departure-fit",
                "sigma": sigma,
                "mean_ratio": mean_ratio(
                    lambda s=sigma: PredictedDepartureFit(sigma=s, seed=1)
                ),
            }
        )
    exp.rows.append({"policy": "first-fit (no info)", "sigma": float("nan"), "mean_ratio": ff})
    return exp


PREDICTIONS_SPEC = simple_spec(
    "X8",
    "Learning-augmented packing: ratio vs departure-prediction noise",
    _predictions,
    smoke=dict(sigmas=(0.0, 1.0), n=30, replications=2, node_budget=10_000),
)


def run_predictions(**overrides) -> ExperimentResult:
    """Noise sweep; First Fit and the oracle as anchors.

    Back-compat wrapper: runs the X8 spec through the serial runner.
    """
    return run_spec(PREDICTIONS_SPEC, overrides)
