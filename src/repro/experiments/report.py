"""Full reproduction report: run every experiment, write one document.

Used by ``repro report`` and by the release process: a single command
regenerates every figure and table with the default configurations and
writes a timestamped markdown document whose sections mirror the
DESIGN.md experiment index.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Optional

from .figures import FigureOutput
from .harness import ExperimentResult

__all__ = ["generate_report", "run_all_experiments"]


def run_all_experiments(
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict[str, object]:
    """Run every registered experiment (or a subset) and collect results."""
    # imported here to avoid a cycle with the package __init__, which
    # defines the registry after importing the experiment modules
    from . import EXPERIMENT_REGISTRY

    out: dict[str, object] = {}
    for eid in sorted(EXPERIMENT_REGISTRY):
        if only is not None and eid not in only:
            continue
        if progress is not None:
            progress(eid)
        out[eid] = EXPERIMENT_REGISTRY[eid]()
    return out


def _render_one(eid: str, result: object) -> str:
    if isinstance(result, FigureOutput):
        return f"## {eid}\n\n```\n{result.rendering}\n```\n"
    if isinstance(result, ExperimentResult):
        return f"## {eid} — {result.title}\n\n```\n{result.render()}\n```\n"
    return f"## {eid}\n\n```\n{result}\n```\n"


def generate_report(
    path: str | Path,
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Path:
    """Run experiments and write the consolidated markdown report."""
    results = run_all_experiments(only=only, progress=progress)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S")
    parts = [
        "# Reproduction report",
        "",
        f"Generated {stamp} by `repro report`.",
        "",
        "Paper: Tang, Li, Ren, Cai — *On First Fit Bin Packing for Online "
        "Cloud Server Allocation*, IPDPS 2016.",
        "See DESIGN.md for the experiment index and EXPERIMENTS.md for the "
        "paper-vs-measured discussion.",
        "",
    ]
    for eid, result in results.items():
        parts.append(_render_one(eid, result))
    path = Path(path)
    path.write_text("\n".join(parts))
    return path
