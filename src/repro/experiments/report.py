"""Full reproduction report: run every experiment, write one document.

Used by ``repro report`` and by the release process: a single command
regenerates every figure and table and writes a markdown document whose
sections follow the natural DESIGN.md experiment index (F1…F5-F6,
T1…T8, X1…X11 — not lexicographic order).

Built on the experiment framework (:mod:`repro.experiments.runner`):

- ``workers`` fans the shards of every experiment across processes,
- ``cache_dir`` stores each result as a content-addressed JSON
  artifact as it completes,
- ``resume`` serves cached artifacts instead of recomputing, so a
  crashed or repeated report only pays for what is missing, and
- the timestamp is injectable (``stamp=`` / ``SOURCE_DATE_EPOCH``) so
  two runs with the same seeds produce byte-identical documents.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Callable, Optional

from .figures import FigureOutput
from .harness import ExperimentResult
from .runner import ExperimentRunner, RunSummary

__all__ = ["generate_report", "resolve_stamp", "run_all_experiments"]


def _select(only: Optional[tuple[str, ...]]) -> list[str]:
    """Requested experiment ids, in natural index order."""
    from . import EXPERIMENT_ORDER

    if only is None:
        return list(EXPERIMENT_ORDER)
    unknown = sorted(set(only) - set(EXPERIMENT_ORDER))
    if unknown:
        raise ValueError(f"unknown experiment ids: {', '.join(unknown)}")
    return [eid for eid in EXPERIMENT_ORDER if eid in only]


def run_all_experiments(
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str | Path] = None,
    resume: bool = False,
    profile: Optional[str] = None,
) -> dict[str, object]:
    """Run every registered experiment (or a subset) and collect results.

    Results are keyed by experiment id in natural index order; see
    :func:`run_all_experiments_summary` for the cache-hit accounting.
    """
    return run_all_experiments_summary(
        only=only,
        progress=progress,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        profile=profile,
    ).results()


def run_all_experiments_summary(
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str | Path] = None,
    resume: bool = False,
    profile: Optional[str] = None,
) -> RunSummary:
    """:func:`run_all_experiments`, returning the full runner summary."""
    # imported here to avoid a cycle with the package __init__, which
    # defines the registries after importing the experiment modules
    from . import SPEC_REGISTRY

    runner = ExperimentRunner(
        workers=workers, cache_dir=cache_dir, resume=resume, progress=progress
    )
    requests = [(SPEC_REGISTRY[eid], None) for eid in _select(only)]
    return runner.run_many(requests, profile=profile)


def resolve_stamp(stamp: Optional[str] = None) -> str:
    """The report timestamp: explicit ``stamp``, else ``SOURCE_DATE_EPOCH``
    (reproducible-builds convention, rendered as UTC), else wall clock."""
    if stamp is not None:
        return stamp
    epoch = os.environ.get("SOURCE_DATE_EPOCH")
    if epoch:
        return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(int(epoch)))
    return time.strftime("%Y-%m-%d %H:%M:%S")


def _render_one(eid: str, result: object) -> str:
    if isinstance(result, FigureOutput):
        return f"## {eid}\n\n```\n{result.rendering}\n```\n"
    if isinstance(result, ExperimentResult):
        return f"## {eid} — {result.title}\n\n```\n{result.render()}\n```\n"
    return f"## {eid}\n\n```\n{result}\n```\n"


def generate_report(
    path: str | Path,
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str | Path] = None,
    resume: bool = False,
    profile: Optional[str] = None,
    stamp: Optional[str] = None,
) -> Path:
    """Run experiments and write the consolidated markdown report."""
    return generate_report_summary(
        path,
        only=only,
        progress=progress,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        profile=profile,
        stamp=stamp,
    )[0]


def generate_report_summary(
    path: str | Path,
    only: Optional[tuple[str, ...]] = None,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = None,
    cache_dir: Optional[str | Path] = None,
    resume: bool = False,
    profile: Optional[str] = None,
    stamp: Optional[str] = None,
) -> tuple[Path, RunSummary]:
    """:func:`generate_report`, also returning the runner summary."""
    summary = run_all_experiments_summary(
        only=only,
        progress=progress,
        workers=workers,
        cache_dir=cache_dir,
        resume=resume,
        profile=profile,
    )
    parts = [
        "# Reproduction report",
        "",
        f"Generated {resolve_stamp(stamp)} by `repro report`.",
        "",
        "Paper: Tang, Li, Ren, Cai — *On First Fit Bin Packing for Online "
        "Cloud Server Allocation*, IPDPS 2016.",
        "See DESIGN.md for the experiment index and EXPERIMENTS.md for the "
        "paper-vs-measured discussion.",
        "",
    ]
    for eid, result in summary.results().items():
        parts.append(_render_one(eid, result))
    path = Path(path)
    path.write_text("\n".join(parts))
    return path, summary
