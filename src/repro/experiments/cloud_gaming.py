"""Experiment T6: the motivating application end to end.

Total renting cost of each dispatch policy on synthetic cloud-gaming
workloads at three load levels, under the paper's continuous billing and
under classic hourly billing.  The expected shape: First Fit is never
worse than the other Any Fit policies, Next Fit trails, and hourly
quantisation compresses the differences (every server's tail hour is
rounded up regardless of policy).
"""

from __future__ import annotations

from ..cloud.billing import ContinuousBilling, HourlyBilling
from ..cloud.gaming_service import GamingScenario, run_gaming_comparison
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["CLOUD_GAMING_SPEC", "run_cloud_gaming"]


def _cloud_gaming(
    num_sessions: int = 300,
    rates: tuple[float, ...] = (1.0, 4.0, 12.0),
    seed: int = 42,
) -> ExperimentResult:
    """Sweep load level × billing model for all candidate policies."""
    exp = ExperimentResult(
        "T6",
        "Cloud gaming dispatch: total renting cost by policy and billing",
        notes=(
            "cost is total billed server-hours (unit price).  Lower is\n"
            "better; 'vs_ff' is the policy's cost relative to First Fit\n"
            "under the same scenario."
        ),
    )
    for rate in rates:
        for billing, bname in (
            (ContinuousBilling(), "continuous"),
            (HourlyBilling(quantum=1.0), "hourly"),
        ):
            scenario = GamingScenario(
                name=f"rate={rate:g}/{bname}",
                num_sessions=num_sessions,
                request_rate=rate,
                seed=seed,
                billing=billing,
            )
            comp = run_gaming_comparison(scenario)
            ff_cost = comp.reports["first-fit"].total_cost
            for name, rep in sorted(comp.reports.items()):
                exp.rows.append(
                    {
                        "rate": rate,
                        "billing": bname,
                        "algorithm": name,
                        "servers": rep.num_servers,
                        "usage_h": rep.total_usage_time,
                        "cost": rep.total_cost,
                        "vs_ff": rep.total_cost / ff_cost if ff_cost else 1.0,
                    }
                )
    return exp


CLOUD_GAMING_SPEC = simple_spec(
    "T6",
    "Cloud gaming dispatch: total renting cost by policy and billing",
    _cloud_gaming,
    smoke=dict(num_sessions=40, rates=(2.0,)),
)


def run_cloud_gaming(**overrides) -> ExperimentResult:
    """Sweep load level × billing model for all candidate policies.

    Back-compat wrapper: runs the T6 spec through the serial runner.
    """
    return run_spec(CLOUD_GAMING_SPEC, overrides)
