"""Experiment X6: resource augmentation sweep.

How fast do the adversarial gadgets collapse when the online algorithm
gets capacity ``1+ε`` against a unit-capacity adversary?  The paper's
reference [5] proves augmented bounds for standard DBP; here we measure
the MinUsageTime analogue on our gadgets and random workloads.
"""

from __future__ import annotations

from ..algorithms import FirstFit, NextFit, make_algorithm
from ..analysis.augmentation import augmented_ratio
from ..opt.opt_total import opt_total
from ..workloads.adversarial import next_fit_lower_bound, universal_lower_bound
from ..workloads.random_workloads import poisson_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["AUGMENTATION_SPEC", "run_augmentation"]


def _augmentation(
    epsilons: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0),
    mu: float = 8.0,
    n: int = 16,
    node_budget: int = 100_000,
) -> ExperimentResult:
    """ε sweep on the two gadgets and a random workload."""
    exp = ExperimentResult(
        "X6",
        f"Resource augmentation: ALG at capacity 1+ε vs OPT at 1 (µ = {mu:g})",
        notes=(
            "Moderate ε collapses the gadgets (blocker+filler no longer\n"
            "pins a bin; the §VIII pairs start sharing).  NOTE the measured\n"
            "non-monotonicity on the universal gadget at large ε: once two\n"
            "blockers fit one bin, First Fit re-concentrates the long\n"
            "fillers into n/2 long-lived bins — augmentation tuned past a\n"
            "gadget's geometry can *hurt*.  Random workloads decay\n"
            "monotonically and drop below 1 (bigger bins beat the\n"
            "unit-capacity adversary outright)."
        ),
    )
    instances = {
        "universal-lb/first-fit": (universal_lower_bound(n, mu), FirstFit()),
        "nextfit-lb/next-fit": (next_fit_lower_bound(n, mu), NextFit()),
        "poisson/first-fit": (
            poisson_workload(70, seed=5, mu_target=mu, arrival_rate=3.0),
            FirstFit(),
        ),
    }
    for label, (items, algo) in instances.items():
        opt = opt_total(items, node_budget=node_budget)
        row = {"instance/alg": label}
        for eps in epsilons:
            row[f"eps={eps:g}"] = augmented_ratio(items, algo, eps, opt=opt)
        exp.rows.append(row)
    return exp


AUGMENTATION_SPEC = simple_spec(
    "X6",
    "Resource augmentation: ALG at capacity 1+ε vs OPT at 1",
    _augmentation,
    smoke=dict(epsilons=(0.0, 0.5), n=8, mu=4.0, node_budget=20_000),
)


def run_augmentation(**overrides) -> ExperimentResult:
    """ε sweep on the two gadgets and a random workload.

    Back-compat wrapper: runs the X6 spec through the serial runner.
    """
    return run_spec(AUGMENTATION_SPEC, overrides)
