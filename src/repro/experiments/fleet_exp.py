"""Experiment T7: heterogeneous fleets on the gaming workload.

Extends T6 beyond the paper's single server type: the same session
stream dispatched over a small/medium/large catalogue under each launch
policy, against the homogeneous medium-only baseline.  The question a
provider actually faces: does a mixed fleet beat renting one size?
"""

from __future__ import annotations

from ..cloud.billing import ContinuousBilling, HourlyBilling
from ..cloud.fleet import (
    DEFAULT_FLEET_CATALOGUE,
    BestDensity,
    CheapestFitting,
    FleetDispatcher,
    SmallestFitting,
)
from ..cloud.server import InstanceType
from ..workloads.gaming import gaming_workload
from .harness import ExperimentResult
from .runner import run_spec
from .spec import simple_spec

__all__ = ["FLEET_SPEC", "run_fleet_comparison"]


def _fleet_comparison(
    num_sessions: int = 300,
    rates: tuple[float, ...] = (2.0, 8.0),
    seed: int = 7,
) -> ExperimentResult:
    """Launch-policy × load sweep, homogeneous baseline included."""
    exp = ExperimentResult(
        "T7",
        "Heterogeneous fleet: launch policies vs homogeneous baseline",
        notes=(
            "All rows dispatch the identical session stream (First-Fit\n"
            "placement).  'homogeneous' rents only the medium type —\n"
            "the paper's single-capacity setting."
        ),
    )
    homogeneous = (InstanceType("medium", capacity=1.0, hourly_price=1.0),)
    configs = [
        ("homogeneous", homogeneous, SmallestFitting()),
        ("smallest-fitting", DEFAULT_FLEET_CATALOGUE, SmallestFitting()),
        ("cheapest-fitting", DEFAULT_FLEET_CATALOGUE, CheapestFitting()),
        ("best-density", DEFAULT_FLEET_CATALOGUE, BestDensity()),
    ]
    for rate in rates:
        jobs = gaming_workload(num_sessions, seed=seed, request_rate=rate)
        base_cost = None
        for label, catalogue, policy in configs:
            report = FleetDispatcher(
                catalogue, launch_policy=policy, billing=ContinuousBilling()
            ).dispatch(jobs)
            if label == "homogeneous":
                base_cost = report.total_cost
            exp.rows.append(
                {
                    "rate": rate,
                    "config": label,
                    "servers": report.num_servers,
                    "by_type": str(report.servers_by_type()),
                    "cost": report.total_cost,
                    "vs_homog": report.total_cost / base_cost,
                }
            )
    return exp


FLEET_SPEC = simple_spec(
    "T7",
    "Heterogeneous fleet: launch policies vs homogeneous baseline",
    _fleet_comparison,
    smoke=dict(num_sessions=60, rates=(4.0,)),
)


def run_fleet_comparison(**overrides) -> ExperimentResult:
    """Launch-policy × load sweep, homogeneous baseline included.

    Back-compat wrapper: runs the T7 spec through the serial runner.
    """
    return run_spec(FLEET_SPEC, overrides)
