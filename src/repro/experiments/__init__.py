"""Per-figure/table experiment harness (see DESIGN.md §3 for the index)."""

from .adaptive import run_adaptive_adversary
from .anatomy import run_cost_anatomy
from .augmentation_exp import run_augmentation
from .ablation import (
    run_constants_ablation,
    run_hff_threshold_ablation,
    run_selection_ablation,
)
from .cloud_gaming import run_cloud_gaming
from .comparison import run_bounds_table, suite_instances
from .deferral_exp import run_deferral
from .fleet_exp import run_fleet_comparison
from .figures import (
    FigureOutput,
    figure1_instance,
    figure1_span,
    figure2_usage_periods,
    figure3_subperiods,
    figure4_supplier,
    figures56_nonintersection,
)
from .harness import ExperimentResult, RatioMeasurement, format_table, measure_ratio
from .exploration import run_worst_case_search
from .information import run_information_price
from .lower_bounds import run_bestfit_staircase, run_universal_lower_bound
from .migration_exp import run_migration_budget
from .montecarlo import bootstrap_ci, run_expected_ratio
from .multidim_exp import run_multidim
from .nextfit import run_nextfit_lower_bound
from .predictions_exp import run_predictions
from .report import generate_report, run_all_experiments
from .retention_exp import run_retention
from .theorem1 import run_theorem1

#: id → runnable, mirroring the DESIGN.md experiment index.
EXPERIMENT_REGISTRY = {
    "F1": figure1_span,
    "F2": figure2_usage_periods,
    "F3": figure3_subperiods,
    "F4": figure4_supplier,
    "F5-F6": figures56_nonintersection,
    "T1": run_theorem1,
    "T2": run_nextfit_lower_bound,
    "T3": run_universal_lower_bound,
    "T4": run_bestfit_staircase,
    "T5": run_bounds_table,
    "T6": run_cloud_gaming,
    "T7": run_fleet_comparison,
    "T8": run_retention,
    "X1": run_multidim,
    "X2a": run_selection_ablation,
    "X2b": run_hff_threshold_ablation,
    "X2c": run_constants_ablation,
    "X3": run_information_price,
    "X4": run_adaptive_adversary,
    "X5": run_worst_case_search,
    "X6": run_augmentation,
    "X7": run_expected_ratio,
    "X8": run_predictions,
    "X9": run_deferral,
    "X10": run_migration_budget,
    "X11": run_cost_anatomy,
}

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "FigureOutput",
    "RatioMeasurement",
    "figure1_instance",
    "figure1_span",
    "figure2_usage_periods",
    "figure3_subperiods",
    "figure4_supplier",
    "figures56_nonintersection",
    "format_table",
    "measure_ratio",
    "run_bestfit_staircase",
    "run_bounds_table",
    "run_cloud_gaming",
    "run_fleet_comparison",
    "run_constants_ablation",
    "run_hff_threshold_ablation",
    "run_multidim",
    "run_nextfit_lower_bound",
    "run_predictions",
    "run_retention",
    "run_deferral",
    "run_migration_budget",
    "run_cost_anatomy",
    "run_adaptive_adversary",
    "run_augmentation",
    "run_expected_ratio",
    "bootstrap_ci",
    "generate_report",
    "run_all_experiments",
    "run_information_price",
    "run_selection_ablation",
    "run_theorem1",
    "run_universal_lower_bound",
    "run_worst_case_search",
    "suite_instances",
]
