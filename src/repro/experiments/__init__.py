"""Per-figure/table experiment harness (see DESIGN.md §3 for the index).

Every experiment is a declarative :class:`~repro.experiments.spec.ExperimentSpec`
(``SPEC_REGISTRY``) driven by the :mod:`~repro.experiments.runner`
framework — sharded execution, content-addressed artifact cache, resume.
The historical ``run_*`` callables (``EXPERIMENT_REGISTRY``) remain as
thin back-compat wrappers that run their spec through the serial runner.
"""

from .adaptive import ADAPTIVE_SPEC, run_adaptive_adversary
from .anatomy import ANATOMY_SPEC, run_cost_anatomy
from .augmentation_exp import AUGMENTATION_SPEC, run_augmentation
from .ablation import (
    CONSTANTS_ABLATION_SPEC,
    HFF_THRESHOLD_SPEC,
    SELECTION_ABLATION_SPEC,
    run_constants_ablation,
    run_hff_threshold_ablation,
    run_selection_ablation,
)
from .cloud_gaming import CLOUD_GAMING_SPEC, run_cloud_gaming
from .comparison import BOUNDS_TABLE_SPEC, run_bounds_table, suite_instances
from .defrag_exp import DEFRAG_SPEC, run_defrag_budget
from .deferral_exp import DEFERRAL_SPEC, run_deferral
from .fleet_exp import FLEET_SPEC, run_fleet_comparison
from .figures import (
    FIGURE_SPECS,
    FigureOutput,
    figure1_instance,
    figure1_span,
    figure2_usage_periods,
    figure3_subperiods,
    figure4_supplier,
    figures56_nonintersection,
)
from .harness import ExperimentResult, RatioMeasurement, format_table, measure_ratio
from .exploration import WORST_CASE_SPEC, run_worst_case_search
from .information import INFORMATION_SPEC, run_information_price
from .lower_bounds import (
    BESTFIT_STAIRCASE_SPEC,
    UNIVERSAL_LB_SPEC,
    run_bestfit_staircase,
    run_universal_lower_bound,
)
from .migration_exp import MIGRATION_SPEC, run_migration_budget
from .montecarlo import EXPECTED_RATIO_SPEC, bootstrap_ci, run_expected_ratio
from .multidim_exp import MULTIDIM_SPEC, run_multidim
from .nextfit import NEXTFIT_LB_SPEC, run_nextfit_lower_bound
from .predictions_exp import PREDICTIONS_SPEC, run_predictions
from .report import generate_report, run_all_experiments
from .retention_exp import RETENTION_SPEC, run_retention
from .runner import ExperimentRunner, ResultCache, RunSummary, run_spec
from .spec import ExperimentSpec, ParamSpec
from .theorem1 import THEOREM1_SPEC, run_theorem1
from .traces_exp import TRACES_SPEC, run_trace_benchmark

#: id → spec, in the natural DESIGN.md experiment-index order
#: (figures, then theorem tables, then extensions).
SPEC_REGISTRY: dict[str, ExperimentSpec] = {
    spec.id: spec
    for spec in (
        *FIGURE_SPECS,
        THEOREM1_SPEC,
        NEXTFIT_LB_SPEC,
        UNIVERSAL_LB_SPEC,
        BESTFIT_STAIRCASE_SPEC,
        BOUNDS_TABLE_SPEC,
        CLOUD_GAMING_SPEC,
        FLEET_SPEC,
        RETENTION_SPEC,
        MULTIDIM_SPEC,
        SELECTION_ABLATION_SPEC,
        HFF_THRESHOLD_SPEC,
        CONSTANTS_ABLATION_SPEC,
        INFORMATION_SPEC,
        ADAPTIVE_SPEC,
        WORST_CASE_SPEC,
        AUGMENTATION_SPEC,
        EXPECTED_RATIO_SPEC,
        PREDICTIONS_SPEC,
        DEFERRAL_SPEC,
        MIGRATION_SPEC,
        ANATOMY_SPEC,
        TRACES_SPEC,
        DEFRAG_SPEC,
    )
}

#: experiment ids in report/index order — NOT lexicographic (sorted()
#: would interleave X1, X10, X11, X2a, …)
EXPERIMENT_ORDER: tuple[str, ...] = tuple(SPEC_REGISTRY)

#: id → back-compat runnable, mirroring the DESIGN.md experiment index.
EXPERIMENT_REGISTRY = {
    "F1": figure1_span,
    "F2": figure2_usage_periods,
    "F3": figure3_subperiods,
    "F4": figure4_supplier,
    "F5-F6": figures56_nonintersection,
    "T1": run_theorem1,
    "T2": run_nextfit_lower_bound,
    "T3": run_universal_lower_bound,
    "T4": run_bestfit_staircase,
    "T5": run_bounds_table,
    "T6": run_cloud_gaming,
    "T7": run_fleet_comparison,
    "T8": run_retention,
    "X1": run_multidim,
    "X2a": run_selection_ablation,
    "X2b": run_hff_threshold_ablation,
    "X2c": run_constants_ablation,
    "X3": run_information_price,
    "X4": run_adaptive_adversary,
    "X5": run_worst_case_search,
    "X6": run_augmentation,
    "X7": run_expected_ratio,
    "X8": run_predictions,
    "X9": run_deferral,
    "X10": run_migration_budget,
    "X11": run_cost_anatomy,
    "X12": run_trace_benchmark,
    "X13": run_defrag_budget,
}

assert set(EXPERIMENT_REGISTRY) == set(SPEC_REGISTRY), "registries diverged"

__all__ = [
    "EXPERIMENT_ORDER",
    "EXPERIMENT_REGISTRY",
    "SPEC_REGISTRY",
    "ExperimentResult",
    "ExperimentRunner",
    "ExperimentSpec",
    "FigureOutput",
    "ParamSpec",
    "RatioMeasurement",
    "ResultCache",
    "RunSummary",
    "figure1_instance",
    "figure1_span",
    "figure2_usage_periods",
    "figure3_subperiods",
    "figure4_supplier",
    "figures56_nonintersection",
    "format_table",
    "measure_ratio",
    "run_bestfit_staircase",
    "run_bounds_table",
    "run_cloud_gaming",
    "run_fleet_comparison",
    "run_constants_ablation",
    "run_hff_threshold_ablation",
    "run_multidim",
    "run_nextfit_lower_bound",
    "run_predictions",
    "run_retention",
    "run_deferral",
    "run_defrag_budget",
    "run_migration_budget",
    "run_cost_anatomy",
    "run_adaptive_adversary",
    "run_augmentation",
    "run_expected_ratio",
    "run_spec",
    "bootstrap_ci",
    "generate_report",
    "run_all_experiments",
    "run_information_price",
    "run_selection_ablation",
    "run_theorem1",
    "run_trace_benchmark",
    "run_universal_lower_bound",
    "run_worst_case_search",
    "suite_instances",
]
