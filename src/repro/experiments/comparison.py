"""Experiment T5: bounds table vs measured worst-case ratios.

One row per algorithm: its analytic lower/upper bound at a given µ
(Section I/II narrative, :mod:`repro.analysis.bounds`) next to the worst
measured ratio over the full adversarial + random suite.  The measured
column must respect both bounds: at least as large as what the matching
adversarial gadget forces, never above the analytic upper bound
(when one exists).
"""

from __future__ import annotations

from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..analysis.bounds import KNOWN_BOUNDS
from ..core.items import ItemList
from ..opt.opt_total import opt_total
from ..workloads.adversarial import (
    best_fit_staircase,
    next_fit_lower_bound,
    universal_lower_bound,
)
from ..workloads.random_workloads import batch_workload, poisson_workload
from .harness import ExperimentResult, measure_ratio
from .runner import run_spec
from .spec import ExperimentSpec, params_from_signature

__all__ = ["BOUNDS_TABLE_SPEC", "run_bounds_table", "suite_instances"]

DEFAULT_ALGOS = (
    "first-fit",
    "best-fit",
    "worst-fit",
    "last-fit",
    "next-fit",
    "hybrid-first-fit",
    "classified-next-fit",
)


def suite_instances(mu: float, seeds: tuple[int, ...] = (11, 12)) -> list[tuple[str, ItemList]]:
    """The standard instance suite at a given µ."""
    suite: list[tuple[str, ItemList]] = [
        ("universal-lb", universal_lower_bound(16, mu)),
        ("nextfit-lb", next_fit_lower_bound(16, mu)),
        ("bf-staircase", best_fit_staircase(20, mu)),
    ]
    for seed in seeds:
        suite.append(
            (f"poisson-{seed}", poisson_workload(70, seed=seed, mu_target=mu, arrival_rate=2.0))
        )
        suite.append(
            (f"batch-{seed}", batch_workload(5, 8, seed=seed, mu_target=mu))
        )
    return suite


def _opt_bracket(task: tuple[ItemList, int]):
    """OPT bracket for one suite instance (top-level: pickles to workers)."""
    items, node_budget = task
    return opt_total(items, node_budget=node_budget)


def _bounds_table_defaults(
    mu: float = 8.0,
    algorithms: tuple[str, ...] = DEFAULT_ALGOS,
    node_budget: int = 100_000,
) -> None:
    """Signature-only carrier of the T5 parameter table."""


def _bounds_table_tasks(params: dict) -> list[tuple[ItemList, int]]:
    """One shard per suite instance: its OPT bracket (the hot part)."""
    suite = suite_instances(params["mu"])
    return [(inst, params["node_budget"]) for _, inst in suite]


def _bounds_table_merge(params: dict, brackets: list) -> ExperimentResult:
    """Algorithm runs + table assembly (fast, stays in-process)."""
    mu = params["mu"]
    exp = ExperimentResult(
        "T5",
        f"Known bounds vs measured worst-case ratios at µ = {mu:g}",
        notes=(
            "measured_worst is the max conservative ratio over the suite\n"
            "(adversarial gadgets + random workloads); analytic columns\n"
            "from Section I/II (reconstructed constants flagged in\n"
            "repro.analysis.bounds)."
        ),
    )
    suite = suite_instances(mu)
    opts = {name: bracket for (name, _), bracket in zip(suite, brackets)}
    bound_by_name = {b.algorithm: b for b in KNOWN_BOUNDS}
    for algo_name in params["algorithms"]:
        worst = 0.0
        worst_on = ""
        for inst_name, inst in suite:
            m = measure_ratio(inst, make_algorithm(algo_name), opt=opts[inst_name])
            if m.ratio_upper > worst:
                worst, worst_on = m.ratio_upper, inst_name
        entry = bound_by_name.get(algo_name)
        lower = entry.lower_at(mu) if entry and entry.lower else None
        upper = entry.upper_at(mu) if entry and entry.upper else None
        exp.rows.append(
            {
                "algorithm": algo_name,
                "analytic_lower": "—" if lower is None else (
                    "unbounded" if lower == float("inf") else f"{lower:.2f}"
                ),
                "analytic_upper": "—" if upper is None else f"{upper:.2f}",
                "measured_worst": worst,
                "worst_on": worst_on,
            }
        )
    return exp


BOUNDS_TABLE_SPEC = ExperimentSpec(
    id="T5",
    title="Known bounds vs measured worst-case ratios at one µ",
    doc="Measured worst ratios next to the analytic bounds at one µ.",
    params=params_from_signature(
        _bounds_table_defaults,
        smoke=dict(mu=4.0, algorithms=("first-fit", "next-fit"), node_budget=8_000),
    ),
    tasks=_bounds_table_tasks,
    run_task=_opt_bracket,
    merge=_bounds_table_merge,
    module=__name__,
)


def run_bounds_table(workers: int | None = None, **overrides) -> ExperimentResult:
    """Measured worst ratios next to the analytic bounds at one µ.

    Back-compat wrapper over the T5 spec: the per-instance OPT brackets
    dominate the runtime, so the spec shards one task per suite
    instance and ``workers`` spreads them over processes (serial by
    default, ``-1`` = one per CPU).
    """
    return run_spec(BOUNDS_TABLE_SPEC, overrides, workers=workers)
