"""First Fit — the algorithm the paper analyses (Section III-B).

    "Each time when a new item arrives, if there are one or more open
    bins that can accommodate the new item, First Fit places the item in
    the bin which was opened earliest among these bins.  Otherwise ... a
    new bin is opened to receive the item."

Theorem 1 of the paper: First Fit is (µ+4)-competitive for MinUsageTime
DBP, where µ is the max/min item duration ratio — the best bound known
for any fully online algorithm, within an additive constant of the µ
lower bound that applies to every online algorithm.
"""

from __future__ import annotations

from typing import Optional

from ..core.bins import Bin
from ..core.state import PackingState
from .base import AnyFitAlgorithm

__all__ = ["FirstFit"]


class FirstFit(AnyFitAlgorithm):
    """Place each item into the earliest-opened open bin that fits."""

    name = "first-fit"

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        # O(log n) on an indexed state, reference scan otherwise; both
        # return the leftmost feasible bin (see docs/PERFORMANCE.md)
        return state.first_fit_bin(size)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        # candidates arrive in opening (index) order; earliest-opened is
        # the first.  This tie-break is load-bearing for the supplier-bin
        # argument of the paper's analysis.
        return candidates[0]
