"""Random Fit — uniformly random feasible bin (seeded)."""

from __future__ import annotations

import random

from ..core.bins import Bin
from .base import AnyFitAlgorithm

__all__ = ["RandomFit"]


class RandomFit(AnyFitAlgorithm):
    """Place each item into a uniformly random feasible open bin.

    A seeded randomised member of the Any Fit family; the µ+1 Any-Fit
    lower bound applies in expectation against oblivious adversaries.
    """

    name = "random-fit"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        return self._rng.choice(candidates)
