"""Worst Fit — emptiest feasible bin (load-balancing flavour)."""

from __future__ import annotations

from typing import Optional

from ..core.bins import Bin
from ..core.state import PackingState
from .base import AnyFitAlgorithm

__all__ = ["WorstFit"]


class WorstFit(AnyFitAlgorithm):
    """Place each item into the feasible open bin with the lowest level.

    Ties (exact level equality) broken toward the earliest-opened bin.
    Worst Fit is an Any Fit algorithm, so the µ+1 Any-Fit lower bound
    applies to it.
    """

    name = "worst-fit"

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        return state.worst_fit_bin(size)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        worst = candidates[0]
        for b in candidates[1:]:
            if b.level < worst.level:
                worst = b
        return worst
