"""Size-classified (hybrid) packing algorithms.

The paper's related work (Section I–II) discusses two hybrid schemes that
*classify items by size* and pack each class into its own bin pool:

- **Hybrid First Fit** (Li, Tang, Cai [6][15]): classifies and packs
  items based on their sizes to achieve a competitive ratio of roughly
  ``(8/7)µ + O(1)``.
- **Classified Next Fit** (Kamali & López-Ortiz [12]): the semi-online
  variant that achieves ``O(µ)`` with a smaller constant than plain Next
  Fit, requiring µ to be known a priori.

The OCR source drops the exact thresholds; following the cited
literature we use the standard classification into large items
(size > 1/2), medium items (1/3 < size ≤ 1/2), and small items
(size ≤ 1/3) by default, and make the thresholds a constructor
parameter so the ablation benchmark (X2 in DESIGN.md) can sweep them.

Classification never mixes classes in one bin: each class owns a
disjoint pool of bins managed by its own sub-policy.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

from ..core.bins import CAPACITY_EPS, Bin
from ..core.state import PackingState
from .base import PackingAlgorithm

__all__ = ["ClassifiedAlgorithm", "HybridFirstFit", "ClassifiedNextFit"]

DEFAULT_THRESHOLDS = (1.0 / 3.0, 1.0 / 2.0)


class ClassifiedAlgorithm(PackingAlgorithm):
    """Partition sizes into classes; pack each class in its own bin pool.

    ``thresholds`` are strictly increasing class boundaries in (0, 1);
    an item of size ``s`` belongs to class ``bisect_left(thresholds, s)``
    (so with thresholds (1/3, 1/2): class 0 is ``s <= 1/3``, class 1 is
    ``1/3 < s <= 1/2``, class 2 is ``s > 1/2``).

    Subclasses define how a class's bin is chosen among that class's open
    bins via :meth:`select_in_class`.
    """

    name = "classified"

    def __init__(self, thresholds: Sequence[float] = DEFAULT_THRESHOLDS):
        ts = tuple(float(t) for t in thresholds)
        if list(ts) != sorted(set(ts)):
            raise ValueError("thresholds must be strictly increasing")
        if ts and (ts[0] <= 0.0 or ts[-1] >= 1.0):
            raise ValueError("thresholds must lie strictly inside (0, 1)")
        self.thresholds = ts
        self.num_classes = len(ts) + 1
        self._bin_class: dict[int, int] = {}

    def reset(self) -> None:
        self._bin_class = {}

    def class_of(self, size: float) -> int:
        """Class index of an item size."""
        return bisect.bisect_left(self.thresholds, size)

    def class_bins(self, state: PackingState, cls: int) -> list[Bin]:
        """Open bins belonging to ``cls``, in opening order."""
        return [b for b in state.open_bins() if self._bin_class.get(b.index) == cls]

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        cls = self.class_of(size)
        candidates = [
            b
            for b in self.class_bins(state, cls)
            if b.level + size <= b.capacity + CAPACITY_EPS
        ]
        return self.select_in_class(state, cls, candidates, size)

    def select_in_class(
        self, state: PackingState, cls: int, candidates: list[Bin], size: float
    ) -> Optional[Bin]:
        """Choose among the feasible bins of the item's class.

        Default: Any-Fit behaviour — first (earliest-opened) candidate,
        new bin when none fits.
        """
        return candidates[0] if candidates else None

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        # A freshly opened bin inherits the class of the item that opened it.
        self._bin_class.setdefault(target.index, self.class_of(size))


class HybridFirstFit(ClassifiedAlgorithm):
    """First Fit within each size class (Li–Tang–Cai hybrid scheme)."""

    name = "hybrid-first-fit"


class ClassifiedNextFit(ClassifiedAlgorithm):
    """Next Fit within each size class (Kamali–López-Ortiz scheme).

    Each class keeps its own single *available* bin; when an item of the
    class misses it, that bin is retired and a new class bin is opened.
    """

    name = "classified-next-fit"

    @classmethod
    def harmonic(cls, k: int) -> "ClassifiedNextFit":
        """The Harmonic(k) classification: classes ``(1/(i+1), 1/i]``.

        The classical online bin packing partition (Lee–Lee), lifted to
        the dynamic setting: thresholds at ``1/k, 1/(k-1), …, 1/2``, so
        class boundaries align with how many items of a class fit one
        bin.  ``k = 1`` degenerates to plain Next Fit behaviour within a
        single class.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        thresholds = tuple(1.0 / i for i in range(k, 1, -1))
        return cls(thresholds)

    def __init__(self, thresholds: Sequence[float] = DEFAULT_THRESHOLDS):
        super().__init__(thresholds)
        self._available: dict[int, Optional[int]] = {}

    def reset(self) -> None:
        super().reset()
        self._available = {}

    def select_in_class(
        self, state: PackingState, cls: int, candidates: list[Bin], size: float
    ) -> Optional[Bin]:
        avail_idx = self._available.get(cls)
        if avail_idx is not None:
            b = state.bins[avail_idx]
            if b.is_open and b.level + size <= b.capacity + CAPACITY_EPS:
                return b
        self._available[cls] = None
        return None

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        super().on_placed(state, target, size)
        cls = self.class_of(size)
        if self._available.get(cls) is None:
            self._available[cls] = target.index
