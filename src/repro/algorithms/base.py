"""Online packing algorithm interface.

An online algorithm sees, for each arriving item, only its **size** and
the current :class:`~repro.core.state.PackingState` (open bins and their
levels).  It never sees departure times — that is the defining
information constraint of MinUsageTime DBP.  The interface enforces this
structurally: :meth:`PackingAlgorithm.choose_bin` receives the size, not
the item.

Lifecycle::

    algo.reset()                      # before each run
    target = algo.choose_bin(state, size)   # None => open a new bin
    ... driver places the item ...
    algo.on_placed(state, bin, size)  # bookkeeping hook (e.g. Next Fit)
    algo.on_departed(state, bin)      # called after each departure

Implementations must be deterministic given their constructor arguments
(randomised policies take an explicit seed).
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.bins import Bin
from ..core.state import PackingState

__all__ = ["PackingAlgorithm", "AnyFitAlgorithm"]


class PackingAlgorithm(abc.ABC):
    """Base class for online bin packing policies."""

    #: human-readable policy name; subclasses override.
    name: str = "abstract"

    def reset(self) -> None:
        """Clear any per-run internal state.  Default: stateless."""

    @abc.abstractmethod
    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        """Pick an open bin for an arriving item of ``size``.

        Return ``None`` to open a new bin.  Returning a bin that cannot
        accommodate the item is a policy bug and the driver raises.
        """

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        """Hook after the driver placed the item into ``target``."""

    def on_departed(self, state: PackingState, source: Bin) -> None:
        """Hook after a departure was processed (``source`` may be closed)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class AnyFitAlgorithm(PackingAlgorithm):
    """Base for the *Any Fit* family (Section I).

    An Any Fit algorithm opens a new bin **only when no open bin can
    accommodate the incoming item**.  Subclasses implement
    :meth:`select`, choosing among the feasible open bins.  First Fit,
    Best Fit, Worst Fit, Last Fit and Random Fit are all Any Fit
    algorithms; Next Fit is *not* (it ignores feasible unavailable bins).
    """

    name = "any-fit"

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        candidates = state.open_bins_fitting(size)
        if not candidates:
            return None
        return self.select(candidates, size)

    @abc.abstractmethod
    def select(self, candidates: list[Bin], size: float) -> Bin:
        """Choose one bin among a non-empty feasible set (index order)."""
