"""Online packing algorithms and the algorithm registry.

Every policy analysed or cited by the paper is implemented here:

==================  ==========================================  ====================
Algorithm           Known MinUsageTime DBP bounds               Class
==================  ==========================================  ====================
First Fit           ≤ µ+4 (Theorem 1); ≥ µ+1 (Any Fit LB)       Any Fit
Best Fit            unbounded for any µ                         Any Fit
Worst Fit           ≥ µ+1 (Any Fit LB)                          Any Fit
Last Fit            ≥ µ+1 (Any Fit LB)                          Any Fit
Random Fit          ≥ µ+1 (Any Fit LB)                          Any Fit (seeded)
Two-Choice Fit      ≥ µ+1 (Any Fit LB)                          Any Fit (seeded)
Next Fit            ≤ 2µ+1 (Kamali); ≥ 2µ (Section VIII)        not Any Fit
Hybrid First Fit    ≈ (8/7)µ + O(1) (Li–Tang–Cai, semi-online)  classified
Classified NF       O(µ) (Kamali, semi-online); Harmonic(k)     classified
==================  ==========================================  ====================

A separate :data:`CLAIRVOYANT_REGISTRY` holds the known-departure
reference policies (departure-aligned, duration-classified, predicted-
departure) — a strictly easier information model kept apart so the
competitive-ratio experiments never mix the two by accident.
"""

from typing import Callable

from .base import AnyFitAlgorithm, PackingAlgorithm
from .best_fit import BestFit
from .clairvoyant import (
    ClairvoyantAlgorithm,
    DepartureAlignedFit,
    DurationClassifiedFirstFit,
    DurationClassifiedFit,
)
from .classified import ClassifiedAlgorithm, ClassifiedNextFit, HybridFirstFit
from .first_fit import FirstFit
from .last_fit import LastFit
from .migration import BudgetedRepack, plan_evacuation_moves
from .next_fit import NextFit
from .predictions import LogNormalPredictor, PredictedDepartureFit
from .random_fit import RandomFit
from .two_choice import TwoChoiceFit
from .worst_fit import WorstFit

__all__ = [
    "AnyFitAlgorithm",
    "BestFit",
    "ClairvoyantAlgorithm",
    "DepartureAlignedFit",
    "DurationClassifiedFirstFit",
    "DurationClassifiedFit",
    "BudgetedRepack",
    "ClassifiedAlgorithm",
    "ClassifiedNextFit",
    "FirstFit",
    "HybridFirstFit",
    "LastFit",
    "LogNormalPredictor",
    "NextFit",
    "PredictedDepartureFit",
    "PackingAlgorithm",
    "RandomFit",
    "plan_evacuation_moves",
    "TwoChoiceFit",
    "WorstFit",
    "ALGORITHM_REGISTRY",
    "CLAIRVOYANT_REGISTRY",
    "make_algorithm",
]

#: Factory registry: name -> zero-argument constructor with defaults.
ALGORITHM_REGISTRY: dict[str, Callable[[], PackingAlgorithm]] = {
    "first-fit": FirstFit,
    "best-fit": BestFit,
    "worst-fit": WorstFit,
    "last-fit": LastFit,
    "random-fit": RandomFit,
    "two-choice-fit": TwoChoiceFit,
    "next-fit": NextFit,
    "hybrid-first-fit": HybridFirstFit,
    "classified-next-fit": ClassifiedNextFit,
    "repack-ff": BudgetedRepack,
}

#: Clairvoyant (known-departure) policies — a strictly easier information
#: model, kept in a separate registry so competitive-ratio experiments
#: never mix the two by accident.
CLAIRVOYANT_REGISTRY: dict[str, Callable[[], PackingAlgorithm]] = {
    "departure-aligned-fit": DepartureAlignedFit,
    "duration-classified-fit": DurationClassifiedFit,
    "duration-classified-ff": DurationClassifiedFirstFit,
    "predicted-departure-fit": PredictedDepartureFit,
}


def make_algorithm(name: str) -> PackingAlgorithm:
    """Instantiate a registered algorithm by name (default parameters)."""
    try:
        factory = ALGORITHM_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        ) from None
    return factory()
