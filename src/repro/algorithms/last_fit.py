"""Last Fit — most recently opened feasible bin."""

from __future__ import annotations

from typing import Optional

from ..core.bins import Bin
from ..core.state import PackingState
from .base import AnyFitAlgorithm

__all__ = ["LastFit"]


class LastFit(AnyFitAlgorithm):
    """Place each item into the latest-opened open bin that fits.

    The mirror image of First Fit; included as a baseline because it
    isolates how much First Fit's earliest-opened preference (which keeps
    old bins full and lets young bins drain) matters in practice.
    """

    name = "last-fit"

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        return state.last_fit_bin(size)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        return candidates[-1]
