"""Power-of-two-choices Fit.

The balanced-allocations classic adapted to Any Fit packing: among the
feasible open bins, sample two uniformly at random and place the item in
the *fuller* of the two (ties toward the earlier-opened).  One random
probe gives Random Fit; full information gives Best Fit; two probes are
famously almost as good as full information for load balancing — this
policy lets the benchmark suite measure how much of Best Fit's
consolidation behaviour two probes recover in the MinUsageTime setting.
"""

from __future__ import annotations

import random

from ..core.bins import Bin
from .base import AnyFitAlgorithm

__all__ = ["TwoChoiceFit"]


class TwoChoiceFit(AnyFitAlgorithm):
    """Pick the fuller of two random feasible bins (seeded)."""

    name = "two-choice-fit"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        if len(candidates) == 1:
            return candidates[0]
        a, b = self._rng.sample(candidates, 2)
        if b.level > a.level + 1e-12:
            return b
        if a.level > b.level + 1e-12:
            return a
        return a if a.index < b.index else b
