"""Next Fit — a single *available* bin at any time (Section VIII).

    "The Next Fit packing algorithm keeps exactly one bin available for
    receiving new items at any time.  If an incoming item does not fit
    in the available bin, the available bin is marked unavailable and a
    new bin is opened (and marked available) to receive the new item.
    Unavailable bins are never marked available again and are closed
    when all the items in the bin depart."

Known bounds reproduced in this repository:

- Upper bound 2µ+1 (Kamali & López-Ortiz, SOFSEM 2015 — cited by the
  paper).
- Lower bound 2µ via the explicit construction of Section VIII
  (:func:`repro.workloads.adversarial.next_fit_lower_bound`), showing the
  multiplicative factor 2 is inevitable for Next Fit, whereas First Fit
  achieves factor 1 (Theorem 1).
"""

from __future__ import annotations

from typing import Optional

from ..core.bins import CAPACITY_EPS, Bin
from ..core.state import PackingState
from .base import PackingAlgorithm

__all__ = ["NextFit"]


class NextFit(PackingAlgorithm):
    """Keep one available bin; open a new one whenever an item misses it."""

    name = "next-fit"

    def __init__(self) -> None:
        self._available: Optional[Bin] = None

    def reset(self) -> None:
        self._available = None

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        avail = self._available
        if avail is not None and avail.is_open and avail.level + size <= avail.capacity + CAPACITY_EPS:
            return avail
        # Either no available bin, the available bin closed (all of its
        # items departed), or the item does not fit: mark it unavailable
        # forever and request a fresh bin.
        self._available = None
        return None

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        if self._available is None:
            # the driver opened a new bin for us; it becomes the available bin
            self._available = target
