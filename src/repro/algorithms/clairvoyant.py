"""Clairvoyant policies: departure times known at placement.

The paper's Section II contrasts MinUsageTime DBP with interval
scheduling, where "the ending times of jobs are known".  These policies
live in that easier information model — the driver hands them the whole
item, not just its size — and serve as *reference points*: the gap
between First Fit and a clairvoyant policy on the same instance is the
measured price of not knowing departure times.

Clairvoyant policies are clearly marked (``clairvoyant = True``) and are
excluded from the competitive-ratio claims of the paper, which are about
the non-clairvoyant model.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.bins import Bin
from ..core.ffindex import FirstFitIndex
from ..core.items import Item
from ..core.state import PackingState
from .base import PackingAlgorithm

__all__ = [
    "ClairvoyantAlgorithm",
    "DepartureAlignedFit",
    "DurationClassifiedFit",
    "DurationClassifiedFirstFit",
]


class ClairvoyantAlgorithm(PackingAlgorithm):
    """Base for policies that may read the arriving item's departure.

    Subclasses implement :meth:`choose_bin_clairvoyant`; the size-only
    :meth:`choose_bin` is disabled to keep the two information models
    visibly separate.
    """

    clairvoyant = True

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        raise TypeError(
            f"{type(self).__name__} is clairvoyant; the driver calls "
            "choose_bin_clairvoyant with the full item"
        )

    def choose_bin_clairvoyant(
        self, state: PackingState, item: Item
    ) -> Optional[Bin]:
        """Pick an open bin knowing the item's departure time."""
        raise NotImplementedError


def _latest_departure(b: Bin) -> float:
    """The time the bin will close if nothing else is placed in it."""
    return max(it.departure for it in b.active_items.values())


class DepartureAlignedFit(ClairvoyantAlgorithm):
    """Minimise the extension of a bin's lifetime; align departures.

    Among feasible open bins, prefer one whose projected closing time
    already covers the item (zero extension, pick the earliest-opened);
    otherwise pick the bin whose lifetime grows least.  A new bin is
    opened only when nothing fits (Any-Fit flavour).

    This is the natural greedy for the known-departure model: long jobs
    define windows, later jobs slot into windows that outlive them.
    """

    name = "departure-aligned-fit"

    def choose_bin_clairvoyant(
        self, state: PackingState, item: Item
    ) -> Optional[Bin]:
        candidates = state.open_bins_fitting(item.size)
        if not candidates:
            return None
        best = None
        best_ext = float("inf")
        for b in candidates:
            ext = max(0.0, item.departure - _latest_departure(b))
            if ext < best_ext - 1e-12:
                best_ext = ext
                best = b
        return best


class DurationClassifiedFit(ClairvoyantAlgorithm):
    """First Fit within geometric duration classes.

    Items are classified by ``⌊log_base(duration)⌋`` and each class packs
    First Fit into its own bin pool — the standard device in the
    busy-time literature (jobs of similar length share servers so no
    short job keeps a long server alive).  Semi-online in the same sense
    as the hybrid size-classified schemes: the classification is fixed
    up front.
    """

    name = "duration-classified-fit"

    def __init__(self, base: float = 2.0):
        if base <= 1.0:
            raise ValueError("base must exceed 1")
        self.base = base
        self._bin_class: dict[int, int] = {}

    def reset(self) -> None:
        self._bin_class = {}

    def class_of(self, duration: float) -> int:
        import math

        return int(math.floor(math.log(duration, self.base) + 1e-12))

    def choose_bin_clairvoyant(
        self, state: PackingState, item: Item
    ) -> Optional[Bin]:
        cls = self.class_of(item.duration)
        for b in state.open_bins_fitting(item.size):
            if self._bin_class.get(b.index) == cls:
                return b
        return None

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        # a fresh bin inherits the class of the item that opened it; we
        # recover the class from the just-placed item (the newest one)
        if target.index not in self._bin_class:
            newest = target.all_items[-1]
            self._bin_class[target.index] = self.class_of(newest.duration)


class DurationClassifiedFirstFit(ClairvoyantAlgorithm):
    """First Fit within a *bounded* number of geometric duration classes,
    each class packing through its own segment-tree first-fit index.

    The trace-scale sibling of :class:`DurationClassifiedFit`: where that
    policy scans every feasible open bin per arrival (O(open bins)), this
    one keeps one :class:`~repro.core.ffindex.FirstFitIndex` per class
    and answers each arrival in O(log open bins of that class) — the
    Murhekar et al. duration-classified scheme at the same asymptotic
    cost as plain indexed First Fit.

    Classes are geometric with ratio ``base`` anchored at ``anchor``:
    class ``k`` holds durations in ``[anchor·base^k, anchor·base^(k+1))``,
    clamped into ``[0, classes-1]`` so out-of-range durations land in the
    end classes rather than opening unbounded pools.

    With ``classes=1`` every item shares one class, the single index
    covers all open bins in opening order, and the policy degenerates to
    plain First Fit **bit-for-bit** (the index reproduces the reference
    scan's float comparisons exactly); ``tests/algorithms/
    test_duration_classified_ff.py`` pins that differential.  On a
    non-indexed reference state (``indexed=False``) the policy scans
    ``state.open_bins()`` filtered by class, so the indexed/reference
    differential applies to this policy too.
    """

    name = "duration-classified-ff"

    def __init__(self, classes: int = 4, base: float = 2.0, anchor: float = 1.0):
        if classes < 1:
            raise ValueError("classes must be at least 1")
        if base <= 1.0:
            raise ValueError("base must exceed 1")
        if anchor <= 0.0:
            raise ValueError("anchor must be positive")
        self.classes = int(classes)
        self.base = base
        self.anchor = anchor
        self._bin_class: dict[int, int] = {}
        self._indices: dict[int, FirstFitIndex] = {}

    def reset(self) -> None:
        self._bin_class = {}
        self._indices = {}

    def class_of(self, duration: float) -> int:
        if self.classes == 1:
            return 0
        k = int(math.floor(math.log(duration / self.anchor, self.base) + 1e-12))
        return min(self.classes - 1, max(0, k))

    def choose_bin_clairvoyant(
        self, state: PackingState, item: Item
    ) -> Optional[Bin]:
        cls = self.class_of(item.duration)
        if state.indexed:
            index = self._indices.get(cls)
            if index is None:
                return None
            # the exact bound the state's own scans compare against, so
            # the per-class query matches a class-filtered scan bit-for-bit
            idx = index.first_fit(item.size, state._cap_bound)
            return None if idx is None else state.bins[idx]
        bound = state._cap_bound
        for b in state.open_bins():
            if self._bin_class.get(b.index) == cls and b.level + item.size <= bound:
                return b
        return None

    def on_placed(self, state: PackingState, target: Bin, size: float) -> None:
        cls = self._bin_class.get(target.index)
        if cls is None:
            # fresh bin: classified by the item that opened it (the
            # newest); its index is globally increasing, so per-class
            # appends arrive in the order the index requires
            cls = self.class_of(target.all_items[-1].duration)
            self._bin_class[target.index] = cls
            if state.indexed:
                index = self._indices.get(cls)
                if index is None:
                    index = self._indices[cls] = FirstFitIndex()
                index.append(target.index, target.level)
        elif state.indexed:
            self._indices[cls].set_level(target.index, target.level)

    def on_departed(self, state: PackingState, source: Bin) -> None:
        cls = self._bin_class.get(source.index)
        if cls is None:
            return
        index = self._indices.get(cls) if state.indexed else None
        if source.is_closed:
            del self._bin_class[source.index]
            if index is not None:
                index.close(source.index)
        elif index is not None:
            index.set_level(source.index, source.level)
