"""Best Fit — fullest feasible bin.

The paper (Section I, citing Li–Tang–Cai) notes that the competitive
ratio of Best Fit for MinUsageTime DBP is **unbounded for any µ**: an
adversary can keep a Best Fit bin alive with a trickle of tiny items
while the optimum consolidates.  The construction is implemented in
:func:`repro.workloads.adversarial.best_fit_unbounded` and measured in
``benchmarks/bench_bestfit_unbounded.py``.
"""

from __future__ import annotations

from typing import Optional

from ..core.bins import Bin
from ..core.state import PackingState
from .base import AnyFitAlgorithm

__all__ = ["BestFit"]


class BestFit(AnyFitAlgorithm):
    """Place each item into the feasible open bin with the highest level.

    Ties (exact level equality) are broken toward the earliest-opened
    bin, so Best Fit and First Fit coincide when all open bins are
    empty-equal.
    """

    name = "best-fit"

    def choose_bin(self, state: PackingState, size: float) -> Optional[Bin]:
        return state.best_fit_bin(size)

    def select(self, candidates: list[Bin], size: float) -> Bin:
        best = candidates[0]
        for b in candidates[1:]:
            if b.level > best.level:
                best = b
        return best
