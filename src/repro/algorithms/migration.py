"""Bounded-migration repacking — First Fit plus a per-event move budget.

The paper's µ lower bound (Theorem 2) binds every algorithm that never
moves a placed item; "Fully Dynamic Bin Packing Revisited" (PAPERS.md)
studies what falls when that assumption is dropped: the adversary may
repack a *bounded* number of items per arrival/departure.  X10 measures
that trade-off for an offline adversary; this module is the online
counterpart the service can actually run.

:class:`BudgetedRepack` places exactly like First Fit and, after each
applied event, proposes up to ``budget`` migrations that fully evacuate
one **high-waste** open bin (emptiest-first by fullness — the bins
paying the most idle usage time per unit of work).  Evacuation is
all-or-nothing per bin: one that cannot be completely emptied within
the budget is left alone, because a partial evacuation spends moves
without closing a server and therefore buys no usage time.

With ``budget=0`` the planner never returns a move, so the policy is
bit-identical to plain :class:`~repro.algorithms.first_fit.FirstFit`
(pinned by ``tests/core/test_migration_differential.py``).

:func:`plan_evacuation_moves` is deliberately a module-level function,
generic over the scalar and vector states: the streaming service's
background defragmenter (``StreamingEngine.defrag``) plans with the same
code out-of-band, so an event-coupled policy and the defragmenter agree
move-for-move on any given state.
"""

from __future__ import annotations

from ..core.bins import Bin
from ..core.state import PackingState
from .first_fit import FirstFit

__all__ = ["BudgetedRepack", "plan_evacuation_moves"]


def _fullness(level, capacity) -> float:
    """Normalised fullness; the binding dimension for vector resources."""
    if isinstance(level, tuple):
        return max(lvl / cap for lvl, cap in zip(level, capacity))
    return level / capacity


def _fits(level, size, bound) -> bool:
    """The engines' exact feasibility comparison, on projected levels."""
    if isinstance(level, tuple):
        return all(lvl + s <= b for lvl, s, b in zip(level, size, bound))
    return level + size <= bound


def _raise(level, size):
    if isinstance(level, tuple):
        return tuple(lvl + s for lvl, s in zip(level, size))
    return level + size


def plan_evacuation_moves(state, budget: int) -> list:
    """Plan up to ``budget`` moves that fully evacuate one open bin.

    Candidate victims are considered from the emptiest up (lowest
    fullness first, ties to the earliest opened); the first one whose
    items *all* rehome first-fit into the other open bins — against
    projected levels, within the budget — wins, and its complete
    evacuation is returned as ``(item, target)`` pairs for the driver to
    validate and apply.  Evacuation is all-or-nothing per victim: a
    partial evacuation spends moves without closing a server, buying no
    usage time, so a victim with any stuck item is skipped whole.
    Returns ``[]`` when no victim can be fully evacuated.

    Deterministic on every engine path: victims and targets come from
    linear scans of the open set (never the adaptive index), and a
    victim's items are considered in item-id order — the one ordering
    that survives a checkpoint/restore round-trip exactly.
    """
    if budget <= 0 or state.num_open < 2:
        return []
    bins = state.open_bins()
    capacity = state.capacity
    bound = state._cap_bound
    for victim in sorted(bins, key=lambda b: (_fullness(b.level, capacity), b.index)):
        items = sorted(victim.active_items.values(), key=lambda it: it.item_id)
        if len(items) > budget:
            continue
        projected: dict[int, object] = {}
        moves = []
        for item in items:
            target = None
            for b in bins:
                if b is victim:
                    continue
                level = projected.get(b.index, b.level)
                if _fits(level, item.size, bound):
                    target = b
                    break
            if target is None:
                moves = None  # a stuck item voids this victim entirely
                break
            projected[target.index] = _raise(
                projected.get(target.index, target.level), item.size
            )
            moves.append((item, target))
        if moves:
            return moves
    return []


class BudgetedRepack(FirstFit):
    """First Fit with up to ``budget`` migrations per arrival/departure.

    The driver calls :meth:`plan_migrations` after applying each event;
    the moves it returns are applied immediately (and counted in
    :attr:`moves`), before any observer sees the post-event state.
    """

    name = "repack-ff"

    def __init__(self, budget: int = 2):
        self.budget = int(budget)
        #: migrations planned (== applied) since the last reset
        self.moves = 0

    def reset(self) -> None:
        self.moves = 0

    def plan_migrations(self, state: PackingState) -> list[tuple[object, Bin]]:
        moves = plan_evacuation_moves(state, self.budget)
        self.moves += len(moves)
        return moves
