"""Cluster-trace ingestion: external schemas → internal item format.

The subsystem in one breath: a shared streaming :mod:`reader <repro.traces.reader>`
(gzip/CSV/JSONL framing, :class:`TraceFormatError` with file/line/field
context), schema :mod:`adapters <repro.traces.adapter>` for the Azure
Packing Trace and Google cluster-trace task_events
(:data:`SCHEMA_REGISTRY`, auto-detection), a
:mod:`normalization <repro.traces.normalize>` stage (window / rebase /
scale / clamp / seeded deterministic sampling), and seeded synthetic
:mod:`generators <repro.traces.generate>` that write files in the
external schemas so the whole pipeline is testable byte-for-byte with
no real data downloads.

See ``docs/TRACES.md`` for schemas, fetching the real datasets, and a
replay cookbook.
"""

from .adapter import (
    AdapterStats,
    SCHEMA_REGISTRY,
    TraceAdapter,
    detect_schema,
    get_adapter,
    load_items,
    register_adapter,
)
from .azure import AzureAdapter
from .generate import GENERATORS, generate_azure_trace, generate_google_trace, generate_trace
from .google import GoogleAdapter
from .normalize import (
    NormalizeStats,
    keep_fraction,
    normalize_items,
    normalize_stream,
    sample_trace_file,
)
from .reader import TraceFormatError, open_trace, sniff_lines, trace_suffix

__all__ = [
    "AdapterStats",
    "AzureAdapter",
    "GENERATORS",
    "GoogleAdapter",
    "NormalizeStats",
    "SCHEMA_REGISTRY",
    "TraceAdapter",
    "TraceFormatError",
    "detect_schema",
    "generate_azure_trace",
    "generate_google_trace",
    "generate_trace",
    "get_adapter",
    "keep_fraction",
    "load_items",
    "normalize_items",
    "normalize_stream",
    "open_trace",
    "register_adapter",
    "sample_trace_file",
    "sniff_lines",
    "trace_suffix",
]
