"""The trace-adapter core: schema registry, stats, streaming protocol.

A *trace adapter* turns one public cluster-trace schema into the
internal item format.  The contract is deliberately small:

- ``iter_items(path, stats, vector=...)`` is a **generator** yielding
  :class:`~repro.core.items.Item` (or
  :class:`~repro.multidim.items.VectorItem` when ``vector=True``) in
  the order the trace defines, without materialising the file.  A
  multi-GB trace therefore streams in memory bounded by the adapter's
  own working set (for the Azure schema that is O(1); for the Google
  schema it is O(open tasks) — SUBMITs awaiting their FINISH).
- malformed or unpairable records are **counted and skipped** when
  ``stats.strict`` is false (the default for real traces, which always
  contain garbage), and raised as
  :class:`~repro.traces.reader.TraceFormatError` when strict.
- ``sniff(lines)`` lets :func:`detect_schema` pick an adapter from the
  first few lines of an unknown file.

Adapters register themselves in :data:`SCHEMA_REGISTRY`; the CLI, the
experiment specs, and loadgen's replay mode all resolve schemas through
:func:`get_adapter` / :func:`detect_schema`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..core.items import Item, ItemList
from ..multidim.items import VectorItem, VectorItemList
from .reader import TraceFormatError, sniff_lines

__all__ = [
    "AdapterStats",
    "TraceAdapter",
    "SCHEMA_REGISTRY",
    "register_adapter",
    "get_adapter",
    "detect_schema",
    "load_items",
]

PathLike = Union[str, Path]
AnyItem = Union[Item, VectorItem]


@dataclass
class AdapterStats:
    """Counters an adapter fills in while streaming one file.

    ``strict=True`` turns every skip into a raised
    :class:`TraceFormatError`; the default tolerates dirty records the
    way any real trace run must, but still accounts for every one of
    them so a conversion can report exactly what it dropped.
    """

    strict: bool = False
    records: int = 0          # non-empty data lines seen
    items: int = 0            # items emitted
    malformed: int = 0        # unparsable records skipped
    orphaned: int = 0        # departure-side events with no matching arrival
    unfinished: int = 0      # arrival-side events that never saw a departure
    censored: int = 0        # open-ended intervals (no recorded end time)
    skip_reasons: Dict[str, int] = field(default_factory=dict)

    def skip(self, reason: str, error: Optional[TraceFormatError] = None) -> None:
        """Record one skipped record; re-raise instead when strict."""
        if self.strict and error is not None:
            raise error
        if self.strict:
            raise TraceFormatError(reason)
        self.malformed += 1
        self.skip_reasons[reason] = self.skip_reasons.get(reason, 0) + 1

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "items": self.items,
            "malformed": self.malformed,
            "orphaned": self.orphaned,
            "unfinished": self.unfinished,
            "censored": self.censored,
            "skip_reasons": dict(sorted(self.skip_reasons.items())),
        }


class TraceAdapter:
    """Base class for cluster-trace schema adapters."""

    #: registry key, e.g. ``"azure"``
    name: str = ""
    #: one-line human description for ``repro trace info`` / CLI help
    description: str = ""
    #: vector dimensions this schema can supply (e.g. core+memory → 2)
    vector_dimensions: int = 2

    def iter_items(
        self,
        path: PathLike,
        stats: AdapterStats,
        vector: bool = False,
    ) -> Iterator[AnyItem]:
        """Stream normalized items from ``path`` (generator)."""
        raise NotImplementedError

    def sniff(self, lines: list[str]) -> bool:
        """Whether the first few lines of a file look like this schema."""
        raise NotImplementedError


SCHEMA_REGISTRY: Dict[str, TraceAdapter] = {}


def register_adapter(adapter: TraceAdapter) -> TraceAdapter:
    if not adapter.name:
        raise ValueError("adapter needs a name")
    SCHEMA_REGISTRY[adapter.name] = adapter
    return adapter


def get_adapter(name: str) -> TraceAdapter:
    try:
        return SCHEMA_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMA_REGISTRY))
        raise ValueError(f"unknown trace schema {name!r} (known: {known})") from None


def detect_schema(path: PathLike) -> TraceAdapter:
    """Pick an adapter by sniffing the first lines of ``path``."""
    lines = sniff_lines(path)
    if not lines:
        raise TraceFormatError("empty trace file", str(path))
    for adapter in SCHEMA_REGISTRY.values():
        if adapter.sniff(lines):
            return adapter
    raise TraceFormatError(
        "could not detect trace schema from the first lines; "
        "pass --schema explicitly (known: %s)" % ", ".join(sorted(SCHEMA_REGISTRY)),
        str(path),
    )


def load_items(
    path: PathLike,
    schema: Optional[str] = None,
    vector: bool = False,
    strict: bool = False,
) -> tuple[Union[ItemList, VectorItemList], AdapterStats]:
    """Convert a whole trace file into an in-memory instance.

    The convenience (materialising) entry point: the CLI's ``trace
    convert``, the experiment specs, and tests use this; callers that
    must stay streaming use ``adapter.iter_items`` directly.
    """
    adapter = get_adapter(schema) if schema else detect_schema(path)
    stats = AdapterStats(strict=strict)
    items = list(adapter.iter_items(path, stats, vector=vector))
    if vector:
        dims = adapter.vector_dimensions
        return VectorItemList(items, capacity=(1.0,) * dims), stats
    return ItemList(items), stats
