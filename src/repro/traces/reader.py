"""Shared streaming reader for cluster-trace files.

Every trace adapter (:mod:`repro.traces.azure`,
:mod:`repro.traces.google`) and the internal trace loader
(:mod:`repro.workloads.traces`) parses files through this module, so
the three framing concerns are handled exactly once:

- **compression** — a ``.gz`` suffix selects transparent gzip
  decompression (real cluster traces ship gzipped);
- **CSV framing** — header-keyed or positional (the Google cluster
  trace has no header row), streamed row by row;
- **JSONL framing** — one JSON object per line, streamed.

Nothing here materialises the file: every iterator yields one record at
a time, so a multi-GB trace streams in bounded memory.  Parse errors
raise :class:`TraceFormatError`, which names the file, the 1-based line
number, and (when known) the offending field — a bare ``KeyError`` from
three layers down is useless against a 40-million-line trace.
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional, Sequence, Union

__all__ = [
    "TraceFormatError",
    "open_trace",
    "iter_csv_records",
    "iter_jsonl_records",
    "record_float",
    "record_int",
    "record_str",
]

PathLike = Union[str, Path]


class TraceFormatError(ValueError):
    """A malformed trace file, with enough context to find the defect.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working.  ``source``/``line``/``field`` are exposed
    as attributes for programmatic handling (e.g. the adapters' count-
    and-skip mode).
    """

    def __init__(
        self,
        message: str,
        source: Optional[str] = None,
        line: Optional[int] = None,
        field: Optional[str] = None,
    ):
        self.source = source
        self.line = line
        self.field = field
        self.message = message
        where = []
        if source:
            where.append(str(source))
        if line is not None:
            where.append(f"line {line}")
        if field is not None:
            where.append(f"field {field!r}")
        prefix = ": ".join((", ".join(where),)) if where else ""
        super().__init__(f"{prefix}: {message}" if prefix else message)


def open_trace(path: PathLike, mode: str = "rt"):
    """Open a trace file for streaming, gunzipping ``.gz`` transparently.

    Text mode by default; ``newline=""`` so the csv module owns line
    splitting (embedded CRLFs survive).
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode, newline="" if "t" in mode else None)
    if "t" in mode:
        return open(path, mode, newline="")
    return open(path, mode)


def _strip_gz(path: Path) -> Path:
    return path.with_suffix("") if path.suffix == ".gz" else path


def trace_suffix(path: PathLike) -> str:
    """The framing suffix with any ``.gz`` stripped (``.csv``, ``.jsonl``...)."""
    return _strip_gz(Path(path)).suffix


def iter_csv_records(
    source: Union[PathLike, Iterable[str]],
    fieldnames: Optional[Sequence[str]] = None,
    required: Sequence[str] = (),
) -> Iterator[tuple[int, dict[str, str]]]:
    """Stream ``(line_number, record_dict)`` pairs from CSV.

    ``source`` is a path (``.gz`` ok) or an iterable of lines.  With
    ``fieldnames`` the file is read positionally (headerless, like the
    Google cluster trace); otherwise the first non-comment line is the
    header.  Leading ``#`` comment lines are skipped either way.  Rows
    with more values than columns raise; rows with fewer leave the
    missing fields absent (the per-field accessors below report them).
    ``required`` names header columns that must exist (header mode only).
    """
    own = not isinstance(source, (str, Path))
    handle = source if own else open_trace(source)
    name = "<stream>" if own else str(source)
    try:
        lineno = 0
        header: Optional[list[str]] = list(fieldnames) if fieldnames else None
        for line in handle:
            lineno += 1
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                row = next(csv.reader([line]))
            except csv.Error as exc:
                raise TraceFormatError(str(exc), name, lineno) from None
            if header is None:
                header = [h.strip() for h in row]
                missing = [c for c in required if c not in header]
                if missing:
                    raise TraceFormatError(
                        f"header is missing required column(s) {missing} "
                        f"(got {header})",
                        name,
                        lineno,
                    )
                continue
            if len(row) > len(header):
                raise TraceFormatError(
                    f"row has {len(row)} values for {len(header)} columns",
                    name,
                    lineno,
                )
            yield lineno, dict(zip(header, row))
        if header is None and required:
            raise TraceFormatError("empty file (no header line)", name, lineno)
    finally:
        if not own:
            handle.close()


def iter_jsonl_records(
    source: Union[PathLike, Iterable[str]],
) -> Iterator[tuple[int, dict[str, Any]]]:
    """Stream ``(line_number, object)`` pairs from a JSON-lines file."""
    own = not isinstance(source, (str, Path))
    handle = source if own else open_trace(source)
    name = "<stream>" if own else str(source)
    try:
        lineno = 0
        for line in handle:
            lineno += 1
            if not line.strip() or line.lstrip().startswith("#"):
                continue
            try:
                doc = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(f"malformed JSON: {exc}", name, lineno) from None
            if not isinstance(doc, dict):
                raise TraceFormatError(
                    f"record must be a JSON object, got {type(doc).__name__}",
                    name,
                    lineno,
                )
            yield lineno, doc
    finally:
        if not own:
            handle.close()


def _context(source: Optional[str], line: Optional[int]):
    return source, line


def record_str(
    rec: dict, field: str, source: Optional[str] = None, line: Optional[int] = None
) -> str:
    """Fetch a required non-empty string field."""
    value = rec.get(field)
    if value is None or (isinstance(value, str) and not value.strip()):
        raise TraceFormatError("missing value", source, line, field)
    return str(value)


def record_float(
    rec: dict, field: str, source: Optional[str] = None, line: Optional[int] = None
) -> float:
    """Fetch a required finite float field."""
    raw = record_str(rec, field, source, line)
    try:
        value = float(raw)
    except ValueError:
        raise TraceFormatError(
            f"expected a number, got {raw!r}", source, line, field
        ) from None
    if value != value or value in (float("inf"), float("-inf")):
        raise TraceFormatError(
            f"expected a finite number, got {raw!r}", source, line, field
        )
    return value


def record_int(
    rec: dict, field: str, source: Optional[str] = None, line: Optional[int] = None
) -> int:
    """Fetch a required integer field."""
    raw = record_str(rec, field, source, line)
    try:
        return int(raw)
    except ValueError:
        raise TraceFormatError(
            f"expected an integer, got {raw!r}", source, line, field
        ) from None


def read_text_lines(source: Union[PathLike, str]) -> Iterator[str]:
    """Lines of a possibly-gzipped file (used by schema sniffing)."""
    with open_trace(source) as handle:
        yield from handle


def sniff_lines(path: PathLike, limit: int = 5) -> list[str]:
    """The first ``limit`` non-empty lines of a trace file."""
    out: list[str] = []
    with open_trace(path) as handle:
        for line in handle:
            if line.strip():
                out.append(line.rstrip("\r\n"))
                if len(out) >= limit:
                    break
    return out


def write_trace(path: PathLike, lines: Iterable[str]) -> int:
    """Write lines to ``path`` (gzipped when it ends ``.gz``); returns count.

    The generator-facing twin of :func:`open_trace`: fixture generators
    and the schema-preserving sampler stream through it so neither ever
    materialises the file.
    """
    n = 0
    with open_trace(path, "wt") as handle:
        for line in lines:
            handle.write(line)
            if not line.endswith("\n"):
                handle.write("\n")
            n += 1
    return n


# kept out of __all__ on purpose: internal helpers some modules want
__all__ += ["trace_suffix", "read_text_lines", "sniff_lines", "write_trace"]
