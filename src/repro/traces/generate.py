"""Seeded synthetic trace-*file* generators, one per supported schema.

These write files in the *external* schemas (Azure Packing Trace CSV,
Google task_events CSV) so tests, CI, and benches exercise the full
adapter pipeline byte-for-byte — framing, pairing, dirty-record
accounting — without downloading real datasets or checking binary
blobs into git.  Everything is driven by one ``random.Random(seed)``,
and values are formatted with fixed precision, so a (schema, n, seed,
knobs) tuple always produces identical bytes; golden tests pin on
that.

The dirt knobs (``censored``/``malformed``/``orphaned``/
``unfinished``) inject exactly the defects the adapters must count and
skip.  Generation itself is streaming: Azure rows are independent, and
the Google event stream is merged with a heap of pending FINISHes, so
memory is O(concurrent tasks) and CI can generate multi-hundred-MB
files for the bounded-memory test.
"""

from __future__ import annotations

import heapq
import random
from pathlib import Path
from typing import Iterator, Union

from .reader import write_trace

__all__ = [
    "generate_azure_trace",
    "generate_google_trace",
    "generate_trace",
    "GENERATORS",
    "AZURE_VM_TYPES",
]

PathLike = Union[str, Path]

# (core, memory) fractions of a server, shaped like the real trace's
# discrete VM type catalogue
AZURE_VM_TYPES = (
    (0.020833, 0.027778),
    (0.041667, 0.055556),
    (0.083333, 0.111111),
    (0.166667, 0.222222),
    (0.333333, 0.444444),
    (0.500000, 0.500000),
    (1.000000, 1.000000),
)

GOOGLE_CPU_REQUESTS = (0.0125, 0.025, 0.03125, 0.05, 0.0625, 0.125)
GOOGLE_MEM_REQUESTS = (0.0062, 0.0124, 0.0155, 0.0248, 0.0311, 0.0621)


def _azure_rows(
    n: int,
    seed: int,
    rate_per_day: float,
    mu: float,
    censored: float,
    malformed: float,
) -> Iterator[str]:
    rng = random.Random(seed)
    yield "vmId,tenantId,vmTypeId,priority,core,memory,starttime,endtime"
    clock = 0.0
    min_days = 1.0 / rate_per_day  # shortest VM lives one mean gap
    tenants = max(2, n // 20)
    for vm_id in range(n):
        clock += rng.expovariate(rate_per_day)
        type_id = rng.randrange(len(AZURE_VM_TYPES))
        core, memory = AZURE_VM_TYPES[type_id]
        tenant = rng.randrange(tenants)
        priority = rng.randrange(2)
        duration = min_days * (mu ** rng.random())
        if malformed > 0.0 and rng.random() < malformed:
            core_s = "bogus"  # unparsable size → the adapter must skip it
        else:
            core_s = f"{core:.6f}"
        if censored > 0.0 and rng.random() < censored:
            end_s = ""  # VM outlives the trace window
        else:
            end_s = f"{clock + duration:.6f}"
        yield (
            f"{vm_id},{tenant},{type_id},{priority},"
            f"{core_s},{memory:.6f},{clock:.6f},{end_s}"
        )


def generate_azure_trace(
    path: PathLike,
    n: int,
    seed: int = 0,
    rate_per_day: float = 200.0,
    mu: float = 50.0,
    censored: float = 0.0,
    malformed: float = 0.0,
) -> int:
    """Write an ``n``-row Azure-schema CSV (``.gz`` ok); returns lines."""
    return write_trace(
        path, _azure_rows(n, seed, rate_per_day, mu, censored, malformed)
    )


def _google_row(ts: int, job: int, task: int, etype: int, cpu: str, mem: str) -> str:
    # 13 columns: timestamp,missing_info,job_id,task_index,machine_id,
    # event_type,user,sched_class,priority,cpu,mem,disk,different_machine
    return f"{ts},,{job},{task},,{etype},user{job % 7},1,0,{cpu},{mem},0.0001,"


def _google_rows(
    n: int,
    seed: int,
    rate_per_sec: float,
    mu: float,
    orphaned: float,
    unfinished: float,
    malformed: float,
) -> Iterator[str]:
    rng = random.Random(seed)
    mean_gap_us = 1e6 / rate_per_sec
    min_us = mean_gap_us  # shortest task lives one mean inter-arrival
    job_base = 6_250_000_000
    clock = 0.0
    # pending departures: (finish_ts, job, task) — popped once the
    # stream has advanced past them, so the file is time-ordered and
    # memory stays O(concurrent tasks)
    pending: list[tuple[int, int, int]] = []

    def drain(until: float) -> Iterator[str]:
        while pending and pending[0][0] <= until:
            fts, job, task = heapq.heappop(pending)
            yield _google_row(fts, job, task, 4, "", "")

    for i in range(n):
        clock += rng.expovariate(rate_per_sec) * 1e6
        ts = int(clock)
        job = job_base + i // 5
        task = i % 5
        cpu = rng.choice(GOOGLE_CPU_REQUESTS)
        mem = rng.choice(GOOGLE_MEM_REQUESTS)
        duration = int(min_us * (mu ** rng.random())) + 1
        yield from drain(clock)
        if malformed > 0.0 and rng.random() < malformed:
            yield _google_row(ts, job, task, 0, "oops", f"{mem:.4f}")
            continue  # unparsable SUBMIT: the task never opens
        if orphaned > 0.0 and rng.random() < orphaned:
            # FINISH for a task whose SUBMIT predates the trace slice
            yield _google_row(ts, job_base - 1 - i, 0, 4, "", "")
            continue
        yield _google_row(ts, job, task, 0, f"{cpu:.4f}", f"{mem:.4f}")
        # a SCHEDULE event the adapter must ignore (but count)
        yield _google_row(ts + 1000, job, task, 1, "", "")
        if not (unfinished > 0.0 and rng.random() < unfinished):
            heapq.heappush(pending, (ts + duration, job, task))
    yield from drain(float("inf"))


def generate_google_trace(
    path: PathLike,
    n: int,
    seed: int = 0,
    rate_per_sec: float = 5.0,
    mu: float = 50.0,
    orphaned: float = 0.0,
    unfinished: float = 0.0,
    malformed: float = 0.0,
) -> int:
    """Write an ``n``-task Google task_events CSV (``.gz`` ok)."""
    return write_trace(
        path,
        _google_rows(n, seed, rate_per_sec, mu, orphaned, unfinished, malformed),
    )


GENERATORS = {
    "azure": generate_azure_trace,
    "google": generate_google_trace,
}


def generate_trace(schema: str, path: PathLike, n: int, seed: int = 0, **knobs) -> int:
    """Dispatch to the schema's generator; returns lines written."""
    try:
        gen = GENERATORS[schema]
    except KeyError:
        known = ", ".join(sorted(GENERATORS))
        raise ValueError(f"no generator for schema {schema!r} (known: {known})") from None
    return gen(path, n, seed=seed, **knobs)
