"""Adapter for the Google cluster-trace ``task_events`` schema.

The 2011 Google cluster trace publishes task lifecycles as an *event
stream*: one row per transition, 13 headerless CSV columns

    timestamp, missing_info, job_id, task_index, machine_id,
    event_type, user, scheduling_class, priority,
    cpu_request, memory_request, disk_request, different_machine

with microsecond timestamps and resource requests normalized to the
largest machine.  A task is alive from its SUBMIT (event type 0) to its
FINISH (event type 4); this adapter pairs those transitions keyed by
``(job_id, task_index)`` and emits one item per completed pair, so the
duration is *inferred* rather than stored — exactly the shape the
MinUsageTime problem hides from online algorithms.

Real trace slices are messy, and the adapter accounts for all of it:

- a FINISH with no open SUBMIT is **orphaned** (the SUBMIT predates the
  slice) — counted in ``stats.orphaned``, skipped;
- a SUBMIT never FINISHed by end-of-file is **unfinished** (the task
  outlives the slice) — counted in ``stats.unfinished``, skipped;
- rows with missing/non-numeric fields or non-positive durations are
  malformed — counted per reason, skipped (raised when strict);
- other event types (SCHEDULE, EVICT, KILL, ...) are valid stream
  records we simply don't need — counted in ``stats.records`` only.

A ``.jsonl`` file with the same field *names* is accepted too (handy
for hand-written fixtures); framing is picked by file extension.
Memory while streaming is O(open tasks), never O(file).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

from ..core.items import Item
from ..multidim.items import VectorItem
from .adapter import AdapterStats, TraceAdapter, register_adapter
from .reader import (
    TraceFormatError,
    iter_csv_records,
    iter_jsonl_records,
    record_float,
    record_int,
    trace_suffix,
)

__all__ = ["GoogleAdapter", "GOOGLE_FIELDS", "EVENT_SUBMIT", "EVENT_FINISH"]

PathLike = Union[str, Path]

GOOGLE_FIELDS = (
    "timestamp",
    "missing_info",
    "job_id",
    "task_index",
    "machine_id",
    "event_type",
    "user",
    "scheduling_class",
    "priority",
    "cpu_request",
    "memory_request",
    "disk_request",
    "different_machine",
)

EVENT_SUBMIT = 0
EVENT_FINISH = 4

_MICROS = 1e6  # trace timestamps are microseconds; items use seconds


class GoogleAdapter(TraceAdapter):
    name = "google"
    description = (
        "Google cluster-trace task_events (13-column headerless CSV, "
        "SUBMIT/FINISH pairs keyed by job_id/task_index, microsecond "
        "timestamps, normalized cpu/memory requests)"
    )
    vector_dimensions = 2

    def sniff(self, lines: list[str]) -> bool:
        for line in lines:
            stripped = line.lstrip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith("{"):
                return '"job_id"' in stripped and '"event_type"' in stripped
            cols = stripped.split(",")
            if len(cols) != len(GOOGLE_FIELDS):
                return False
            try:
                int(cols[0]), int(cols[2]), int(cols[5])
            except ValueError:
                return False
            return True
        return False

    def iter_items(
        self,
        path: PathLike,
        stats: AdapterStats,
        vector: bool = False,
    ) -> Iterator[Union[Item, VectorItem]]:
        name = str(path)
        if trace_suffix(path) == ".jsonl":
            records = iter_jsonl_records(path)
        else:
            records = iter_csv_records(path, fieldnames=GOOGLE_FIELDS)
        # open tasks: (job_id, task_index) -> (submit_seconds, cpu, memory)
        open_tasks: Dict[Tuple[int, int], Tuple[float, float, float]] = {}
        next_id = 0
        for lineno, rec in records:
            stats.records += 1
            try:
                etype = record_int(rec, "event_type", name, lineno)
                if etype not in (EVENT_SUBMIT, EVENT_FINISH):
                    continue
                when = record_int(rec, "timestamp", name, lineno) / _MICROS
                key = (
                    record_int(rec, "job_id", name, lineno),
                    record_int(rec, "task_index", name, lineno),
                )
                if etype == EVENT_SUBMIT:
                    cpu = record_float(rec, "cpu_request", name, lineno)
                    memory = record_float(rec, "memory_request", name, lineno)
                    if cpu <= 0.0:
                        raise TraceFormatError(
                            f"cpu_request must be positive, got {cpu}",
                            name,
                            lineno,
                            "cpu_request",
                        )
                    if memory < 0.0:
                        raise TraceFormatError(
                            f"memory_request must be non-negative, got {memory}",
                            name,
                            lineno,
                            "memory_request",
                        )
                    if key in open_tasks:
                        raise TraceFormatError(
                            f"duplicate SUBMIT for task {key} while still open",
                            name,
                            lineno,
                            "event_type",
                        )
                    open_tasks[key] = (when, cpu, memory)
                    continue
            except TraceFormatError as exc:
                stats.skip(exc.field or "parse-error", exc)
                continue
            # FINISH path: pair with the open SUBMIT, if any
            pending = open_tasks.pop(key, None)
            if pending is None:
                stats.orphaned += 1
                continue
            submitted, cpu, memory = pending
            if when <= submitted:
                stats.skip(
                    "non-positive-duration",
                    TraceFormatError(
                        f"FINISH at {when} not after SUBMIT at {submitted} "
                        f"for task {key}",
                        name,
                        lineno,
                        "timestamp",
                    ),
                )
                continue
            if vector:
                yield VectorItem(next_id, (cpu, memory), submitted, when)
            else:
                yield Item(next_id, cpu, submitted, when)
            next_id += 1
            stats.items += 1
        stats.unfinished += len(open_tasks)


register_adapter(GoogleAdapter())
