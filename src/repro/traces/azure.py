"""Adapter for the Azure Packing Trace schema.

The Azure Packing Trace (Hadary et al., OSDI'20; the dataset Lee &
Tang's DVBP evaluation benchmarks on) describes VM requests with
fractional resource demands.  We consume the *flattened* CSV form —
one row per VM request with its type's resource fractions joined in:

    vmId,tenantId,vmTypeId,priority,core,memory,starttime,endtime

- ``core``/``memory`` are fractions of a server's capacity, in
  ``(0, 1]``;
- ``starttime``/``endtime`` are in fractional days relative to the
  trace start.  ``starttime`` may be negative (the VM predates the
  collection window);
- an empty ``endtime`` means the VM outlived the trace (right-censored)
  — such rows are counted in ``stats.censored`` and skipped, since a
  MinUsageTime instance needs finite intervals.

Each surviving row becomes one item: scalar size = ``core`` (CPU is
the binding resource in this trace), vector sizes = ``(core, memory)``.
Item ids are assigned densely in file order so converted instances are
byte-stable and directly usable by the service loadgen.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Union

from ..core.items import Item
from ..multidim.items import VectorItem
from .adapter import AdapterStats, TraceAdapter, register_adapter
from .reader import TraceFormatError, iter_csv_records, record_float, record_str

__all__ = ["AzureAdapter", "AZURE_FIELDS"]

PathLike = Union[str, Path]

AZURE_FIELDS = (
    "vmId",
    "tenantId",
    "vmTypeId",
    "priority",
    "core",
    "memory",
    "starttime",
    "endtime",
)


class AzureAdapter(TraceAdapter):
    name = "azure"
    description = (
        "Azure Packing Trace (flattened CSV: vmId,tenantId,vmTypeId,"
        "priority,core,memory,starttime,endtime; fractional sizes, "
        "times in days)"
    )
    vector_dimensions = 2

    def sniff(self, lines: list[str]) -> bool:
        for line in lines:
            stripped = line.lstrip()
            if not stripped or stripped.startswith("#"):
                continue
            head = [c.strip() for c in stripped.split(",")]
            return "vmId" in head and "starttime" in head
        return False

    def iter_items(
        self,
        path: PathLike,
        stats: AdapterStats,
        vector: bool = False,
    ) -> Iterator[Union[Item, VectorItem]]:
        name = str(path)
        next_id = 0
        for lineno, rec in iter_csv_records(
            path, required=("vmId", "core", "memory", "starttime", "endtime")
        ):
            stats.records += 1
            end_raw = rec.get("endtime", "")
            if end_raw is None or not end_raw.strip():
                stats.censored += 1
                continue
            try:
                record_str(rec, "vmId", name, lineno)
                core = record_float(rec, "core", name, lineno)
                memory = record_float(rec, "memory", name, lineno)
                start = record_float(rec, "starttime", name, lineno)
                end = record_float(rec, "endtime", name, lineno)
                if core <= 0.0:
                    raise TraceFormatError(
                        f"core must be positive, got {core}", name, lineno, "core"
                    )
                if memory < 0.0:
                    raise TraceFormatError(
                        f"memory must be non-negative, got {memory}",
                        name,
                        lineno,
                        "memory",
                    )
                if end <= start:
                    raise TraceFormatError(
                        f"endtime {end} not after starttime {start}",
                        name,
                        lineno,
                        "endtime",
                    )
            except TraceFormatError as exc:
                stats.skip(exc.field or "parse-error", exc)
                continue
            if vector:
                yield VectorItem(next_id, (core, memory), start, end)
            else:
                yield Item(next_id, core, start, end)
            next_id += 1
            stats.items += 1


register_adapter(AzureAdapter())
