"""Normalization, windowing, and deterministic sampling for traces.

Converted trace instances rarely go straight into an engine: a real
trace spans weeks, sizes carry rounding garbage slightly above
capacity, and experiments want a reproducible subset.  This stage
provides the knobs, all streaming-safe and all deterministic:

- **window** — keep items arriving within ``[start, end)``;
- **rebase** — shift times so the window (or first arrival) is t=0;
- **scale** — divide sizes by a capacity factor (pack the same demand
  onto bigger servers);
- **clamp** — cap sizes at bin capacity, counting every clamp so a
  conversion reports how much it touched;
- **sample** — keep a deterministic pseudo-random fraction of items,
  keyed by ``crc32(seed:item_id)`` so the same seed always keeps the
  same subset regardless of iteration order or Python hash salt.

:func:`sample_trace_file` is the schema-preserving variant: it thins a
*raw* trace file line-by-line, keyed by the schema's entity key (vmId;
job/task pair) so Google SUBMIT/FINISH pairs survive together, and
writes kept lines byte-identically.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterable, Iterator, Optional, Tuple, Union

from ..core.items import Item, ItemList
from ..multidim.items import VectorItem, VectorItemList
from .adapter import get_adapter
from .reader import TraceFormatError, open_trace, write_trace

__all__ = [
    "NormalizeStats",
    "normalize_stream",
    "normalize_items",
    "keep_fraction",
    "sample_trace_file",
]

PathLike = Union[str, Path]
AnyItem = Union[Item, VectorItem]

_HASH_SPACE = float(2**32)


@dataclass
class NormalizeStats:
    kept: int = 0
    dropped_window: int = 0
    dropped_sample: int = 0
    clamped: int = 0

    def as_dict(self) -> dict:
        return {
            "kept": self.kept,
            "dropped_window": self.dropped_window,
            "dropped_sample": self.dropped_sample,
            "clamped": self.clamped,
        }


def keep_fraction(key: str, fraction: float, seed: int) -> bool:
    """Deterministic Bernoulli(fraction) draw keyed on ``(seed, key)``.

    crc32 rather than ``hash()``: stable across processes and Python
    versions, so sampled instances are pinnable in golden tests.
    """
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    draw = zlib.crc32(f"{seed}:{key}".encode("utf-8")) & 0xFFFFFFFF
    return draw < fraction * _HASH_SPACE


def _clamp_item(item: AnyItem, capacity: float, stats: NormalizeStats) -> AnyItem:
    if isinstance(item, VectorItem):
        if any(s > capacity for s in item.sizes):
            stats.clamped += 1
            return replace(
                item, sizes=tuple(min(s, capacity) for s in item.sizes)
            )
        return item
    if item.size > capacity:
        stats.clamped += 1
        return replace(item, size=capacity)
    return item


def _scale_item(item: AnyItem, scale: float) -> AnyItem:
    if isinstance(item, VectorItem):
        return replace(item, sizes=tuple(s / scale for s in item.sizes))
    return replace(item, size=item.size / scale)


def normalize_stream(
    items: Iterable[AnyItem],
    stats: NormalizeStats,
    window: Optional[Tuple[float, float]] = None,
    sample: Optional[float] = None,
    seed: int = 0,
    scale: float = 1.0,
    clamp: Optional[float] = 1.0,
    rebase_to: Optional[float] = None,
) -> Iterator[AnyItem]:
    """Stream items through the normalization knobs (O(1) memory).

    ``window`` keeps items by *arrival* in ``[start, end)`` (the full
    interval is retained — a window selects demand, it does not
    truncate it).  ``rebase_to`` subtracts the given origin from both
    endpoints; by default it is the window start when a window is set,
    else times pass through unchanged (the materialising
    :func:`normalize_items` can rebase to the first arrival because it
    sees the whole instance).  ``scale`` divides sizes; ``clamp`` then
    caps them at the given capacity (count in ``stats.clamped``).
    """
    if scale <= 0.0:
        raise ValueError(f"scale must be positive, got {scale}")
    if sample is not None and not (0.0 < sample <= 1.0):
        raise ValueError(f"sample must be in (0, 1], got {sample}")
    if window is not None and not (window[1] > window[0]):
        raise ValueError(f"window end must be after start, got {window}")
    origin = rebase_to
    if origin is None and window is not None:
        origin = window[0]
    for item in items:
        if window is not None and not (window[0] <= item.arrival < window[1]):
            stats.dropped_window += 1
            continue
        if sample is not None and not keep_fraction(
            str(item.item_id), sample, seed
        ):
            stats.dropped_sample += 1
            continue
        if scale != 1.0:
            item = _scale_item(item, scale)
        if clamp is not None:
            item = _clamp_item(item, clamp, stats)
        if origin:
            item = replace(
                item,
                arrival=item.arrival - origin,
                departure=item.departure - origin,
            )
        stats.kept += 1
        yield item


def normalize_items(
    instance: Union[ItemList, VectorItemList],
    window: Optional[Tuple[float, float]] = None,
    sample: Optional[float] = None,
    seed: int = 0,
    scale: float = 1.0,
    clamp: Optional[float] = 1.0,
    rebase: bool = True,
) -> Tuple[Union[ItemList, VectorItemList], NormalizeStats]:
    """Materialising wrapper: normalize a whole instance at once.

    With ``rebase=True`` and no window, times shift so the earliest
    *kept* arrival is 0 (the streaming path can't know it in advance).
    """
    stats = NormalizeStats()
    kept = list(
        normalize_stream(
            instance,
            stats,
            window=window,
            sample=sample,
            seed=seed,
            scale=scale,
            clamp=clamp,
            rebase_to=window[0] if (rebase and window is not None) else None,
        )
    )
    if rebase and window is None and kept:
        origin = min(it.arrival for it in kept)
        if origin:
            kept = [
                replace(
                    it,
                    arrival=it.arrival - origin,
                    departure=it.departure - origin,
                )
                for it in kept
            ]
    if isinstance(instance, VectorItemList):
        return VectorItemList(kept, capacity=instance.capacity), stats
    return ItemList(kept, capacity=instance.capacity), stats


# ---------------------------------------------------------------------------
# Schema-preserving raw-file sampling
# ---------------------------------------------------------------------------


def _azure_line_key(line: str) -> Optional[str]:
    return line.split(",", 1)[0].strip()


def _google_line_key(line: str) -> Optional[str]:
    stripped = line.lstrip()
    if stripped.startswith("{"):
        try:
            doc = json.loads(stripped)
            return f"{doc['job_id']}/{doc['task_index']}"
        except (ValueError, KeyError):
            return None
    parts = line.split(",")
    if len(parts) < 4:
        return None
    return f"{parts[2].strip()}/{parts[3].strip()}"


_LINE_KEYS = {"azure": _azure_line_key, "google": _google_line_key}


def sample_trace_file(
    src: PathLike,
    dst: PathLike,
    schema: str,
    fraction: float,
    seed: int = 0,
) -> Tuple[int, int]:
    """Thin a raw trace file to ``fraction`` of its entities.

    Streams ``src`` → ``dst`` (either side may be ``.gz``), keeping or
    dropping whole *entities* — every line sharing a vmId (Azure) or
    job/task pair (Google) survives or vanishes together, so event
    pairs stay pairable and the output is still a valid trace in the
    same schema.  Header and comment lines always pass through, kept
    lines are byte-identical.  Returns ``(kept_lines, total_lines)``.
    """
    get_adapter(schema)  # validate the name against the registry
    try:
        line_key = _LINE_KEYS[schema]
    except KeyError:
        raise ValueError(f"schema {schema!r} has no raw-line sampler") from None
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")

    counters = {"kept": 0, "total": 0}

    def kept_lines() -> Iterator[str]:
        saw_header = False
        with open_trace(src) as handle:
            for line in handle:
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    yield line
                    continue
                if schema == "azure" and not saw_header:
                    saw_header = True  # header row always survives
                    yield line
                    continue
                counters["total"] += 1
                key = line_key(line)
                if key is None:
                    raise TraceFormatError(
                        "cannot extract entity key for sampling",
                        str(src),
                        counters["total"],
                    )
                if keep_fraction(key, fraction, seed):
                    counters["kept"] += 1
                    yield line

    write_trace(dst, kept_lines())
    return counters["kept"], counters["total"]
