"""Concrete adaptive adversary strategies.

:class:`KeepAliveAdversary` implements the classic drain strategy behind
the µ-type lower bounds: release waves of small equal jobs, watch where
the algorithm puts them, then *keep exactly one job alive in every bin
the wave touched* (until the wave time + µ) and kill the rest (at the
minimum duration 1).  Whatever the algorithm did, each of its touched
bins is pinned open for µ at utilisation 1/k, while the optimum could
have concentrated the survivors in one bin.

Unlike the fixed gadgets in :mod:`repro.workloads.adversarial` (which
pre-compute one deterministic algorithm's choices), this strategy adapts
to *any* deterministic policy through the game protocol.
"""

from __future__ import annotations

from typing import Optional

from .game import AdaptiveAdversary, GameHistory, PendingJob

__all__ = ["KeepAliveAdversary"]


class KeepAliveAdversary(AdaptiveAdversary):
    """Wave-release, keep-one-alive-per-bin drain strategy.

    Parameters
    ----------
    waves:
        Number of release rounds.
    k:
        Granularity: jobs have size ``1/k``.
    bins_per_wave:
        Each wave releases ``k·bins_per_wave`` jobs — enough volume that
        the algorithm must touch at least ``bins_per_wave`` bins, each
        of which then holds a pinned survivor.
    mu:
        Max/min duration ratio to enforce: survivors live ``µ``, victims
        live exactly 1 (the minimum).
    spacing:
        Time between waves; must exceed 1 so victims of wave r are gone
        before wave r+1 (keeps the interaction analysable).
    """

    def __init__(
        self,
        waves: int,
        k: int,
        mu: float,
        spacing: float = 1.25,
        bins_per_wave: int = 1,
    ):
        if waves < 1 or k < 1 or bins_per_wave < 1:
            raise ValueError("waves, k and bins_per_wave must be positive")
        if mu <= 1:
            raise ValueError("mu must exceed 1")
        if spacing <= 1:
            raise ValueError("spacing must exceed the victim duration 1")
        self.waves = waves
        self.k = k
        self.mu = mu
        self.spacing = spacing
        #: jobs per wave: bins_per_wave bins' worth of size-1/k jobs, so
        #: every wave forces the algorithm to touch ≥ bins_per_wave bins,
        #: each of which gets a pinned survivor
        self.wave_jobs = k * bins_per_wave
        self._released = 0

    # -- release schedule ---------------------------------------------------
    def _wave_of(self, index: int) -> int:
        return index // self.wave_jobs

    def next_arrival(self, history: GameHistory) -> Optional[PendingJob]:
        if self._released >= self.waves * self.wave_jobs:
            return None
        wave = self._wave_of(self._released)
        job = PendingJob(
            job_id=self._released,
            size=1.0 / self.k,
            arrival=wave * self.spacing,
        )
        self._released += 1
        return job

    # -- adaptive departures --------------------------------------------------
    def decide_departures(self, history: GameHistory, done: bool) -> None:
        completed_waves = (
            self._released // self.wave_jobs if not done else self.waves
        )
        for wave in range(completed_waves):
            members = [
                j for j in history.jobs if self._wave_of(j.job_id) == wave
            ]
            if any(j.departure is None for j in members):
                t = wave * self.spacing
                survivors: set[int] = set()
                for j in members:  # placement order within the wave
                    if j.bin_index not in survivors:
                        survivors.add(j.bin_index)
                        j.departure = t + self.mu  # one survivor per bin
                    else:
                        j.departure = t + 1.0  # minimum duration
