"""The adaptive adversary game for MinUsageTime DBP.

Lower-bound proofs in this literature are adaptive: the adversary
*watches where the algorithm places each item* and chooses future
arrivals and departures accordingly.  A fixed instance can only realise
such a bound against one deterministic algorithm; the game framework
here replays the interaction properly, for any policy.

Protocol
--------
The :class:`AdaptiveAdversary` is driven by :func:`play_game`:

1. ``next_arrival(history)`` — the adversary emits the next job (size +
   arrival time; the departure is *not yet fixed*), or ``None`` to end
   the release phase.
2. The algorithm places the job; the adversary observes the chosen bin
   via the history and may fix departures for any pending jobs
   (``decide_departures``).
3. When releases end, all remaining pending jobs must receive
   departures.

The driver then materialises the completed instance and replays it
through the standard packing driver to obtain the exact cost (the
interactive phase and the replay agree because the adversary only fixes
each departure after the placement decisions it depends on — placements
are a deterministic function of the prefix for deterministic policies;
:func:`play_game` asserts the replay's placements match the live ones).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from ..algorithms.base import PackingAlgorithm
from ..core.items import Item, ItemList
from ..core.packing import run_packing
from ..core.result import PackingResult

__all__ = ["PendingJob", "GameHistory", "AdaptiveAdversary", "play_game"]


@dataclass
class PendingJob:
    """A released job whose departure the adversary has not fixed yet."""

    job_id: int
    size: float
    arrival: float
    bin_index: Optional[int] = None  # set once placed
    departure: Optional[float] = None  # set by the adversary


@dataclass
class GameHistory:
    """Everything both players have seen so far."""

    jobs: list[PendingJob] = field(default_factory=list)

    @property
    def placed(self) -> list[PendingJob]:
        return [j for j in self.jobs if j.bin_index is not None]

    def jobs_in_bin(self, bin_index: int) -> list[PendingJob]:
        return [j for j in self.jobs if j.bin_index == bin_index]

    @property
    def num_bins_used(self) -> int:
        return 1 + max((j.bin_index for j in self.placed), default=-1)


class AdaptiveAdversary(abc.ABC):
    """A strategy releasing jobs and fixing departures adaptively."""

    @abc.abstractmethod
    def next_arrival(self, history: GameHistory) -> Optional[PendingJob]:
        """The next job to release, or None to stop releasing."""

    @abc.abstractmethod
    def decide_departures(self, history: GameHistory, done: bool) -> None:
        """Fix departures on pending jobs.

        Called after every placement (``done=False``) and once after the
        final release (``done=True``), at which point every job must end
        up with a departure strictly after its arrival.
        """


def _simulate_prefix(jobs: list[PendingJob], algorithm: PackingAlgorithm) -> int:
    """Where the algorithm puts the *last* job of ``jobs``.

    Replays the event prefix: arrivals of all jobs in release order and
    the departures already fixed that occur before the last arrival.
    Departures not yet fixed are treated as "still running" (that is
    exactly the online information state).
    """
    last = jobs[-1]
    horizon = last.arrival
    far = max((j.departure or 0.0) for j in jobs) + max(horizon, 1.0) + 1.0
    items = []
    for j in jobs:
        dep = j.departure if (j.departure is not None and j.departure <= horizon) else far + j.job_id * 1e-6
        items.append(Item(j.job_id, j.size, j.arrival, max(dep, j.arrival + 1e-9)))
    result = run_packing(ItemList(items), algorithm)
    return result.item_bin[last.job_id]


def play_game(
    adversary: AdaptiveAdversary,
    algorithm: PackingAlgorithm,
    max_jobs: int = 10_000,
) -> tuple[ItemList, PackingResult]:
    """Run the adaptive game and return (instance, algorithm's packing).

    The algorithm must be deterministic: its placements are recomputed
    by prefix replay, and the final full-instance replay is asserted to
    agree with the live placements.
    """
    history = GameHistory()
    while len(history.jobs) < max_jobs:
        job = adversary.next_arrival(history)
        if job is None:
            break
        history.jobs.append(job)
        job.bin_index = _simulate_prefix(history.jobs, algorithm)
        adversary.decide_departures(history, done=False)
    adversary.decide_departures(history, done=True)

    for j in history.jobs:
        if j.departure is None or j.departure <= j.arrival:
            raise ValueError(f"adversary left job {j.job_id} without a valid departure")
    instance = ItemList(
        Item(j.job_id, j.size, j.arrival, j.departure) for j in history.jobs
    )
    result = run_packing(instance, algorithm)
    for j in history.jobs:
        if result.item_bin[j.job_id] != j.bin_index:
            raise AssertionError(
                "replay diverged from the live game — the algorithm is not "
                "deterministic, or departures were fixed retroactively "
                f"(job {j.job_id}: live bin {j.bin_index}, replay "
                f"{result.item_bin[j.job_id]})"
            )
    return instance, result
