"""Empirical worst-case search: perturb instances to maximise a ratio.

The fixed gadgets and the adaptive game realise *known* lower bounds;
this module searches for bad instances nobody designed.  A simple
stochastic hill climber perturbs an instance (nudging arrivals,
departures and sizes, inserting and deleting items) and keeps mutations
that increase the measured ``ALG/OPT-lower`` ratio, subject to the µ cap
(the quantity Theorem 1's bound is expressed in — without the cap the
search would just inflate µ).

The explorer is used two ways:

- experiment **X5** reports the worst ratios it finds per algorithm and
  checks they respect the analytic bounds (a falsification attempt on
  Theorem 1 — it has never succeeded);
- the regression corpus: seeds that once produced high ratios are kept
  as test fixtures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.base import PackingAlgorithm
from ..core.items import Item, ItemList
from ..core.packing import run_packing
from ..opt.opt_total import opt_total

__all__ = ["ExplorationResult", "explore_worst_case"]

_EPS = 1e-9


@dataclass(frozen=True)
class ExplorationResult:
    """Outcome of one hill-climbing run."""

    best_instance: ItemList
    best_ratio: float
    initial_ratio: float
    evaluations: int
    accepted: int

    @property
    def improvement(self) -> float:
        return self.best_ratio - self.initial_ratio


def _ratio(items: ItemList, algorithm: PackingAlgorithm, node_budget: int) -> float:
    if len(items) == 0:
        return 0.0
    result = run_packing(items, algorithm)
    opt = opt_total(items, node_budget=node_budget)
    if opt.lower <= _EPS:
        return 0.0
    return result.total_usage_time / opt.lower


def _mutate(
    items: ItemList, rng: np.random.Generator, mu_cap: float, min_duration: float
) -> ItemList:
    """One random structural or numeric perturbation, kept µ-feasible."""
    jobs = [[it.size, it.arrival, it.departure] for it in items]
    move = rng.integers(0, 5)
    if move == 0 and len(jobs) > 2:  # delete a job
        jobs.pop(int(rng.integers(0, len(jobs))))
    elif move == 1:  # duplicate-and-shift a job
        src = jobs[int(rng.integers(0, len(jobs)))]
        shift = float(rng.uniform(-1.0, 1.0))
        jobs.append([src[0], src[1] + shift, src[2] + shift])
    elif move == 2:  # nudge an arrival (keep duration)
        j = jobs[int(rng.integers(0, len(jobs)))]
        shift = float(rng.uniform(-0.5, 0.5))
        j[1] += shift
        j[2] += shift
    elif move == 3:  # stretch/shrink a duration
        j = jobs[int(rng.integers(0, len(jobs)))]
        factor = float(rng.uniform(0.7, 1.4))
        j[2] = j[1] + (j[2] - j[1]) * factor
    else:  # resize
        j = jobs[int(rng.integers(0, len(jobs)))]
        j[0] = float(np.clip(j[0] * rng.uniform(0.6, 1.5), 0.01, 1.0))

    # enforce the duration band [min_duration, mu_cap·min_duration]
    lo, hi = min_duration, mu_cap * min_duration
    out = []
    for i, (s, a, d) in enumerate(jobs):
        dur = min(max(d - a, lo), hi)
        a = max(a, 0.0)
        out.append(Item(i, s, a, a + dur))
    return ItemList(out, capacity=items.capacity)


def explore_worst_case(
    seed_instance: ItemList,
    algorithm: PackingAlgorithm,
    iterations: int = 200,
    seed: int = 0,
    mu_cap: float | None = None,
    node_budget: int = 40_000,
) -> ExplorationResult:
    """Stochastic hill climbing from ``seed_instance``.

    ``mu_cap`` defaults to the seed instance's µ; every mutation is
    clamped back into the duration band so the comparison against
    ``µ_cap + 4`` stays meaningful.
    """
    if len(seed_instance) == 0:
        raise ValueError("seed instance must be non-empty")
    rng = np.random.default_rng(seed)
    mu_cap = seed_instance.mu if mu_cap is None else mu_cap
    min_duration = seed_instance.min_duration

    current = seed_instance
    current_ratio = _ratio(current, algorithm, node_budget)
    initial = current_ratio
    best, best_ratio = current, current_ratio
    accepted = 0
    for _ in range(iterations):
        candidate = _mutate(current, rng, mu_cap, min_duration)
        if len(candidate) == 0:
            continue
        r = _ratio(candidate, algorithm, node_budget)
        if r > current_ratio + _EPS:
            current, current_ratio = candidate, r
            accepted += 1
            if r > best_ratio:
                best, best_ratio = candidate, r
    return ExplorationResult(
        best_instance=best,
        best_ratio=best_ratio,
        initial_ratio=initial,
        evaluations=iterations,
        accepted=accepted,
    )
