"""Adaptive adversary game framework and strategies."""

from .game import AdaptiveAdversary, GameHistory, PendingJob, play_game
from .strategies import KeepAliveAdversary

__all__ = [
    "AdaptiveAdversary",
    "GameHistory",
    "KeepAliveAdversary",
    "PendingJob",
    "play_game",
]
