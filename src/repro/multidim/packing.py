"""Multi-dimensional MinUsageTime DBP — the vector engine entry point.

Since the engine unification this module contains **no event loop**:
:func:`run_vector_packing` builds a
:class:`~repro.multidim.state.VectorPackingState` and hands it to the
shared :func:`repro.core.driver.run_events`, the same driver that powers
the scalar :func:`~repro.core.packing.run_packing`.  Event ordering,
departures-before-arrivals ties, placement validation, observer
dispatch, O(1) bin close, and the adaptive first-fit index therefore
behave identically in both engines, and every driver-level improvement
reaches vector workloads for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Optional, Sequence

from ..core.driver import Observer, run_events
from .algorithms import VectorAlgorithm
from .bins import VectorBin
from .items import VectorItem, VectorItemList
from .state import VectorPackingState

__all__ = ["VectorPackingResult", "run_vector_packing"]


@dataclass(frozen=True)
class VectorPackingResult:
    """Outcome of one vector packing run."""

    items: VectorItemList
    bins: tuple[VectorBin, ...]
    algorithm_name: str
    item_bin: dict[int, int]

    @cached_property
    def total_usage_time(self) -> float:
        return sum(b.usage_time for b in self.bins)

    @property
    def num_bins(self) -> int:
        return len(self.bins)

    def ratio_vs_lower_bound(self) -> float:
        """Usage time over the closed-form OPT lower bound."""
        lb = self.items.lower_bound()
        if lb <= 0:
            raise ValueError("degenerate instance: zero lower bound")
        return self.total_usage_time / lb


def run_vector_packing(
    items: VectorItemList | Iterable[VectorItem],
    algorithm: VectorAlgorithm,
    capacity: Optional[Sequence[float]] = None,
    observers: Sequence[Observer] = (),
    indexed: bool = True,
) -> VectorPackingResult:
    """Pack vector ``items`` online with ``algorithm`` and return the result.

    Parameters
    ----------
    items:
        The instance.  A plain iterable is wrapped into a
        :class:`~repro.multidim.items.VectorItemList` (validating sizes
        against ``capacity``, which then defaults to the unit vector of
        the items' dimension).
    algorithm:
        The placement policy.  It is ``reset()`` before the run.
    capacity:
        Per-dimension bin capacity.  When ``items`` is already a
        ``VectorItemList`` this must match the list's capacity (same
        guardrail — and same error message — as the scalar engine).
    observers:
        Callbacks invoked after every applied event.
    indexed:
        Maintain the O(log n) vector first-fit index (default).
        ``False`` selects the reference linear scans; both paths must
        produce identical packings (pinned by the differential tests).

    Notes
    -----
    Simultaneous events are ordered departures-first (half-open
    intervals), then by instance order — identical to the 1-D engine,
    because it *is* the 1-D engine's driver.
    """
    if not isinstance(items, VectorItemList):
        materialised = tuple(items)
        if capacity is None:
            if not materialised:
                raise ValueError("cannot infer capacity from an empty instance")
            capacity = (1.0,) * materialised[0].dimensions
        items = VectorItemList(materialised, capacity=capacity)
    elif capacity is not None and (
        len(items.capacity) != len(tuple(capacity))
        or any(abs(a - float(b)) > 1e-12 for a, b in zip(items.capacity, capacity))
    ):
        raise ValueError(
            f"capacity mismatch: ItemList built with {items.capacity}, "
            f"run requested {tuple(float(c) for c in capacity)}"
        )

    state = VectorPackingState(capacity=items.capacity, indexed=indexed)
    run_events(items, algorithm, state, observers, hook_base=VectorAlgorithm)
    return VectorPackingResult(
        items=items,
        bins=tuple(state.bins),
        algorithm_name=algorithm.name,
        item_bin=dict(state.item_bin),
    )
