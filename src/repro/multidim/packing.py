"""Event-driven driver for multi-dimensional MinUsageTime DBP."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .algorithms import VectorAlgorithm
from .bins import VectorBin
from .items import VectorItem, VectorItemList

__all__ = ["VectorPackingResult", "run_vector_packing"]


@dataclass(frozen=True)
class VectorPackingResult:
    """Outcome of one vector packing run."""

    items: VectorItemList
    bins: tuple[VectorBin, ...]
    algorithm_name: str
    item_bin: dict[int, int]

    @cached_property
    def total_usage_time(self) -> float:
        return sum(b.usage_time for b in self.bins)

    @property
    def num_bins(self) -> int:
        return len(self.bins)

    def ratio_vs_lower_bound(self) -> float:
        """Usage time over the closed-form OPT lower bound."""
        lb = self.items.lower_bound()
        if lb <= 0:
            raise ValueError("degenerate instance: zero lower bound")
        return self.total_usage_time / lb


def run_vector_packing(
    items: VectorItemList, algorithm: VectorAlgorithm
) -> VectorPackingResult:
    """Replay arrivals/departures through a vector policy.

    Event ordering matches the 1-D driver: time-ordered, departures
    before arrivals at ties, instance order within a kind.
    """
    algorithm.reset()
    events: list[tuple[float, int, int, VectorItem]] = []
    for seq, it in enumerate(items):
        events.append((it.arrival, 1, seq, it))
        events.append((it.departure, 0, seq, it))
    events.sort(key=lambda e: (e[0], e[1], e[2]))

    bins: list[VectorBin] = []
    open_bins: list[VectorBin] = []
    item_bin: dict[int, int] = {}
    for time, kind, _seq, it in events:
        if kind == 1:  # arrival
            target = algorithm.choose_bin(open_bins, it)
            new_bin = target is None
            if new_bin:
                target = VectorBin(index=len(bins), capacity=items.capacity)
                bins.append(target)
                open_bins.append(target)
            elif not target.fits(it):
                raise RuntimeError(
                    f"{algorithm.name} chose an infeasible bin {target.index}"
                )
            target.place(it, time)
            item_bin[it.item_id] = target.index
            algorithm.on_placed(target, new_bin)
        else:  # departure
            b = bins[item_bin[it.item_id]]
            b.remove(it, time)
            if not b.is_open:
                open_bins.remove(b)

    assert not open_bins, "all vector bins must close after the last departure"
    return VectorPackingResult(
        items=items,
        bins=tuple(bins),
        algorithm_name=algorithm.name,
        item_bin=item_bin,
    )
