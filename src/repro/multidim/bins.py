"""Vector bins: capacity feasibility in every dimension."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.intervals import Interval
from .items import VectorItem

__all__ = ["VectorBin"]

_EPS = 1e-9


@dataclass
class VectorBin:
    """A multi-resource server; open/close lifecycle mirrors the 1-D bin."""

    index: int
    capacity: tuple[float, ...]
    opened_at: Optional[float] = None
    closed_at: Optional[float] = None
    levels: tuple[float, ...] = ()
    active_items: dict[int, VectorItem] = field(default_factory=dict)
    all_items: list[VectorItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            self.levels = tuple(0.0 for _ in self.capacity)

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None and self.closed_at is None

    @property
    def usage_period(self) -> Interval:
        if self.opened_at is None or self.closed_at is None:
            raise ValueError(f"bin {self.index} has no finished usage period")
        return Interval(self.opened_at, self.closed_at)

    @property
    def usage_time(self) -> float:
        return self.usage_period.length

    def fits(self, item: VectorItem) -> bool:
        """Componentwise feasibility."""
        return all(
            lvl + s <= c + _EPS
            for lvl, s, c in zip(self.levels, item.sizes, self.capacity)
        )

    def fullness(self) -> float:
        """Scalar load measure: the maximum normalised component.

        Used by vector Best/Worst Fit; the max-norm is the standard
        scalarisation for vector packing heuristics (the binding
        resource determines feasibility).
        """
        return max(l / c for l, c in zip(self.levels, self.capacity))

    def place(self, item: VectorItem, now: float) -> None:
        if self.closed_at is not None:
            raise ValueError(f"bin {self.index} is closed")
        if not self.fits(item):
            raise ValueError(
                f"bin {self.index}: item {item.item_id} does not fit at {self.levels}"
            )
        if self.opened_at is None:
            self.opened_at = now
        self.active_items[item.item_id] = item
        self.all_items.append(item)
        self.levels = tuple(l + s for l, s in zip(self.levels, item.sizes))

    def remove(self, item: VectorItem, now: float) -> None:
        if item.item_id not in self.active_items:
            raise KeyError(f"item {item.item_id} not active in bin {self.index}")
        del self.active_items[item.item_id]
        self.levels = tuple(l - s for l, s in zip(self.levels, item.sizes))
        if not self.active_items:
            self.levels = tuple(0.0 for _ in self.capacity)
            self.closed_at = now
