"""Vector bins: capacity feasibility in every dimension.

:class:`VectorBin` satisfies the same structural protocol as the scalar
:class:`~repro.core.bins.Bin` (``index`` / ``level`` / ``is_open`` /
``is_closed`` / ``fits`` / ``place`` / ``remove`` / usage period), with
the resource type being a tuple of floats instead of one float — that is
what lets the unified driver and the generic
:class:`~repro.core.state.BasePackingState` run vector packings without
a forked event loop.  The capacity tolerance is the engine-wide
:data:`~repro.core.bins.CAPACITY_EPS`, applied per dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.bins import CAPACITY_EPS
from ..core.intervals import Interval
from .items import VectorItem

__all__ = ["VectorBin"]


@dataclass
class VectorBin:
    """A multi-resource server; open/close lifecycle mirrors the 1-D bin."""

    index: int
    capacity: tuple[float, ...]
    opened_at: Optional[float] = None
    closed_at: Optional[float] = None
    levels: tuple[float, ...] = ()
    active_items: dict[int, VectorItem] = field(default_factory=dict)
    all_items: list[VectorItem] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.levels:
            self.levels = tuple(0.0 for _ in self.capacity)

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None and self.closed_at is None

    @property
    def is_closed(self) -> bool:
        return self.closed_at is not None

    @property
    def level(self) -> tuple[float, ...]:
        """The level vector, under the unified engine's protocol name."""
        return self.levels

    @property
    def usage_period(self) -> Interval:
        if self.opened_at is None or self.closed_at is None:
            raise ValueError(f"bin {self.index} has no finished usage period")
        return Interval(self.opened_at, self.closed_at)

    @property
    def usage_time(self) -> float:
        return self.usage_period.length

    def fits(self, item: VectorItem) -> bool:
        """Componentwise feasibility."""
        # explicit loop, not all(genexpr): this is called once per
        # arrival on the driver's validation path
        for lvl, s, c in zip(self.levels, item.sizes, self.capacity):
            if lvl + s > c + CAPACITY_EPS:
                return False
        return True

    def fits_sizes(self, sizes: Sequence[float]) -> bool:
        """Componentwise feasibility for a bare demand vector.

        Same comparisons as :meth:`fits`; used by policies that only see
        the revealed ``sizes`` (vector Next Fit's available-bin check).
        """
        for lvl, s, c in zip(self.levels, sizes, self.capacity):
            if lvl + s > c + CAPACITY_EPS:
                return False
        return True

    def fullness(self) -> float:
        """Scalar load measure: the maximum normalised component.

        Used by vector Best/Worst Fit; the max-norm is the standard
        scalarisation for vector packing heuristics (the binding
        resource determines feasibility).
        """
        return max(l / c for l, c in zip(self.levels, self.capacity))

    def place(self, item: VectorItem, now: float) -> None:
        if self.closed_at is not None:
            raise ValueError(f"bin {self.index} is closed")
        if not self.fits(item):
            raise ValueError(
                f"bin {self.index}: item {item.item_id} does not fit at {self.levels}"
            )
        if self.opened_at is None:
            self.opened_at = now
        self.active_items[item.item_id] = item
        self.all_items.append(item)
        self.levels = tuple(map(float.__add__, self.levels, item.sizes))

    def remove(self, item: VectorItem, now: float) -> None:
        if item.item_id not in self.active_items:
            raise KeyError(f"item {item.item_id} not active in bin {self.index}")
        del self.active_items[item.item_id]
        self.levels = tuple(map(float.__sub__, self.levels, item.sizes))
        if not self.active_items:
            self.levels = tuple(0.0 for _ in self.capacity)
            self.closed_at = now
