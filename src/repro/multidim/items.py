"""Multi-dimensional items: vector resource demands.

Section IX names the extension: "extend the MinUsageTime DBP problem to
the multi-dimensional version to model multiple types of resources
(e.g., CPU and memory) for online cloud server allocation."  A vector
item demands a share of each of ``D`` resources; a vector bin can host a
set of items iff the demand sum is within capacity in *every* dimension.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.intervals import Interval, span as _span

__all__ = ["VectorItem", "VectorItemList"]


@dataclass(frozen=True)
class VectorItem:
    """A job demanding ``sizes[d]`` of resource ``d`` over its interval."""

    item_id: int
    sizes: tuple[float, ...]
    arrival: float
    departure: float

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError(f"item {self.item_id}: needs at least one dimension")
        if any(s < 0 for s in self.sizes) or all(s <= 0 for s in self.sizes):
            raise ValueError(
                f"item {self.item_id}: sizes must be non-negative with at "
                f"least one positive component, got {self.sizes}"
            )
        if math.isnan(self.arrival) or math.isnan(self.departure):
            raise ValueError(f"item {self.item_id}: NaN endpoint")
        if not (self.departure > self.arrival):
            raise ValueError(f"item {self.item_id}: departure must be after arrival")

    @property
    def dimensions(self) -> int:
        return len(self.sizes)

    @property
    def size(self) -> tuple[float, ...]:
        """The demand vector, under the unified engine's protocol name.

        The generic driver reveals ``item.size`` to non-clairvoyant
        policies; for a vector item that is the full ``sizes`` tuple
        (and never the departure time).
        """
        return self.sizes

    @property
    def interval(self) -> Interval:
        return Interval(self.arrival, self.departure)

    @property
    def duration(self) -> float:
        return self.departure - self.arrival

    @property
    def max_size(self) -> float:
        """Largest component — the scalarisation used for size classes."""
        return max(self.sizes)

    def time_space_demand(self, dim: int) -> float:
        """``sizes[dim] · duration``."""
        return self.sizes[dim] * self.duration


class VectorItemList:
    """An instance of multi-dimensional MinUsageTime DBP."""

    def __init__(self, items: Iterable[VectorItem], capacity: Sequence[float] = (1.0,)):
        self._items: tuple[VectorItem, ...] = tuple(items)
        self.capacity: tuple[float, ...] = tuple(float(c) for c in capacity)
        if any(c <= 0 for c in self.capacity):
            raise ValueError("capacities must be positive")
        seen: set[int] = set()
        for it in self._items:
            if it.item_id in seen:
                raise ValueError(f"duplicate item_id {it.item_id}")
            seen.add(it.item_id)
            if it.dimensions != len(self.capacity):
                raise ValueError(
                    f"item {it.item_id} has {it.dimensions} dimensions, "
                    f"instance has {len(self.capacity)}"
                )
            for d, (s, c) in enumerate(zip(it.sizes, self.capacity)):
                if s > c + 1e-12:
                    raise ValueError(
                        f"item {it.item_id}: size {s} exceeds capacity {c} in dim {d}"
                    )

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[VectorItem]:
        return iter(self._items)

    def __getitem__(self, idx: int) -> VectorItem:
        return self._items[idx]

    @property
    def dimensions(self) -> int:
        return len(self.capacity)

    @property
    def mu(self) -> float:
        durations = [it.duration for it in self._items]
        if not durations:
            raise ValueError("empty instance has no µ")
        return max(durations) / min(durations)

    @property
    def span(self) -> float:
        return _span(it.interval for it in self._items)

    def time_space_demand(self, dim: int) -> float:
        """Total time–space demand in one dimension (Prop. 1 analogue)."""
        return sum(it.time_space_demand(dim) for it in self._items)

    def lower_bound(self) -> float:
        """``max(span, max_d TS_d / C_d)`` — OPT_total lower bound.

        Both Proposition 1 (per dimension, take the binding resource)
        and Proposition 2 carry over verbatim to the vector setting.
        """
        ts = max(
            self.time_space_demand(d) / self.capacity[d]
            for d in range(self.dimensions)
        )
        return max(self.span, ts)
