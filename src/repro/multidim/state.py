"""Vector packing state: the multi-dimensional client of the unified core.

:class:`VectorPackingState` subclasses
:class:`~repro.core.state.BasePackingState` and inherits the generic
``place``/``depart`` mutations unchanged — open-set bookkeeping is the
shared dict (O(1) close), the item→bin map is shared, and index
activation follows the same adaptive :data:`~repro.core.state.INDEX_THRESHOLD`
policy as the scalar engine.  What this class adds is the vector
resource binding:

- per-dimension incremental accounting (:attr:`total_level` is a tuple,
  one running open-level sum per resource);
- the :class:`~repro.core.ffindex.VectorFirstFitIndex` fast path for
  First Fit, adaptively activated exactly like the scalar tree;
- the selection queries vector policies use.  The Best/Worst Fit scans
  reproduce the historical vector engine's comparisons bit-for-bit
  (max-norm fullness with the 1e-12 tie hysteresis), so packings are
  pinned across the unification by the frozen corpus in
  ``tests/data/multidim/``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.bins import CAPACITY_EPS
from ..core.ffindex import VectorFirstFitIndex
from ..core.state import BasePackingState
from .bins import VectorBin

__all__ = ["VectorPackingState"]

#: Hysteresis of the historical vector Best/Worst Fit comparisons: a bin
#: must beat the incumbent's fullness by more than this to displace it.
#: Kept for bit-identical packings across the engine unification.
FULLNESS_EPS = 1e-12


class VectorPackingState(BasePackingState):
    """Open bins, closed bins, and item→bin bookkeeping for a vector run."""

    def __init__(self, capacity: Sequence[float] = (1.0,), indexed: bool = True):
        super().__init__(indexed=indexed)
        self.capacity: tuple[float, ...] = tuple(float(c) for c in capacity)
        if not self.capacity or any(c <= 0 for c in self.capacity):
            raise ValueError("capacities must be positive")
        self.dimensions = len(self.capacity)
        # running per-dimension sum of open-bin levels; mutable so
        # _account updates in place (exposed as a tuple via total_level)
        self._total: list[float] = [0.0] * self.dimensions
        self._index: Optional[VectorFirstFitIndex] = None
        # precomputed per-dimension feasibility bounds, the exact values
        # the reference scan and the tree both compare against
        self._cap_bound: tuple[float, ...] = tuple(
            c + CAPACITY_EPS for c in self.capacity
        )

    # -- resource bindings ----------------------------------------------------
    def _new_bin(self) -> VectorBin:
        b = VectorBin(index=len(self.bins), capacity=self.capacity)
        self.bins.append(b)
        self._open[b.index] = b
        return b

    def _make_index(self) -> VectorFirstFitIndex:
        return VectorFirstFitIndex(self.dimensions)

    def _account(self, before: Sequence[float], after: Sequence[float]) -> None:
        total = self._total
        for d, a in enumerate(after):
            total[d] = total[d] + a - before[d]

    def _reset_total(self) -> None:
        for d in range(self.dimensions):
            self._total[d] = 0.0

    @property
    def total_level(self) -> tuple[float, ...]:
        """Running per-dimension sum of open-bin levels."""
        return tuple(self._total)

    # -- read-only views used by algorithms ----------------------------------
    def open_bins_fitting(self, sizes: Sequence[float]) -> list[VectorBin]:
        """Open bins feasible in every dimension, index order."""
        bound = self._cap_bound
        return [
            b
            for b in self._open.values()
            if all(l + s <= c for l, s, c in zip(b.levels, sizes, bound))
        ]

    # -- selection queries -----------------------------------------------------
    def first_fit_bin(self, sizes: Sequence[float]) -> Optional[VectorBin]:
        """Earliest-opened open bin feasible in every dimension."""
        if self._index is not None:
            idx = self._index.first_fit(sizes, self._cap_bound)
            return None if idx is None else self.bins[idx]
        # explicit for/else instead of all(genexpr): this scan runs once
        # per arrival while the tree is inactive, and a generator frame
        # per candidate bin dominates the low-load profile
        bound = self._cap_bound
        for b in self._open.values():
            for l, s, c in zip(b.levels, sizes, bound):
                if l + s > c:
                    break
            else:
                return b
        return None

    def best_fit_bin(self, sizes: Sequence[float]) -> Optional[VectorBin]:
        """Feasible bin with the highest max-norm fullness.

        Linear scan (the fullness objective does not decompose per
        dimension, so the min-tree cannot prune for it); comparisons
        replicate the historical vector Best Fit exactly.
        """
        bound = self._cap_bound
        capacity = self.capacity
        best: Optional[VectorBin] = None
        best_full = 0.0
        for b in self._open.values():
            levels = b.levels
            for l, s, c in zip(levels, sizes, bound):
                if l + s > c:
                    break
            else:
                full = max(l / c for l, c in zip(levels, capacity))
                if best is None or full > best_full + FULLNESS_EPS:
                    best = b
                    best_full = full
        return best

    def worst_fit_bin(self, sizes: Sequence[float]) -> Optional[VectorBin]:
        """Feasible bin with the lowest max-norm fullness."""
        bound = self._cap_bound
        capacity = self.capacity
        worst: Optional[VectorBin] = None
        worst_full = 0.0
        for b in self._open.values():
            levels = b.levels
            for l, s, c in zip(levels, sizes, bound):
                if l + s > c:
                    break
            else:
                full = max(l / c for l, c in zip(levels, capacity))
                if worst is None or full < worst_full - FULLNESS_EPS:
                    worst = b
                    worst_full = full
        return worst
