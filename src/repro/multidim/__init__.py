"""Multi-dimensional MinUsageTime DBP — the paper's future-work extension."""

from .algorithms import (
    VECTOR_REGISTRY,
    VectorAlgorithm,
    VectorBestFit,
    VectorFirstFit,
    VectorNextFit,
    VectorWorstFit,
)
from .bins import VectorBin
from .items import VectorItem, VectorItemList
from .packing import VectorPackingResult, run_vector_packing
from .workloads import correlated_vector_workload, vector_workload

__all__ = [
    "VECTOR_REGISTRY",
    "VectorAlgorithm",
    "VectorBestFit",
    "VectorBin",
    "VectorFirstFit",
    "VectorItem",
    "VectorItemList",
    "VectorNextFit",
    "VectorPackingResult",
    "VectorWorstFit",
    "correlated_vector_workload",
    "run_vector_packing",
    "vector_workload",
]
