"""Multi-dimensional MinUsageTime DBP — the paper's future-work extension.

Runs on the unified packing core: the same event driver, bin lifecycle,
observers, and adaptive first-fit indexing as the scalar engine (see
``docs/ARCHITECTURE.md``).
"""

from .algorithms import (
    VECTOR_REGISTRY,
    VectorAlgorithm,
    VectorBestFit,
    VectorFirstFit,
    VectorNextFit,
    VectorWorstFit,
    make_vector_algorithm,
)
from .bins import VectorBin
from .items import VectorItem, VectorItemList
from .packing import VectorPackingResult, run_vector_packing
from .state import VectorPackingState
from .workloads import correlated_vector_workload, vector_workload

__all__ = [
    "VECTOR_REGISTRY",
    "VectorAlgorithm",
    "VectorBestFit",
    "VectorBin",
    "VectorFirstFit",
    "VectorItem",
    "VectorItemList",
    "VectorNextFit",
    "VectorPackingResult",
    "VectorPackingState",
    "VectorWorstFit",
    "correlated_vector_workload",
    "make_vector_algorithm",
    "run_vector_packing",
    "vector_workload",
]
