"""Vector packing policies: FF / BF / WF / NF lifted to D dimensions.

Feasibility is componentwise; Best/Worst Fit rank candidate bins by the
max-norm fullness (see :meth:`repro.multidim.bins.VectorBin.fullness`).
"""

from __future__ import annotations

import abc
from typing import Optional

from .bins import VectorBin

__all__ = [
    "VectorAlgorithm",
    "VectorFirstFit",
    "VectorBestFit",
    "VectorWorstFit",
    "VectorNextFit",
    "VECTOR_REGISTRY",
]


class VectorAlgorithm(abc.ABC):
    """Interface mirroring the 1-D :class:`PackingAlgorithm`."""

    name = "vector-abstract"

    def reset(self) -> None:
        """Clear per-run state."""

    @abc.abstractmethod
    def choose_bin(self, open_bins: list[VectorBin], item) -> Optional[VectorBin]:
        """Pick an open bin for the arriving item; None opens a new one."""

    def on_placed(self, target: VectorBin, new_bin: bool) -> None:
        """Hook after placement (Next Fit bookkeeping)."""


class VectorFirstFit(VectorAlgorithm):
    """Earliest-opened feasible bin."""

    name = "vector-first-fit"

    def choose_bin(self, open_bins: list[VectorBin], item) -> Optional[VectorBin]:
        for b in open_bins:
            if b.fits(item):
                return b
        return None


class VectorBestFit(VectorAlgorithm):
    """Feasible bin with the highest max-norm fullness."""

    name = "vector-best-fit"

    def choose_bin(self, open_bins: list[VectorBin], item) -> Optional[VectorBin]:
        best: Optional[VectorBin] = None
        for b in open_bins:
            if b.fits(item) and (best is None or b.fullness() > best.fullness() + 1e-12):
                best = b
        return best


class VectorWorstFit(VectorAlgorithm):
    """Feasible bin with the lowest max-norm fullness."""

    name = "vector-worst-fit"

    def choose_bin(self, open_bins: list[VectorBin], item) -> Optional[VectorBin]:
        worst: Optional[VectorBin] = None
        for b in open_bins:
            if b.fits(item) and (
                worst is None or b.fullness() < worst.fullness() - 1e-12
            ):
                worst = b
        return worst


class VectorNextFit(VectorAlgorithm):
    """Single available bin, retired on the first miss."""

    name = "vector-next-fit"

    def __init__(self) -> None:
        self._available: Optional[VectorBin] = None

    def reset(self) -> None:
        self._available = None

    def choose_bin(self, open_bins: list[VectorBin], item) -> Optional[VectorBin]:
        avail = self._available
        if avail is not None and avail.is_open and avail.fits(item):
            return avail
        self._available = None
        return None

    def on_placed(self, target: VectorBin, new_bin: bool) -> None:
        if new_bin:
            self._available = target


VECTOR_REGISTRY = {
    "vector-first-fit": VectorFirstFit,
    "vector-best-fit": VectorBestFit,
    "vector-worst-fit": VectorWorstFit,
    "vector-next-fit": VectorNextFit,
}
