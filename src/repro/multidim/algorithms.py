"""Vector packing policies: FF / BF / WF / NF lifted to D dimensions.

Since the engine unification these are *thin adapters* over the shared
core: each policy is a selection query against
:class:`~repro.multidim.state.VectorPackingState`, exactly as the scalar
policies are queries against :class:`~repro.core.state.PackingState`.
The interface mirrors the scalar
:class:`~repro.algorithms.base.PackingAlgorithm` — ``choose_bin`` sees
the revealed demand vector (never departure times) and the state; the
driver owns placement, validation, and lifecycle.

Feasibility is componentwise; Best/Worst Fit rank candidate bins by the
max-norm fullness (see :meth:`repro.multidim.bins.VectorBin.fullness`).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from .bins import VectorBin
from .state import VectorPackingState

__all__ = [
    "VectorAlgorithm",
    "VectorFirstFit",
    "VectorBestFit",
    "VectorWorstFit",
    "VectorNextFit",
    "VectorBudgetedRepack",
    "VECTOR_REGISTRY",
    "make_vector_algorithm",
]


class VectorAlgorithm(abc.ABC):
    """Interface mirroring the 1-D :class:`PackingAlgorithm`.

    Lifecycle (driven by :func:`repro.core.driver.run_events`)::

        algo.reset()                        # before each run
        target = algo.choose_bin(state, sizes)   # None => open a new bin
        ... driver places the item ...
        algo.on_placed(state, bin, sizes)   # bookkeeping hook (Next Fit)
        algo.on_departed(state, bin)        # after each departure
    """

    name = "vector-abstract"

    def reset(self) -> None:
        """Clear per-run state."""

    @abc.abstractmethod
    def choose_bin(
        self, state: VectorPackingState, sizes: Sequence[float]
    ) -> Optional[VectorBin]:
        """Pick an open bin for the arriving demand vector; None opens one."""

    def on_placed(
        self, state: VectorPackingState, target: VectorBin, sizes: Sequence[float]
    ) -> None:
        """Hook after the driver placed the item into ``target``."""

    def on_departed(self, state: VectorPackingState, source: VectorBin) -> None:
        """Hook after a departure was processed (``source`` may be closed)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class VectorFirstFit(VectorAlgorithm):
    """Earliest-opened feasible bin (O(log n) on an indexed state)."""

    name = "vector-first-fit"

    def choose_bin(self, state, sizes):
        return state.first_fit_bin(sizes)


class VectorBestFit(VectorAlgorithm):
    """Feasible bin with the highest max-norm fullness."""

    name = "vector-best-fit"

    def choose_bin(self, state, sizes):
        return state.best_fit_bin(sizes)


class VectorWorstFit(VectorAlgorithm):
    """Feasible bin with the lowest max-norm fullness."""

    name = "vector-worst-fit"

    def choose_bin(self, state, sizes):
        return state.worst_fit_bin(sizes)


class VectorNextFit(VectorAlgorithm):
    """Single available bin, retired on the first miss."""

    name = "vector-next-fit"

    def __init__(self) -> None:
        self._available: Optional[VectorBin] = None

    def reset(self) -> None:
        self._available = None

    def choose_bin(self, state, sizes):
        avail = self._available
        if avail is not None and avail.is_open and avail.fits_sizes(sizes):
            return avail
        # no available bin, it closed, or the item misses it: mark it
        # unavailable forever and request a fresh bin
        self._available = None
        return None

    def on_placed(self, state, target, sizes):
        if self._available is None:
            # the driver opened a new bin for us; it becomes available
            self._available = target


class VectorBudgetedRepack(VectorFirstFit):
    """Vector First Fit with up to ``budget`` migrations per event.

    The D-dimensional twin of
    :class:`~repro.algorithms.migration.BudgetedRepack`: it reuses the
    resource-generic evacuation planner (projected levels are tuples,
    waste ranking is max-norm fullness) so scalar and vector engines
    share one migration semantics.  ``budget=0`` is bit-identical to
    :class:`VectorFirstFit`.
    """

    name = "vector-repack-ff"

    def __init__(self, budget: int = 2):
        self.budget = int(budget)
        #: migrations planned (== applied) since the last reset
        self.moves = 0

    def reset(self) -> None:
        self.moves = 0

    def plan_migrations(self, state):
        from ..algorithms.migration import plan_evacuation_moves

        moves = plan_evacuation_moves(state, self.budget)
        self.moves += len(moves)
        return moves


VECTOR_REGISTRY = {
    "vector-first-fit": VectorFirstFit,
    "vector-best-fit": VectorBestFit,
    "vector-worst-fit": VectorWorstFit,
    "vector-next-fit": VectorNextFit,
    "vector-repack-ff": VectorBudgetedRepack,
}


def make_vector_algorithm(name: str) -> VectorAlgorithm:
    """Instantiate a registered vector policy by name."""
    try:
        return VECTOR_REGISTRY[name]()
    except KeyError:
        raise ValueError(
            f"unknown vector algorithm {name!r}; known: {sorted(VECTOR_REGISTRY)}"
        ) from None
