"""Random vector workloads (CPU/memory/GPU job mixes)."""

from __future__ import annotations

import numpy as np

from .items import VectorItem, VectorItemList

__all__ = ["vector_workload", "correlated_vector_workload"]


def vector_workload(
    n: int,
    seed: int,
    dimensions: int = 2,
    arrival_rate: float = 1.0,
    mu_target: float = 8.0,
    max_component: float = 0.6,
) -> VectorItemList:
    """Independent uniform demands per dimension.

    Sizes are uniform on ``(0.02, max_component]`` independently per
    resource; durations exponential clipped to ``[1, µ_target]``.
    """
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, n))
    sizes = rng.uniform(0.02, max_component, size=(n, dimensions))
    durations = np.clip(rng.exponential(2.0, n), 1.0, mu_target)
    return VectorItemList(
        (
            VectorItem(
                i,
                tuple(float(s) for s in sizes[i]),
                float(arrivals[i]),
                float(arrivals[i] + durations[i]),
            )
            for i in range(n)
        ),
        capacity=tuple(1.0 for _ in range(dimensions)),
    )


def correlated_vector_workload(
    n: int,
    seed: int,
    arrival_rate: float = 1.0,
    mu_target: float = 8.0,
    correlation: float = 0.8,
) -> VectorItemList:
    """2-D (CPU, memory) demands with a controllable correlation.

    Real jobs' CPU and memory demands correlate; ``correlation=1``
    makes the problem effectively 1-D (the shapes align), while
    ``correlation=0`` maximises the packing tension between dimensions.
    """
    if not (0.0 <= correlation <= 1.0):
        raise ValueError("correlation must be in [0, 1]")
    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, n))
    base = rng.uniform(0.05, 0.6, n)
    noise = rng.uniform(0.05, 0.6, n)
    second = correlation * base + (1.0 - correlation) * noise
    durations = np.clip(rng.exponential(2.0, n), 1.0, mu_target)
    return VectorItemList(
        (
            VectorItem(
                i,
                (float(base[i]), float(min(second[i], 1.0))),
                float(arrivals[i]),
                float(arrivals[i] + durations[i]),
            )
            for i in range(n)
        ),
        capacity=(1.0, 1.0),
    )
