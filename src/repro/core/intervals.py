"""Half-open time intervals and interval-set algebra.

The paper (Section III-A) views all time intervals as half-open,
``I = [I^-, I^+)``.  This module provides the :class:`Interval` value type
and the set operations the analysis needs: length, intersection, union
length, and the *span* of a collection of intervals (the measure of time
during which at least one interval is active — see Figure 1 of the paper).

All endpoints are floats.  Intervals are immutable and ordered by
``(left, right)`` so that sorted sequences of intervals are deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Interval",
    "EMPTY_INTERVAL",
    "span",
    "union_length",
    "merge_intervals",
    "intervals_intersect",
    "total_length",
    "coverage_at",
]


@dataclass(frozen=True, order=True)
class Interval:
    """A half-open time interval ``[left, right)``.

    An interval with ``right <= left`` is *empty*: it has zero length and
    intersects nothing.  The paper writes ``I^-`` for :attr:`left`,
    ``I^+`` for :attr:`right` and ``|I|`` for :meth:`length`.
    """

    left: float
    right: float

    def __post_init__(self) -> None:
        if math.isnan(self.left) or math.isnan(self.right):
            raise ValueError("interval endpoints must not be NaN")

    @property
    def length(self) -> float:
        """``|I| = max(0, I^+ - I^-)``; empty intervals have length 0."""
        return max(0.0, self.right - self.left)

    @property
    def is_empty(self) -> bool:
        """True when the interval contains no point (``right <= left``)."""
        return self.right <= self.left

    def contains(self, t: float) -> bool:
        """Whether time ``t`` lies in ``[left, right)``."""
        return self.left <= t < self.right

    def contains_interval(self, other: "Interval") -> bool:
        """Whether ``other`` is fully contained in this interval.

        Empty intervals are contained in everything (they contain no
        points).
        """
        if other.is_empty:
            return True
        return self.left <= other.left and other.right <= self.right

    def intersection(self, other: "Interval") -> "Interval":
        """The (possibly empty) overlap of two half-open intervals."""
        lo = max(self.left, other.left)
        hi = min(self.right, other.right)
        if hi <= lo:
            return EMPTY_INTERVAL
        return Interval(lo, hi)

    def intersects(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point.

        Half-openness means ``[a, b)`` and ``[b, c)`` do *not* intersect.
        """
        if self.is_empty or other.is_empty:
            return False
        return max(self.left, other.left) < min(self.right, other.right)

    def shift(self, delta: float) -> "Interval":
        """The interval translated by ``delta``."""
        return Interval(self.left + delta, self.right + delta)

    def hull(self, other: "Interval") -> "Interval":
        """Smallest interval containing both (ignoring empty operands)."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.left, other.left), max(self.right, other.right))

    def __iter__(self) -> Iterator[float]:
        yield self.left
        yield self.right

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.left:g}, {self.right:g})"


#: Canonical empty interval.  Any interval with ``right <= left`` behaves
#: identically; this constant is returned by operations that produce an
#: empty result.
EMPTY_INTERVAL = Interval(0.0, 0.0)


def merge_intervals(intervals: Iterable[Interval]) -> list[Interval]:
    """Merge overlapping/touching intervals into a sorted disjoint list.

    Touching half-open intervals ``[a,b)`` and ``[b,c)`` are coalesced into
    ``[a,c)`` because their union is an interval.  Empty intervals are
    dropped.
    """
    live = sorted(iv for iv in intervals if not iv.is_empty)
    merged: list[Interval] = []
    for iv in live:
        if merged and iv.left <= merged[-1].right:
            last = merged[-1]
            if iv.right > last.right:
                merged[-1] = Interval(last.left, iv.right)
        else:
            merged.append(iv)
    return merged


def union_length(intervals: Iterable[Interval]) -> float:
    """Measure of the union of a collection of intervals."""
    return sum(iv.length for iv in merge_intervals(intervals))


def span(intervals: Iterable[Interval]) -> float:
    """The *span* of a collection of intervals (paper, Fig. 1).

    Defined as the total duration during which at least one interval is
    active, i.e. the measure of their union.  For an item list ``R`` the
    paper writes ``span(R)``; Proposition 2 states
    ``OPT_total(R) >= span(R)``.
    """
    return union_length(intervals)


def total_length(intervals: Iterable[Interval]) -> float:
    """Sum of individual lengths (counts overlaps with multiplicity)."""
    return sum(iv.length for iv in intervals)


def intervals_intersect(a: Sequence[Interval], b: Sequence[Interval]) -> bool:
    """Whether any interval in ``a`` intersects any interval in ``b``.

    Runs in ``O((|a|+|b|) log)`` after sorting, by merging the two sorted
    lists.
    """
    sa = merge_intervals(a)
    sb = merge_intervals(b)
    i = j = 0
    while i < len(sa) and j < len(sb):
        if sa[i].intersects(sb[j]):
            return True
        if sa[i].right <= sb[j].right:
            i += 1
        else:
            j += 1
    return False


def coverage_at(intervals: Iterable[Interval], t: float) -> int:
    """Number of intervals containing time ``t``."""
    return sum(1 for iv in intervals if iv.contains(t))
