"""The bin (cloud server) substrate.

A :class:`Bin` tracks the set of active items it holds, its *level*
(total size of active items — the paper's "bin level"), its usage period
``U_k = [opened_at, closed_at)``, and a full level timeline for later
analysis.  Capacity feasibility is enforced with a small tolerance so
instances built from fractions like ``1/3`` pack exactly.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from operator import itemgetter
from typing import Optional

from .intervals import Interval
from .items import Item

__all__ = ["Bin", "CAPACITY_EPS"]

#: Absolute tolerance for capacity feasibility checks.  Sizes in this
#: problem are O(1); 1e-9 absorbs float accumulation without admitting
#: any meaningfully infeasible placement.
CAPACITY_EPS = 1e-9


@dataclass
class Bin:
    """A unit-capacity bin / pay-as-you-go cloud server.

    The bin is *opened* when it receives its first item and *closed* when
    its last active item departs.  Following the paper, a closed bin is
    never reused — a re-opened server is a new bin with its own usage
    period.

    Attributes
    ----------
    index:
        0-based opening order among all bins of a packing run.  First Fit
        scans bins in increasing ``index``.
    capacity:
        Resource capacity (1.0 throughout the paper).
    """

    index: int
    capacity: float = 1.0
    opened_at: Optional[float] = None
    closed_at: Optional[float] = None
    level: float = 0.0
    active_items: dict[int, Item] = field(default_factory=dict)
    #: every item ever placed here, in placement order
    all_items: list[Item] = field(default_factory=list)
    #: piecewise-constant level history: (time, level after the event)
    level_history: list[tuple[float, float]] = field(default_factory=list)

    # -- queries -------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """Open = has received its first item and not yet closed."""
        return self.opened_at is not None and self.closed_at is None

    @property
    def is_closed(self) -> bool:
        return self.closed_at is not None

    @property
    def usage_period(self) -> Interval:
        """``U_k = [opened_at, closed_at)`` (requires the bin be closed)."""
        if self.opened_at is None or self.closed_at is None:
            raise ValueError(f"bin {self.index} has no finished usage period")
        return Interval(self.opened_at, self.closed_at)

    @property
    def usage_time(self) -> float:
        """``|U_k|`` — this bin's contribution to the objective."""
        return self.usage_period.length

    def residual(self) -> float:
        """Free capacity right now."""
        return self.capacity - self.level

    def fits(self, item: Item) -> bool:
        """Whether ``item`` can be placed without exceeding capacity."""
        return self.level + item.size <= self.capacity + CAPACITY_EPS

    def level_at(self, t: float) -> float:
        """Bin level at time ``t`` from the recorded history.

        The history is piecewise constant and right-continuous: the level
        at ``t`` is the one set by the last event at time ``<= t``.
        Returns 0 outside the usage period.  The history is ordered by
        event time, so the lookup is a binary search, O(log events).
        """
        idx = bisect_right(self.level_history, t, key=itemgetter(0))
        if idx == 0:
            return 0.0
        return self.level_history[idx - 1][1]

    # -- mutations (called by the packing state) -----------------------------
    def place(self, item: Item, now: float) -> None:
        """Insert an arriving item; opens the bin on first placement."""
        if self.closed_at is not None:
            raise ValueError(f"bin {self.index} is closed; cannot place item")
        if self.level + item.size > self.capacity + CAPACITY_EPS:
            raise ValueError(
                f"bin {self.index}: item {item.item_id} (size {item.size}) "
                f"does not fit at level {self.level}"
            )
        if self.opened_at is None:
            self.opened_at = now
        self.active_items[item.item_id] = item
        self.all_items.append(item)
        self.level += item.size
        self.level_history.append((now, self.level))

    def remove(self, item: Item, now: float) -> None:
        """Remove a departing item; closes the bin if it becomes empty."""
        if item.item_id not in self.active_items:
            raise KeyError(f"item {item.item_id} is not active in bin {self.index}")
        del self.active_items[item.item_id]
        self.level -= item.size
        if not self.active_items:
            self.level = 0.0  # snap float residue to exact zero
            self.closed_at = now
        self.level_history.append((now, self.level))
