"""Items (jobs) and item-list statistics for MinUsageTime DBP.

An *item* is the paper's unit of work: it has a size ``s(r)`` (resource
demand, relative to unit bin capacity), an arrival time, and a departure
time.  The departure time exists in the instance description but is
**hidden from online algorithms** — the packing driver only reveals it to
the simulator, never to the placement policy (see
:mod:`repro.core.packing`).

The module also provides :class:`ItemList` with the instance-level
quantities used throughout the paper: the max/min duration ratio ``µ``,
the span, and the total time–space demand ``Σ s(r)·|I(r)|``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .intervals import Interval, span as _span

__all__ = ["Item", "ItemList", "validate_items"]


@dataclass(frozen=True)
class Item:
    """A job to be packed: size plus active interval ``[arrival, departure)``.

    Parameters
    ----------
    item_id:
        Stable identifier, unique within an instance.
    size:
        Resource demand ``s(r)``, in ``(0, capacity]`` (bins have unit
        capacity throughout the paper).
    arrival, departure:
        Endpoints of the active interval ``I(r)``; ``departure`` must be
        strictly greater than ``arrival``.
    """

    item_id: int
    size: float
    arrival: float
    departure: float

    def __post_init__(self) -> None:
        if not (self.size > 0.0):
            raise ValueError(f"item {self.item_id}: size must be positive, got {self.size}")
        if math.isnan(self.arrival) or math.isnan(self.departure):
            raise ValueError(f"item {self.item_id}: NaN endpoint")
        if not (self.departure > self.arrival):
            raise ValueError(
                f"item {self.item_id}: departure ({self.departure}) must be after "
                f"arrival ({self.arrival})"
            )

    @property
    def interval(self) -> Interval:
        """The active interval ``I(r) = [arrival, departure)``."""
        return Interval(self.arrival, self.departure)

    @property
    def duration(self) -> float:
        """``|I(r)|``, the item duration."""
        return self.departure - self.arrival

    @property
    def time_space_demand(self) -> float:
        """``s(r) · |I(r)|`` — the item's time–space demand (Prop. 1)."""
        return self.size * self.duration

    def active_at(self, t: float) -> bool:
        """Whether the item is active at time ``t`` (half-open interval)."""
        return self.arrival <= t < self.departure


def validate_items(items: Sequence[Item], capacity: float = 1.0) -> None:
    """Validate an instance: unique ids and sizes within bin capacity.

    Raises ``ValueError`` on the first violation.  Sizes equal to the
    capacity are allowed (such an item occupies a bin exclusively).
    """
    seen: set[int] = set()
    for it in items:
        if it.item_id in seen:
            raise ValueError(f"duplicate item_id {it.item_id}")
        seen.add(it.item_id)
        if it.size > capacity + 1e-12:
            raise ValueError(
                f"item {it.item_id}: size {it.size} exceeds bin capacity {capacity}"
            )


class ItemList:
    """An immutable instance of the MinUsageTime DBP problem.

    Wraps a sequence of :class:`Item` and exposes the aggregate statistics
    the paper defines in Section III: ``µ``, ``span(R)``,
    ``s(R) = Σ s(r)``, and the total time–space demand.

    Iteration order is the order given at construction (which is *not*
    required to be arrival order; the packing driver sorts events itself).
    """

    def __init__(self, items: Iterable[Item], capacity: float = 1.0):
        self._items: tuple[Item, ...] = tuple(items)
        self.capacity = float(capacity)
        validate_items(self._items, self.capacity)

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    def __getitem__(self, idx: int) -> Item:
        return self._items[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ItemList(n={len(self._items)}, capacity={self.capacity})"

    # -- aggregate statistics ----------------------------------------------
    @property
    def items(self) -> tuple[Item, ...]:
        return self._items

    @property
    def min_duration(self) -> float:
        """Minimum item duration; the paper normalises this to 1."""
        if not self._items:
            raise ValueError("empty item list has no durations")
        return min(it.duration for it in self._items)

    @property
    def max_duration(self) -> float:
        if not self._items:
            raise ValueError("empty item list has no durations")
        return max(it.duration for it in self._items)

    @property
    def mu(self) -> float:
        """``µ = max duration / min duration`` (Section IV)."""
        return self.max_duration / self.min_duration

    @property
    def total_size(self) -> float:
        """``s(R) = Σ_{r∈R} s(r)``."""
        return sum(it.size for it in self._items)

    @property
    def span(self) -> float:
        """``span(R)`` — measure of time with ≥1 active item (Fig. 1)."""
        return _span(it.interval for it in self._items)

    @property
    def time_space_demand(self) -> float:
        """``Σ_r s(r)·|I(r)|`` — lower bound ingredient of Prop. 1."""
        return sum(it.time_space_demand for it in self._items)

    @property
    def packing_period(self) -> Interval:
        """``∪_r I(r)``'s hull: first arrival to last departure."""
        if not self._items:
            return Interval(0.0, 0.0)
        return Interval(
            min(it.arrival for it in self._items),
            max(it.departure for it in self._items),
        )

    def active_at(self, t: float) -> list[Item]:
        """All items active at time ``t``."""
        return [it for it in self._items if it.active_at(t)]

    def event_times(self) -> list[float]:
        """Sorted distinct arrival/departure times of the instance."""
        times = {it.arrival for it in self._items}
        times.update(it.departure for it in self._items)
        return sorted(times)

    def normalized(self) -> "ItemList":
        """A copy rescaled in time so the minimum duration is 1.

        The paper assumes (w.l.o.g., Section IV) that the minimum item
        duration is 1 and the maximum is µ.  Competitive ratios are
        invariant under this rescaling.
        """
        scale = 1.0 / self.min_duration
        t0 = self.packing_period.left
        return ItemList(
            (
                Item(
                    it.item_id,
                    it.size,
                    (it.arrival - t0) * scale,
                    (it.departure - t0) * scale,
                )
                for it in self._items
            ),
            self.capacity,
        )
