"""Mutable packing state shared by the driver and the algorithms.

Two classes live here:

- :class:`BasePackingState` — the resource-agnostic bin-lifecycle
  implementation: the open set (a dict keyed by bin index, so closing is
  O(1) and iteration order is opening order), the item→bin map, index
  activation, and the generic ``place``/``depart``/``migrate`` mutations
  written against the resource protocol (``bin.level`` / ``item.size`` may be a
  float or a tuple — see ``docs/ARCHITECTURE.md``).  The vector engine's
  :class:`~repro.multidim.state.VectorPackingState` runs on these
  generic mutations directly.
- :class:`PackingState` — the scalar (1-D) state.  It inherits the
  lifecycle and views from the base and *overrides* ``place``/``depart``
  with flattened float-specialised bodies (no accounting indirection),
  because the scalar engine is the throughput baseline every PR is
  measured against.  The overrides are behaviourally identical to the
  generic versions; the differential tests pin both engines.

:class:`PackingState` is the *only* view of the world an online algorithm
gets: the currently open bins (in opening order) and their levels.  It
deliberately exposes no departure times — the online model of the paper
is that an item's departure time is unknown until it happens.

Two execution paths coexist, selected by the ``indexed`` flag:

- **indexed** (default): a :class:`~repro.core.ffindex.FirstFitIndex`
  segment tree is maintained alongside the open set, so the Any-Fit
  selection queries (:meth:`first_fit_bin`, :meth:`best_fit_bin`,
  :meth:`worst_fit_bin`, :meth:`last_fit_bin`) cost O(log n) per
  arrival and closing a bin costs O(log n).  The tree is activated
  *adaptively*: below :data:`INDEX_THRESHOLD` simultaneously open bins
  a C-level linear scan is faster than Python tree updates, so the
  state runs on the scans until the open set first crosses the
  threshold, then builds the index in one O(n) pass and maintains it
  for the rest of the run.
- **reference** (``indexed=False``): the linear scans, always.  The
  indexed queries are constructed to reproduce the scans' float
  comparisons bit-for-bit; ``tests/core/test_differential.py`` pins the
  equivalence on random and adversarial instances.

Either way the state keeps a running :attr:`total_level` so streaming
consumers never re-sum all bins per event.
"""

from __future__ import annotations

from typing import Optional

from .bins import Bin, CAPACITY_EPS
from .ffindex import FirstFitIndex
from .items import Item

__all__ = ["BasePackingState", "PackingState", "INDEX_THRESHOLD"]

#: Open-bin count at which an indexed state switches from linear scans
#: to the segment tree.  Below this the per-event tree maintenance costs
#: more than it saves; above it the O(log n) queries win (see
#: docs/PERFORMANCE.md for the crossover measurements).  Shared by the
#: scalar and vector engines.
INDEX_THRESHOLD = 128

#: Best Fit keeps scanning until far more bins are open: its tree query
#: explores a max/feasibility "skyline" whose node count blows up on
#: exactly the level distributions Best Fit creates (many bins clustered
#: near full), so the measured crossover is ~1e3 bins, not ~1e2.
_BEST_FIT_TREE_MIN = 1024


class BasePackingState:
    """Resource-agnostic open/closed-bin bookkeeping for one run.

    Bins are indexed ``0, 1, 2, ...`` in the temporal order of their
    opening, matching the paper's convention ``U_1^- <= U_2^- <= ...``.
    Subclasses bind the resource type by providing:

    - :meth:`_new_bin` — allocate the next bin (scalar or vector);
    - :meth:`_make_index` — a fresh first-fit index over that resource
      (or ``None`` to disable indexing entirely);
    - :meth:`_account` — fold a bin's level change into the running
      :attr:`total_level`;
    - :meth:`_reset_total` — snap the running total back to exact zero
      when the last bin closes (float residue hygiene).
    """

    def __init__(self, indexed: bool = True):
        self.now: float = 0.0
        #: all bins ever opened, by index
        self.bins: list = []
        #: currently open bins keyed by index; insertion order == opening
        #: order == increasing index, and deletion preserves it, so the
        #: dict doubles as a sorted open set with O(1) removal.
        self._open: dict = {}
        #: item_id -> bin index
        self.item_bin: dict[int, int] = {}
        #: whether the O(log n) first-fit index may be used; the tree
        #: itself is built lazily once the open set reaches
        #: INDEX_THRESHOLD bins (see _activate_index)
        self.indexed = bool(indexed)
        self._index = None

    # -- resource bindings (subclass responsibility) --------------------------
    def _new_bin(self):
        """Allocate the next bin and register it in the open set."""
        raise NotImplementedError

    def _make_index(self):
        """A fresh (empty) first-fit index for this resource type."""
        raise NotImplementedError

    def _account(self, before, after) -> None:
        """Fold one bin's level change into the running total."""
        raise NotImplementedError

    def _reset_total(self) -> None:
        """Snap the running total to exact zero (no bins open)."""
        raise NotImplementedError

    # -- read-only views used by algorithms ----------------------------------
    def open_bins(self) -> list:
        """Currently open bins in opening (index) order.

        First Fit scans exactly this order: "the bin which was opened
        earliest" among these bins.
        """
        return list(self._open.values())

    @property
    def num_open(self) -> int:
        return len(self._open)

    @property
    def num_bins_used(self) -> int:
        """Total number of bins opened so far."""
        return len(self.bins)

    def bin_of(self, item_id: int):
        """The bin an item was placed in (open or closed)."""
        return self.bins[self.item_bin[item_id]]

    # -- mutations (driver only) ----------------------------------------------
    def _activate_index(self) -> None:
        """Build the first-fit index over the current open set, one O(n) pass.

        ``self._open`` iterates in increasing bin index (insertion order
        survives deletions), which is exactly the slot order the index
        requires.  Once activated the index is maintained for the rest
        of the run — the open set shrinking again cannot desync it.
        """
        index = self._make_index()
        for b in self._open.values():
            index.append(b.index, b.level)
        self._index = index

    def open_new_bin(self):
        """Open a fresh empty bin with the next index."""
        b = self._new_bin()
        if self._index is not None:
            self._index.append(b.index)
        elif self.indexed and len(self._open) >= INDEX_THRESHOLD:
            self._activate_index()
        return b

    def place(self, item, target):
        """Place an arriving item into ``target`` (or a new bin if None)."""
        fresh = target is None
        if fresh:
            target = self._new_bin()
        elif target.closed_at is not None:
            raise ValueError(f"cannot place into closed bin {target.index}")
        before = target.level
        target.place(item, self.now)
        after = target.level
        self._account(before, after)
        index = self._index
        if index is not None:
            if fresh:
                # register the bin at its post-placement level: one
                # O(log n) bubble instead of an append + set_level pair
                index.append(target.index, after)
            else:
                index.set_level(target.index, after)
        elif self.indexed and len(self._open) >= INDEX_THRESHOLD:
            self._activate_index()
        self.item_bin[item.item_id] = target.index
        return target

    def depart(self, item):
        """Process an item departure; closes the bin if it empties."""
        b = self.bins[self.item_bin[item.item_id]]
        before = b.level
        b.remove(item, self.now)
        after = b.level
        self._account(before, after)
        if b.is_closed:
            del self._open[b.index]
            if self._index is not None:
                self._index.close(b.index)
            if not self._open:
                self._reset_total()
        elif self._index is not None:
            self._index.set_level(b.index, after)
        return b

    def migrate(self, item, target):
        """Move a placed, still-active item into ``target``; returns its source.

        The third first-class mutation next to :meth:`place` and
        :meth:`depart`: remove from the source bin (closing it if the
        item was its last occupant) and re-place into an already-open
        ``target`` at the current time.  The running total, the item→bin
        map and the first-fit index all stay exact — the index sees only
        ``set_level``/``close`` lanes, never ``append``, because a
        migration can shrink the open set but never grow it (moving to a
        *new* bin is just :meth:`place`, which First Fit already does
        better).  Consequently no activation check is needed either.

        Validation of the *choice* (target open, feasible, distinct from
        the source) lives in the driver, mirroring arrivals; this method
        keeps the same cheap backstops as :meth:`place`.
        """
        if target.closed_at is not None:
            raise ValueError(f"cannot migrate into closed bin {target.index}")
        src = self.bins[self.item_bin[item.item_id]]
        if src is target:
            raise ValueError(
                f"cannot migrate item {item.item_id} into its own bin {src.index}"
            )
        before = src.level
        src.remove(item, self.now)
        self._account(before, src.level)
        before = target.level
        target.place(item, self.now)
        self._account(before, target.level)
        self.item_bin[item.item_id] = target.index
        if src.is_closed:
            del self._open[src.index]
            if self._index is not None:
                self._index.close(src.index)
        elif self._index is not None:
            self._index.set_level(src.index, src.level)
        if self._index is not None:
            self._index.set_level(target.index, target.level)
        return src


class PackingState(BasePackingState):
    """The scalar (1-D float resource) packing state.

    The ``place``/``depart`` overrides below flatten the base class's
    generic mutations for the hot path: accounting is a single in-line
    float add and the index is the scalar
    :class:`~repro.core.ffindex.FirstFitIndex`.
    """

    def __init__(self, capacity: float = 1.0, indexed: bool = True):
        super().__init__(indexed=indexed)
        self.capacity = float(capacity)
        #: running sum of open-bin levels (incremental accounting)
        self.total_level: float = 0.0
        self._index: Optional[FirstFitIndex] = None
        # the exact right-hand side every feasibility check compares
        # against; precomputed once so scan and index agree bit-for-bit
        self._cap_bound: float = self.capacity + CAPACITY_EPS

    # -- resource bindings ----------------------------------------------------
    def _new_bin(self) -> Bin:
        """Allocate the next bin without registering it in the index yet."""
        b = Bin(index=len(self.bins), capacity=self.capacity)
        self.bins.append(b)
        self._open[b.index] = b
        return b

    def _make_index(self) -> FirstFitIndex:
        return FirstFitIndex()

    def _account(self, before: float, after: float) -> None:
        self.total_level += after - before

    def _reset_total(self) -> None:
        self.total_level = 0.0  # snap float residue to exact zero

    # -- read-only views used by algorithms ----------------------------------
    def open_bins_fitting(self, size: float) -> list[Bin]:
        """Open bins that can accommodate an item of ``size``, index order."""
        bound = self._cap_bound
        return [b for b in self._open.values() if b.level + size <= bound]

    # -- O(log n) Any-Fit selection queries -----------------------------------
    def first_fit_bin(self, size: float) -> Optional[Bin]:
        """Earliest-opened open bin that fits ``size`` (First Fit)."""
        if self._index is not None:
            idx = self._index.first_fit(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                return b
        return None

    def last_fit_bin(self, size: float) -> Optional[Bin]:
        """Latest-opened open bin that fits ``size`` (Last Fit)."""
        if self._index is not None:
            idx = self._index.last_fit(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        found = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                found = b
        return found

    def best_fit_bin(self, size: float) -> Optional[Bin]:
        """Fullest feasible open bin, ties to the earliest-opened."""
        if self._index is not None and len(self._open) >= _BEST_FIT_TREE_MIN:
            idx = self._index.max_feasible(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        best = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                if best is None or b.level > best.level:
                    best = b
        return best

    def worst_fit_bin(self, size: float) -> Optional[Bin]:
        """Emptiest feasible open bin, ties to the earliest-opened."""
        if self._index is not None:
            idx = self._index.min_level(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        worst = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                if worst is None or b.level < worst.level:
                    worst = b
        return worst

    def bin_of(self, item_id: int) -> Bin:
        """The bin an item was placed in (open or closed)."""
        return self.bins[self.item_bin[item_id]]

    # -- mutations (driver only; flattened scalar hot path) -------------------
    def place(self, item: Item, target: Optional[Bin]) -> Bin:
        """Place an arriving item into ``target`` (or a new bin if None)."""
        fresh = target is None
        if fresh:
            target = self._new_bin()
        elif target.closed_at is not None:
            raise ValueError(f"cannot place into closed bin {target.index}")
        before = target.level
        target.place(item, self.now)
        self.total_level += target.level - before
        index = self._index
        if index is not None:
            if fresh:
                # register the bin at its post-placement level: one
                # O(log n) bubble instead of an append + set_level pair
                index.append(target.index, target.level)
            else:
                index.set_level(target.index, target.level)
        elif self.indexed and len(self._open) >= INDEX_THRESHOLD:
            self._activate_index()
        self.item_bin[item.item_id] = target.index
        return target

    def depart(self, item: Item) -> Bin:
        """Process an item departure; closes the bin if it empties."""
        b = self.bin_of(item.item_id)
        before = b.level
        b.remove(item, self.now)
        self.total_level += b.level - before
        if b.is_closed:
            del self._open[b.index]
            if self._index is not None:
                self._index.close(b.index)
            if not self._open:
                self.total_level = 0.0  # snap float residue to exact zero
        elif self._index is not None:
            self._index.set_level(b.index, b.level)
        return b

    def migrate(self, item: Item, target: Bin) -> Bin:
        """Move a still-active item into ``target`` (flattened scalar body)."""
        if target.closed_at is not None:
            raise ValueError(f"cannot migrate into closed bin {target.index}")
        src = self.bins[self.item_bin[item.item_id]]
        if src is target:
            raise ValueError(
                f"cannot migrate item {item.item_id} into its own bin {src.index}"
            )
        before = src.level
        src.remove(item, self.now)
        self.total_level += src.level - before
        before = target.level
        target.place(item, self.now)
        self.total_level += target.level - before
        self.item_bin[item.item_id] = target.index
        index = self._index
        if src.is_closed:
            del self._open[src.index]
            if index is not None:
                index.close(src.index)
        elif index is not None:
            index.set_level(src.index, src.level)
        if index is not None:
            index.set_level(target.index, target.level)
        return src
