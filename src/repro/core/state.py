"""Mutable packing state shared by the driver and the algorithms.

:class:`PackingState` is the *only* view of the world an online algorithm
gets: the currently open bins (in opening order) and their levels.  It
deliberately exposes no departure times — the online model of the paper
is that an item's departure time is unknown until it happens.

Two execution paths coexist, selected by the ``indexed`` flag:

- **indexed** (default): a :class:`~repro.core.ffindex.FirstFitIndex`
  segment tree is maintained alongside the open set, so the Any-Fit
  selection queries (:meth:`first_fit_bin`, :meth:`best_fit_bin`,
  :meth:`worst_fit_bin`, :meth:`last_fit_bin`) cost O(log n) per
  arrival and closing a bin costs O(log n).  The tree is activated
  *adaptively*: below :data:`INDEX_THRESHOLD` simultaneously open bins
  a C-level linear scan is faster than Python tree updates, so the
  state runs on the scans until the open set first crosses the
  threshold, then builds the index in one O(n) pass and maintains it
  for the rest of the run.
- **reference** (``indexed=False``): the linear scans, always.  The
  indexed queries are constructed to reproduce the scans' float
  comparisons bit-for-bit; ``tests/core/test_differential.py`` pins the
  equivalence on random and adversarial instances.

Either way the state keeps a running :attr:`total_level` so streaming
consumers never re-sum all bins per event.
"""

from __future__ import annotations

from typing import Optional

from .bins import Bin, CAPACITY_EPS
from .ffindex import FirstFitIndex
from .items import Item

__all__ = ["PackingState", "INDEX_THRESHOLD"]

#: Open-bin count at which an indexed state switches from linear scans
#: to the segment tree.  Below this the per-event tree maintenance costs
#: more than it saves; above it the O(log n) queries win (see
#: docs/PERFORMANCE.md for the crossover measurements).
INDEX_THRESHOLD = 128

#: Best Fit keeps scanning until far more bins are open: its tree query
#: explores a max/feasibility "skyline" whose node count blows up on
#: exactly the level distributions Best Fit creates (many bins clustered
#: near full), so the measured crossover is ~1e3 bins, not ~1e2.
_BEST_FIT_TREE_MIN = 1024


class PackingState:
    """Open bins, closed bins, and item→bin bookkeeping for one run.

    Bins are indexed ``0, 1, 2, ...`` in the temporal order of their
    opening, matching the paper's convention ``U_1^- <= U_2^- <= ...``.
    """

    def __init__(self, capacity: float = 1.0, indexed: bool = True):
        self.capacity = float(capacity)
        self.now: float = 0.0
        #: all bins ever opened, by index
        self.bins: list[Bin] = []
        #: currently open bins keyed by index; insertion order == opening
        #: order == increasing index, and deletion preserves it, so the
        #: dict doubles as a sorted open set with O(1) removal.
        self._open: dict[int, Bin] = {}
        #: item_id -> bin index
        self.item_bin: dict[int, int] = {}
        #: running sum of open-bin levels (incremental accounting)
        self.total_level: float = 0.0
        #: whether the O(log n) first-fit index may be used; the tree
        #: itself is built lazily once the open set reaches
        #: INDEX_THRESHOLD bins (see _activate_index)
        self.indexed = bool(indexed)
        self._index: Optional[FirstFitIndex] = None
        # the exact right-hand side every feasibility check compares
        # against; precomputed once so scan and index agree bit-for-bit
        self._cap_bound: float = self.capacity + CAPACITY_EPS

    # -- read-only views used by algorithms ----------------------------------
    def open_bins(self) -> list[Bin]:
        """Currently open bins in opening (index) order.

        First Fit scans exactly this order: "the bin which was opened
        earliest" among those that fit.
        """
        return list(self._open.values())

    def open_bins_fitting(self, size: float) -> list[Bin]:
        """Open bins that can accommodate an item of ``size``, index order."""
        bound = self._cap_bound
        return [b for b in self._open.values() if b.level + size <= bound]

    # -- O(log n) Any-Fit selection queries -----------------------------------
    def first_fit_bin(self, size: float) -> Optional[Bin]:
        """Earliest-opened open bin that fits ``size`` (First Fit)."""
        if self._index is not None:
            idx = self._index.first_fit(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                return b
        return None

    def last_fit_bin(self, size: float) -> Optional[Bin]:
        """Latest-opened open bin that fits ``size`` (Last Fit)."""
        if self._index is not None:
            idx = self._index.last_fit(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        found = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                found = b
        return found

    def best_fit_bin(self, size: float) -> Optional[Bin]:
        """Fullest feasible open bin, ties to the earliest-opened."""
        if self._index is not None and len(self._open) >= _BEST_FIT_TREE_MIN:
            idx = self._index.max_feasible(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        best = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                if best is None or b.level > best.level:
                    best = b
        return best

    def worst_fit_bin(self, size: float) -> Optional[Bin]:
        """Emptiest feasible open bin, ties to the earliest-opened."""
        if self._index is not None:
            idx = self._index.min_level(size, self._cap_bound)
            return None if idx is None else self.bins[idx]
        worst = None
        for b in self._open.values():
            if b.level + size <= self._cap_bound:
                if worst is None or b.level < worst.level:
                    worst = b
        return worst

    @property
    def num_open(self) -> int:
        return len(self._open)

    @property
    def num_bins_used(self) -> int:
        """Total number of bins opened so far."""
        return len(self.bins)

    def bin_of(self, item_id: int) -> Bin:
        """The bin an item was placed in (open or closed)."""
        return self.bins[self.item_bin[item_id]]

    # -- mutations (driver only) ----------------------------------------------
    def _new_bin(self) -> Bin:
        """Allocate the next bin without registering it in the index yet."""
        b = Bin(index=len(self.bins), capacity=self.capacity)
        self.bins.append(b)
        self._open[b.index] = b
        return b

    def _activate_index(self) -> None:
        """Build the segment tree over the current open set, one O(n) pass.

        ``self._open`` iterates in increasing bin index (insertion order
        survives deletions), which is exactly the slot order the index
        requires.  Once activated the index is maintained for the rest
        of the run — the open set shrinking again cannot desync it.
        """
        index = FirstFitIndex()
        for b in self._open.values():
            index.append(b.index, b.level)
        self._index = index

    def open_new_bin(self) -> Bin:
        """Open a fresh empty bin with the next index."""
        b = self._new_bin()
        if self._index is not None:
            self._index.append(b.index)
        elif self.indexed and len(self._open) >= INDEX_THRESHOLD:
            self._activate_index()
        return b

    def place(self, item: Item, target: Optional[Bin]) -> Bin:
        """Place an arriving item into ``target`` (or a new bin if None)."""
        fresh = target is None
        if fresh:
            target = self._new_bin()
        elif target.closed_at is not None:
            raise ValueError(f"cannot place into closed bin {target.index}")
        before = target.level
        target.place(item, self.now)
        self.total_level += target.level - before
        index = self._index
        if index is not None:
            if fresh:
                # register the bin at its post-placement level: one
                # O(log n) bubble instead of an append + set_level pair
                index.append(target.index, target.level)
            else:
                index.set_level(target.index, target.level)
        elif self.indexed and len(self._open) >= INDEX_THRESHOLD:
            self._activate_index()
        self.item_bin[item.item_id] = target.index
        return target

    def depart(self, item: Item) -> Bin:
        """Process an item departure; closes the bin if it empties."""
        b = self.bin_of(item.item_id)
        before = b.level
        b.remove(item, self.now)
        self.total_level += b.level - before
        if b.is_closed:
            del self._open[b.index]
            if self._index is not None:
                self._index.close(b.index)
            if not self._open:
                self.total_level = 0.0  # snap float residue to exact zero
        elif self._index is not None:
            self._index.set_level(b.index, b.level)
        return b
