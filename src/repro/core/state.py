"""Mutable packing state shared by the driver and the algorithms.

:class:`PackingState` is the *only* view of the world an online algorithm
gets: the currently open bins (in opening order) and their levels.  It
deliberately exposes no departure times — the online model of the paper
is that an item's departure time is unknown until it happens.
"""

from __future__ import annotations

from typing import Optional

from .bins import Bin
from .items import Item

__all__ = ["PackingState"]


class PackingState:
    """Open bins, closed bins, and item→bin bookkeeping for one run.

    Bins are indexed ``0, 1, 2, ...`` in the temporal order of their
    opening, matching the paper's convention ``U_1^- <= U_2^- <= ...``.
    """

    def __init__(self, capacity: float = 1.0):
        self.capacity = float(capacity)
        self.now: float = 0.0
        #: all bins ever opened, by index
        self.bins: list[Bin] = []
        #: indices of currently open bins, in increasing (opening) order
        self._open_indices: list[int] = []
        #: item_id -> bin index
        self.item_bin: dict[int, int] = {}

    # -- read-only views used by algorithms ----------------------------------
    def open_bins(self) -> list[Bin]:
        """Currently open bins in opening (index) order.

        First Fit scans exactly this order: "the bin which was opened
        earliest" among those that fit.
        """
        return [self.bins[i] for i in self._open_indices]

    def open_bins_fitting(self, size: float) -> list[Bin]:
        """Open bins that can accommodate an item of ``size``, index order."""
        return [b for b in self.open_bins() if b.level + size <= b.capacity + 1e-9]

    @property
    def num_open(self) -> int:
        return len(self._open_indices)

    @property
    def num_bins_used(self) -> int:
        """Total number of bins opened so far."""
        return len(self.bins)

    def bin_of(self, item_id: int) -> Bin:
        """The bin an item was placed in (open or closed)."""
        return self.bins[self.item_bin[item_id]]

    # -- mutations (driver only) ----------------------------------------------
    def open_new_bin(self) -> Bin:
        """Open a fresh empty bin with the next index."""
        b = Bin(index=len(self.bins), capacity=self.capacity)
        self.bins.append(b)
        self._open_indices.append(b.index)
        return b

    def place(self, item: Item, target: Optional[Bin]) -> Bin:
        """Place an arriving item into ``target`` (or a new bin if None)."""
        if target is None:
            target = self.open_new_bin()
        elif not target.is_open and target.opened_at is not None:
            raise ValueError(f"cannot place into closed bin {target.index}")
        target.place(item, self.now)
        self.item_bin[item.item_id] = target.index
        return target

    def depart(self, item: Item) -> Bin:
        """Process an item departure; closes the bin if it empties."""
        b = self.bin_of(item.item_id)
        b.remove(item, self.now)
        if b.is_closed:
            self._open_indices.remove(b.index)
        return b
