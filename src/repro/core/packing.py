"""The online packing driver.

:func:`run_packing` replays an instance's event sequence through an
online algorithm and returns a :class:`~repro.core.result.PackingResult`.
The driver — not the algorithm — owns correctness: it validates every
placement against bin capacity, reveals departures only when they occur,
and closes bins exactly when their last item departs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..algorithms.base import PackingAlgorithm

from .events import Event, EventKind, event_tuples
from .items import Item, ItemList
from .result import PackingResult
from .state import PackingState

__all__ = ["run_packing", "PackingObserver"]

#: Observer callback signature: ``(event, state)`` after each event is
#: applied.  Used by metrics collection and the cloud cost accountant.
PackingObserver = Callable[[Event, PackingState], None]


def run_packing(
    items: ItemList | Sequence[Item] | Iterable[Item],
    algorithm: "PackingAlgorithm",
    capacity: float = 1.0,
    observers: Sequence[PackingObserver] = (),
    indexed: bool = True,
) -> PackingResult:
    """Pack ``items`` online with ``algorithm`` and return the result.

    Parameters
    ----------
    items:
        The instance.  A plain iterable is wrapped into an
        :class:`~repro.core.items.ItemList` (validating sizes/ids).
    algorithm:
        The placement policy.  It is ``reset()`` before the run.
    capacity:
        Bin capacity (the paper uses 1.0 w.l.o.g.).
    observers:
        Callbacks invoked after every applied event.
    indexed:
        Maintain the O(log n) first-fit index (default).  ``False``
        selects the reference linear scans; both paths must produce
        identical packings (pinned by the differential tests).

    Notes
    -----
    Simultaneous events are ordered departures-first (half-open
    intervals), then by instance order — see
    :mod:`repro.core.events`.
    """
    if not isinstance(items, ItemList):
        items = ItemList(items, capacity=capacity)
    elif abs(items.capacity - capacity) > 1e-12:
        raise ValueError(
            f"capacity mismatch: ItemList built with {items.capacity}, "
            f"run requested {capacity}"
        )

    algorithm.reset()
    state = PackingState(capacity=capacity, indexed=indexed)

    clairvoyant = getattr(algorithm, "clairvoyant", False)
    choose_bin = (
        algorithm.choose_bin_clairvoyant if clairvoyant else algorithm.choose_bin
    )
    # most algorithms keep no per-placement state; skip the two no-op
    # callback calls per event unless the subclass actually overrides
    from ..algorithms.base import PackingAlgorithm as _Base

    cls = type(algorithm)
    on_placed = None if cls.on_placed is _Base.on_placed else algorithm.on_placed
    on_departed = (
        None if cls.on_departed is _Base.on_departed else algorithm.on_departed
    )
    place = state.place
    depart = state.depart

    for time, kind, seq, item in event_tuples(items):
        state.now = time
        if kind:  # EventKind.ARRIVE
            # clairvoyant policies (known-departure model) receive the
            # full item; see repro.algorithms.clairvoyant
            target = choose_bin(state, item if clairvoyant else item.size)
            if target is not None:
                if not target.is_open:
                    raise RuntimeError(
                        f"{algorithm.name} chose closed bin {target.index}"
                    )
                if not target.fits(item):
                    raise RuntimeError(
                        f"{algorithm.name} chose bin {target.index} at level "
                        f"{target.level} for item of size {item.size}"
                    )
            placed = place(item, target)
            if on_placed is not None:
                on_placed(state, placed, item.size)
        else:
            source = depart(item)
            if on_departed is not None:
                on_departed(state, source)
        if observers:
            event = Event(time, EventKind(kind), seq, item)
            for obs in observers:
                obs(event, state)

    assert state.num_open == 0, "all bins must be closed after the last departure"
    return PackingResult(
        items=items,
        bins=tuple(state.bins),
        algorithm_name=algorithm.name,
        item_bin=dict(state.item_bin),
    )
