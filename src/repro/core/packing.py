"""The scalar online packing entry point.

:func:`run_packing` replays an instance's event sequence through an
online algorithm and returns a :class:`~repro.core.result.PackingResult`.
The event loop itself lives in :mod:`repro.core.driver` — the single,
resource-agnostic driver shared with the vector engine
(:func:`repro.multidim.packing.run_vector_packing`).  The driver — not
the algorithm — owns correctness: it validates every placement against
bin capacity, reveals departures only when they occur, and closes bins
exactly when their last item departs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..algorithms.base import PackingAlgorithm

from .driver import Observer, run_events
from .items import Item, ItemList
from .result import PackingResult
from .state import PackingState

__all__ = ["run_packing", "PackingObserver"]

#: Observer callback signature: ``(event, state)`` after each event is
#: applied.  Used by metrics collection and the cloud cost accountant.
#: (Alias of :data:`repro.core.driver.Observer` — observers written
#: against the shared state surface work on both engines.)
PackingObserver = Observer


def run_packing(
    items: ItemList | Sequence[Item] | Iterable[Item],
    algorithm: "PackingAlgorithm",
    capacity: float = 1.0,
    observers: Sequence[PackingObserver] = (),
    indexed: bool = True,
) -> PackingResult:
    """Pack ``items`` online with ``algorithm`` and return the result.

    Parameters
    ----------
    items:
        The instance.  A plain iterable is wrapped into an
        :class:`~repro.core.items.ItemList` (validating sizes/ids).
    algorithm:
        The placement policy.  It is ``reset()`` before the run.
    capacity:
        Bin capacity (the paper uses 1.0 w.l.o.g.).
    observers:
        Callbacks invoked after every applied event.
    indexed:
        Maintain the O(log n) first-fit index (default).  ``False``
        selects the reference linear scans; both paths must produce
        identical packings (pinned by the differential tests).

    Notes
    -----
    Simultaneous events are ordered departures-first (half-open
    intervals), then by instance order — see
    :mod:`repro.core.events`.
    """
    if not isinstance(items, ItemList):
        items = ItemList(items, capacity=capacity)
    elif abs(items.capacity - capacity) > 1e-12:
        raise ValueError(
            f"capacity mismatch: ItemList built with {items.capacity}, "
            f"run requested {capacity}"
        )

    # deferred import: algorithms.base imports core.state (cycle guard)
    from ..algorithms.base import PackingAlgorithm as _Base

    state = PackingState(capacity=capacity, indexed=indexed)
    run_events(items, algorithm, state, observers, hook_base=_Base)
    return PackingResult(
        items=items,
        bins=tuple(state.bins),
        algorithm_name=algorithm.name,
        item_bin=dict(state.item_bin),
    )
