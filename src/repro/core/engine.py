"""Step-wise simulation engine with pluggable statistics collectors.

``run_packing`` is a batch driver; :func:`simulate` exposes the same
event replay as a generator of :class:`Snapshot` objects so callers can
watch the system evolve (dashboards, autoscaling logic, early stopping).
Collectors accumulate time-series without the caller writing observer
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..algorithms.base import PackingAlgorithm

from .events import Event, EventKind, event_sequence
from .items import ItemList
from .state import PackingState

__all__ = [
    "Snapshot",
    "simulate",
    "Collector",
    "OpenBinsCollector",
    "UtilizationCollector",
    "PlacementLogCollector",
]


@dataclass(frozen=True)
class Snapshot:
    """System state right after one event was applied."""

    time: float
    event: Event
    num_open_bins: int
    num_bins_used: int
    total_level: float

    @property
    def utilization(self) -> float:
        """Mean level across open bins (0 when none)."""
        if self.num_open_bins == 0:
            return 0.0
        return self.total_level / self.num_open_bins


def simulate(
    items: ItemList, algorithm: "PackingAlgorithm", indexed: bool = True
) -> Iterator[Snapshot]:
    """Yield a :class:`Snapshot` after every applied event.

    The generator drives the same logic as
    :func:`repro.core.packing.run_packing`; exhausting it leaves all
    bins closed.  (For the final `PackingResult`, use ``run_packing`` —
    this API is for streaming consumers.)  Snapshots read the state's
    incrementally maintained :attr:`~PackingState.total_level`, so each
    one is O(1) instead of a re-sum over all open bins.
    """
    algorithm.reset()
    state = PackingState(capacity=items.capacity, indexed=indexed)
    clairvoyant = getattr(algorithm, "clairvoyant", False)
    for event in event_sequence(items):
        state.now = event.time
        if event.kind is EventKind.ARRIVE:
            if clairvoyant:
                target = algorithm.choose_bin_clairvoyant(state, event.item)
            else:
                target = algorithm.choose_bin(state, event.item.size)
            placed = state.place(event.item, target)
            algorithm.on_placed(state, placed, event.item.size)
        else:
            source = state.depart(event.item)
            algorithm.on_departed(state, source)
        yield Snapshot(
            time=event.time,
            event=event,
            num_open_bins=state.num_open,
            num_bins_used=state.num_bins_used,
            total_level=state.total_level,
        )


class Collector:
    """Base collector: feed it snapshots, read a summary."""

    def observe(self, snap: Snapshot) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def consume(self, snapshots: Iterator[Snapshot]) -> None:
        """Drain a snapshot stream through this collector."""
        for snap in snapshots:
            self.observe(snap)


class OpenBinsCollector(Collector):
    """Time series of the open-bin count + its peak."""

    def __init__(self) -> None:
        self.series: list[tuple[float, int]] = []
        self.peak = 0

    def observe(self, snap: Snapshot) -> None:
        self.series.append((snap.time, snap.num_open_bins))
        self.peak = max(self.peak, snap.num_open_bins)


class UtilizationCollector(Collector):
    """Time-weighted mean utilization across open bins."""

    def __init__(self) -> None:
        self._last_time: Optional[float] = None
        self._last_util = 0.0
        self._weighted = 0.0
        self._horizon = 0.0

    def observe(self, snap: Snapshot) -> None:
        if self._last_time is not None:
            dt = snap.time - self._last_time
            self._weighted += dt * self._last_util
            self._horizon += dt
        self._last_time = snap.time
        self._last_util = snap.utilization

    @property
    def mean_utilization(self) -> float:
        if self._horizon <= 0:
            return 0.0
        return self._weighted / self._horizon


class PlacementLogCollector(Collector):
    """Ordered log of (time, item_id, bin_count_after) placements."""

    def __init__(self) -> None:
        self.log: list[tuple[float, int, int]] = []

    def observe(self, snap: Snapshot) -> None:
        if snap.event.kind is EventKind.ARRIVE:
            self.log.append((snap.time, snap.event.item.item_id, snap.num_bins_used))
