"""Core substrate: intervals, items, events, bins, and the packing driver."""

from .bins import Bin, CAPACITY_EPS
from .driver import EventStepper, bind_policy, run_events
from .engine import (
    Collector,
    OpenBinsCollector,
    PlacementLogCollector,
    Snapshot,
    UtilizationCollector,
    simulate,
)
from .events import Event, EventKind, EventQueue, event_sequence
from .intervals import (
    EMPTY_INTERVAL,
    Interval,
    coverage_at,
    intervals_intersect,
    merge_intervals,
    span,
    total_length,
    union_length,
)
from .items import Item, ItemList, validate_items
from .metrics import (
    aggregate_level_timeline,
    open_bins_timeline,
    time_weighted_average,
    utilization_timeline,
)
from .packing import run_packing
from .result import PackingResult
from .state import BasePackingState, PackingState

__all__ = [
    "BasePackingState",
    "Bin",
    "Collector",
    "OpenBinsCollector",
    "PlacementLogCollector",
    "Snapshot",
    "UtilizationCollector",
    "simulate",
    "CAPACITY_EPS",
    "EMPTY_INTERVAL",
    "Event",
    "EventKind",
    "EventQueue",
    "Interval",
    "Item",
    "ItemList",
    "PackingResult",
    "PackingState",
    "aggregate_level_timeline",
    "coverage_at",
    "event_sequence",
    "intervals_intersect",
    "merge_intervals",
    "open_bins_timeline",
    "run_events",
    "bind_policy",
    "EventStepper",
    "run_packing",
    "span",
    "time_weighted_average",
    "total_length",
    "union_length",
    "utilization_timeline",
    "validate_items",
]
