"""Event model for the online packing simulation.

The simulation is event-driven: the only times at which the system state
changes are item arrivals and departures.  This module turns an item list
into a deterministic, totally ordered event sequence.  It is resource
agnostic: any item with ``arrival``/``departure`` attributes streams
through it, so the scalar :class:`~repro.core.items.ItemList` and the
vector :class:`~repro.multidim.items.VectorItemList` share the exact
same ordering (and the same C-speed tuple sort).

Ordering rules (these are load-bearing and pinned by tests):

1. Events are ordered by time.
2. At equal times, **departures precede arrivals**.  Intervals are
   half-open, so an item with ``I = [a, b)`` is *not* active at ``b``;
   space it occupied is available to an item arriving at exactly ``b``.
3. Ties within a kind are broken by the instance order of the items
   (arrival order is the order in which the online algorithm sees
   simultaneous arrivals — the adversary controls it via list order).
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from .items import Item, ItemList

__all__ = ["EventKind", "Event", "event_sequence", "event_tuples", "EventQueue"]


class EventKind(enum.IntEnum):
    """Kind of a simulation event.

    ``DEPART < ARRIVE`` so that tuple comparison implements the
    departures-first rule at equal timestamps.
    """

    DEPART = 0
    ARRIVE = 1


@dataclass(frozen=True, order=True)
class Event:
    """A single arrival or departure.

    Sort key is ``(time, kind, seq)``: time-ordered, departures first at
    ties, then instance order.
    """

    time: float
    kind: EventKind
    seq: int
    item: Item = field(compare=False)


def _sort_key(event: Event) -> tuple[float, int, int]:
    return (event.time, event.kind, event.seq)


def event_sequence(items: ItemList | Sequence[Item]) -> list[Event]:
    """The full, sorted event sequence for an instance."""
    events: list[Event] = []
    append = events.append
    for seq, it in enumerate(items):
        append(Event(it.arrival, EventKind.ARRIVE, seq, it))
        append(Event(it.departure, EventKind.DEPART, seq, it))
    # sorting by an extracted key tuple avoids one generated-__lt__
    # Python call per comparison; the order is identical to Event's
    # (time, kind, seq) dataclass ordering
    events.sort(key=_sort_key)
    return events


def event_tuples(
    items: ItemList | Sequence[Item] | Iterable,
) -> list[tuple[float, int, int, Item]]:
    """The event sequence as plain ``(time, kind, seq, item)`` tuples.

    Same events in the same total order as :func:`event_sequence`
    (``kind`` is the :class:`EventKind` integer value, so the tuple sort
    applies rules 1–3 directly; ``seq`` is unique, so ``item`` is never
    compared).  This is the unified packing driver's hot path — scalar
    and vector items alike: it skips one object construction per event
    and sorts with C-speed tuple comparisons.
    """
    events: list[tuple[float, int, int, Item]] = []
    append = events.append
    for seq, it in enumerate(items):
        append((it.arrival, 1, seq, it))
        append((it.departure, 0, seq, it))
    events.sort()
    return events


class EventQueue:
    """A mutable priority queue of events.

    Supports dynamic insertion, which the cloud layer uses for
    closed-loop workloads where an item's departure is only scheduled
    when it is placed.
    """

    def __init__(self, events: Iterable[Event] = ()):  # noqa: D401
        self._heap: list[Event] = list(events)
        heapq.heapify(self._heap)

    def push(self, event: Event) -> None:
        heapq.heappush(self._heap, event)

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek(self) -> Event:
        return self._heap[0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain(self) -> Iterator[Event]:
        """Pop events in order until empty."""
        while self._heap:
            yield heapq.heappop(self._heap)
