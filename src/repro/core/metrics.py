"""Derived metrics over packing results.

These are the observables the experiment harness reports: bin-level time
series, utilization profiles, and the number-of-open-bins process (the
standard-DBP objective, for cross-model comparison).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .intervals import Interval
from .result import PackingResult

__all__ = [
    "open_bins_timeline",
    "aggregate_level_timeline",
    "utilization_timeline",
    "time_weighted_average",
]


def open_bins_timeline(result: PackingResult) -> list[tuple[float, int]]:
    """Piecewise-constant count of open bins: ``(time, count from time)``.

    The last entry has count 0 (after the final closing).
    """
    events: list[tuple[float, int]] = []
    for b in result.bins:
        u = b.usage_period
        events.append((u.left, 1))
        events.append((u.right, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    timeline: list[tuple[float, int]] = []
    count = 0
    for t, delta in events:
        count += delta
        if timeline and timeline[-1][0] == t:
            timeline[-1] = (t, count)
        else:
            timeline.append((t, count))
    return timeline


def aggregate_level_timeline(result: PackingResult) -> list[tuple[float, float]]:
    """Piecewise-constant total active size across all bins.

    Equivalently the instantaneous total demand of active items; used by
    the fractional lower bound on OPT.
    """
    events: list[tuple[float, float]] = []
    for it in result.items:
        events.append((it.arrival, it.size))
        events.append((it.departure, -it.size))
    events.sort(key=lambda e: (e[0], e[1]))
    timeline: list[tuple[float, float]] = []
    level = 0.0
    for t, delta in events:
        level += delta
        if timeline and timeline[-1][0] == t:
            timeline[-1] = (t, level)
        else:
            timeline.append((t, level))
    if timeline:
        t_end, lvl_end = timeline[-1]
        if abs(lvl_end) < 1e-9:
            timeline[-1] = (t_end, 0.0)
    return timeline


def utilization_timeline(result: PackingResult) -> list[tuple[float, float]]:
    """Instantaneous utilization: total active size / open bins.

    Zero whenever no bin is open.
    """
    open_tl = open_bins_timeline(result)
    level_tl = aggregate_level_timeline(result)
    times = sorted({t for t, _ in open_tl} | {t for t, _ in level_tl})

    def value_at(tl: Sequence[tuple[float, float]], t: float) -> float:
        v = 0.0
        for time, val in tl:
            if time > t:
                break
            v = val
        return v

    out: list[tuple[float, float]] = []
    for t in times:
        n_open = value_at(open_tl, t)
        level = value_at(level_tl, t)
        out.append((t, (level / n_open) if n_open > 0 else 0.0))
    return out


def time_weighted_average(timeline: Sequence[tuple[float, float]]) -> float:
    """Time-weighted mean of a piecewise-constant timeline.

    The last segment has zero width (nothing is defined after the final
    event), so it contributes nothing.
    """
    if len(timeline) < 2:
        return 0.0
    ts = np.array([t for t, _ in timeline])
    vs = np.array([v for _, v in timeline])
    widths = np.diff(ts)
    total = widths.sum()
    if total <= 0:
        return 0.0
    return float(np.dot(vs[:-1], widths) / total)
