"""Results of a packing run."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from .bins import Bin
from .intervals import Interval
from .items import ItemList

__all__ = ["PackingResult"]


@dataclass(frozen=True)
class PackingResult:
    """Everything produced by one online packing run.

    Attributes
    ----------
    items:
        The instance that was packed.
    bins:
        All bins used, indexed in opening order; every bin is closed by
        the end of the run (all items eventually depart).
    algorithm_name:
        Name of the policy that produced the packing.
    item_bin:
        Mapping ``item_id -> bin index``.
    """

    items: ItemList
    bins: tuple[Bin, ...]
    algorithm_name: str
    item_bin: dict[int, int]

    @cached_property
    def total_usage_time(self) -> float:
        """The objective: ``Σ_k |U_k|`` — total bin usage time."""
        return sum(b.usage_time for b in self.bins)

    @cached_property
    def usage_periods(self) -> tuple[Interval, ...]:
        """``U_1, ..., U_m`` in bin-index order."""
        return tuple(b.usage_period for b in self.bins)

    @property
    def num_bins(self) -> int:
        """Total number of bins opened over the run."""
        return len(self.bins)

    @cached_property
    def max_concurrent_bins(self) -> int:
        """Maximum number of simultaneously open bins.

        This is the objective of *standard* DBP (Coffman–Garey–Johnson);
        reported for cross-model comparison.
        """
        events: list[tuple[float, int]] = []
        for b in self.bins:
            u = b.usage_period
            events.append((u.left, 1))
            events.append((u.right, -1))
        # closings before openings at equal times (half-open periods)
        events.sort(key=lambda e: (e[0], e[1]))
        cur = best = 0
        for _, delta in events:
            cur += delta
            best = max(best, cur)
        return best

    @cached_property
    def average_utilization(self) -> float:
        """Time–space demand divided by total bin usage time.

        Equals 1 only if every used bin is completely full whenever open.
        """
        total = self.total_usage_time
        if total == 0:
            return 0.0
        return self.items.time_space_demand / total

    def bin_of(self, item_id: int) -> Bin:
        """The bin a given item was packed into."""
        return self.bins[self.item_bin[item_id]]

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.algorithm_name}: {self.num_bins} bins, "
            f"total usage time {self.total_usage_time:.4f}, "
            f"max concurrent {self.max_concurrent_bins}, "
            f"avg utilization {self.average_utilization:.3f}"
        )
