"""The first-fit index: a segment tree over bin slots keyed by level.

The index accelerates Any-Fit candidate selection from O(open bins) to
O(log open bins) per arrival.  Each leaf is one *slot* holding an open
bin; slots are ordered by bin opening index, so "leftmost feasible leaf"
is exactly "earliest-opened feasible bin".  Every internal node stores
the minimum and maximum level over the open bins in its subtree
(``+inf`` / ``-inf`` for closed or empty slots, so they never look
feasible).

Feasibility of a bin at level ``l`` for an item of ``size`` is the exact
predicate the reference scan applies per bin::

    l + size <= bound        # bound = capacity + CAPACITY_EPS

Floating-point addition is monotone non-decreasing, so if a subtree's
*minimum* level fails the predicate, every bin in the subtree fails it —
the descent prunes whole subtrees while reproducing the scan's per-bin
comparisons bit-for-bit.  The queries implemented here therefore return
*exactly* the bin the corresponding reference scan would return:

- :meth:`first_fit` — leftmost (earliest-opened) feasible bin.
- :meth:`last_fit` — rightmost (latest-opened) feasible bin.
- :meth:`min_level` — leftmost bin attaining the minimum open level
  (Worst Fit: the minimum-level bin is feasible whenever any bin is,
  because the predicate is monotone in the level).
- :meth:`max_feasible` — leftmost bin attaining the maximum feasible
  level (Best Fit).

Closed bins leave dead leaves behind; when the tree fills up it is
rebuilt compacting the live slots (relative order preserved), so the
height stays O(log open bins) — not O(log bins-ever-opened) — and the
amortised cost of every update is O(log open bins).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

__all__ = ["FirstFitIndex", "VectorFirstFitIndex"]

_INF = math.inf
_MIN_LEAVES = 64


class FirstFitIndex:
    """Dynamic min/max segment tree over open-bin levels.

    All public methods take/return *bin indices* (the permanent opening
    order); the slot mapping is internal.
    """

    __slots__ = ("_leaves", "_mn", "_mx", "_n", "_slot_bin", "_bin_slot", "_track_max")

    def __init__(self) -> None:
        self._alloc(_MIN_LEAVES)
        #: slot -> bin index (-1 for dead slots), increasing over live slots
        self._slot_bin: list[int] = []
        #: bin index -> slot, live bins only
        self._bin_slot: dict[int, int] = {}
        #: slots handed out since the last rebuild (live + dead)
        self._n = 0
        #: the max aggregate is only needed by Best Fit; it is built on
        #: the first max_feasible() call and maintained from then on, so
        #: the other policies pay for the min tree alone
        self._track_max = False

    def _alloc(self, leaves: int) -> None:
        self._leaves = leaves
        self._mn = [_INF] * (2 * leaves)
        self._mx = [-_INF] * (2 * leaves)

    def __len__(self) -> int:
        return len(self._bin_slot)

    # -- updates -------------------------------------------------------------
    def _rebuild(self) -> None:
        """Compact live slots (order preserved) into a right-sized tree."""
        leaves, mn = self._leaves, self._mn
        pairs = [
            (b, mn[leaves + s]) for s, b in enumerate(self._slot_bin) if b >= 0
        ]
        live = len(pairs)
        size = _MIN_LEAVES
        while size < 2 * (live + 1):
            size *= 2
        self._alloc(size)
        self._slot_bin = [b for b, _ in pairs]
        self._bin_slot = {b: s for s, (b, _) in enumerate(pairs)}
        self._n = live
        mn = self._mn
        for s, (_, lvl) in enumerate(pairs):
            mn[size + s] = lvl
        for i in range(size - 1, 0, -1):
            left, right = 2 * i, 2 * i + 1
            mn[i] = mn[left] if mn[left] <= mn[right] else mn[right]
        if self._track_max:
            self._track_max = False
            self._ensure_max()

    def _ensure_max(self) -> None:
        """Build the max aggregate from the min leaves (idempotent)."""
        if self._track_max:
            return
        self._track_max = True
        mn, mx, leaves = self._mn, self._mx, self._leaves
        for s in range(leaves):
            v = mn[leaves + s]
            mx[leaves + s] = -_INF if v == _INF else v
        for i in range(leaves - 1, 0, -1):
            left, right = 2 * i, 2 * i + 1
            mx[i] = mx[left] if mx[left] >= mx[right] else mx[right]

    def _update(self, slot: int, lo: float, hi: float) -> None:
        mn = self._mn
        i = self._leaves + slot
        mn[i] = lo
        if self._track_max:
            mx = self._mx
            mx[i] = hi
            i >>= 1
            while i:
                j = i + i
                lo = mn[j]
                v = mn[j + 1]
                if v < lo:
                    lo = v
                hi = mx[j]
                v = mx[j + 1]
                if v > hi:
                    hi = v
                if mn[i] == lo and mx[i] == hi:
                    return
                mn[i] = lo
                mx[i] = hi
                i >>= 1
        else:
            i >>= 1
            while i:
                j = i + i
                lo = mn[j]
                v = mn[j + 1]
                if v < lo:
                    lo = v
                if mn[i] == lo:
                    return
                mn[i] = lo
                i >>= 1

    def append(self, bin_index: int, level: float = 0.0) -> None:
        """Register a newly opened bin at ``level``.

        Bin indices must arrive in increasing order (they do: a new bin
        always gets the next opening index).
        """
        if self._n >= self._leaves:
            self._rebuild()  # collects dead slots; grows only if needed
        slot = self._n
        self._n += 1
        self._slot_bin.append(bin_index)
        self._bin_slot[bin_index] = slot
        self._update(slot, level, level)

    def has(self, bin_index: int) -> bool:
        """Whether ``bin_index`` is currently registered (open)."""
        return bin_index in self._bin_slot

    def set_level(self, bin_index: int, level: float) -> None:
        """Record the new level of an open bin."""
        self._update(self._bin_slot[bin_index], level, level)

    def close(self, bin_index: int) -> None:
        """Retire a bin: a closed bin is never a candidate again."""
        slot = self._bin_slot.pop(bin_index)
        self._slot_bin[slot] = -1
        self._update(slot, _INF, -_INF)

    # -- queries -------------------------------------------------------------
    def first_fit(self, size: float, bound: float) -> Optional[int]:
        """Earliest-opened bin whose level satisfies ``level + size <= bound``."""
        mn = self._mn
        if mn[1] + size > bound:
            return None
        node, leaves = 1, self._leaves
        while node < leaves:
            node *= 2
            if mn[node] + size > bound:
                node += 1
        return self._slot_bin[node - leaves]

    def last_fit(self, size: float, bound: float) -> Optional[int]:
        """Latest-opened bin whose level satisfies ``level + size <= bound``."""
        mn = self._mn
        if mn[1] + size > bound:
            return None
        node, leaves = 1, self._leaves
        while node < leaves:
            node = 2 * node + 1
            if mn[node] + size > bound:
                node -= 1
        return self._slot_bin[node - leaves]

    def min_level(self, size: float, bound: float) -> Optional[int]:
        """Earliest-opened bin attaining the global minimum open level.

        Returns ``None`` when no open bin is feasible.  By monotonicity
        the minimum-level bin is feasible iff *any* open bin is, so this
        is the Worst Fit choice among the feasible candidates.
        """
        mn = self._mn
        target = mn[1]
        if target + size > bound:
            return None
        node, leaves = 1, self._leaves
        while node < leaves:
            node *= 2
            if mn[node] != target:
                node += 1
        return self._slot_bin[node - leaves]

    def max_feasible(self, size: float, bound: float) -> Optional[int]:
        """Earliest-opened bin attaining the maximum feasible level (Best Fit).

        Branch-and-bound DFS, left child first so equal levels resolve to
        the earliest-opened bin exactly as the reference scan's strict
        ``>`` replacement does.  A subtree is cut when every bin in it is
        infeasible (its *min* fails the predicate) or when its *max*
        cannot strictly beat the best feasible level found so far.  Once
        a subtree's max is itself feasible the whole subtree resolves to
        that max without descending further.
        """
        mn = self._mn
        if mn[1] + size > bound:
            return None
        if not self._track_max:
            self._ensure_max()
        mx = self._mx
        best = -_INF
        best_node = 1
        stack = [1]
        pop = stack.pop
        push = stack.append
        while stack:
            node = pop()
            m = mx[node]
            if m <= best or mn[node] + size > bound:
                continue
            if m + size <= bound:
                best = m
                best_node = node
                continue
            node += node
            push(node + 1)
            push(node)
        return self._slot_bin[self._leftmost_at_max(best_node)]

    def _leftmost_at_max(self, node: int) -> int:
        mx, leaves = self._mx, self._leaves
        target = mx[node]
        while node < leaves:
            node *= 2
            if mx[node] != target:
                node += 1
        return node - leaves


class VectorFirstFitIndex:
    """The vector-aware fast path: per-dimension min trees over bin slots.

    Same slot discipline as :class:`FirstFitIndex` (slots in bin-opening
    order, dead slots left behind on close, compacting rebuild when the
    tree fills), but every node stores one minimum level *per resource
    dimension*.  Vector feasibility is a conjunction over dimensions::

        level[d] + size[d] <= bound[d]   for every d

    so a subtree can be **pruned** whenever some dimension's subtree
    minimum already fails its component predicate — every bin below
    fails in that dimension.  The converse does not hold: per-dimension
    minima of a subtree may come from *different* bins, so an interior
    node passing all component checks is inconclusive.  The query
    therefore descends (leftmost child first) instead of committing, and
    resolves at the leaves, where the stored minima are the exact levels
    of a single bin and the componentwise check *is* the reference
    scan's ``VectorBin`` feasibility test — that leaf-level fallback is
    what makes the query exact (bit-identical to the scan, pinned by
    ``tests/multidim/test_unified_differential.py``).

    Worst case the descent is O(open bins) — an adversary can make every
    interior bound inconclusive — but on real workloads the prune fires
    on most subtrees and the query behaves like the scalar descent.
    """

    __slots__ = ("_dims", "_leaves", "_mn", "_n", "_slot_bin", "_bin_slot")

    def __init__(self, dimensions: int) -> None:
        if dimensions < 1:
            raise ValueError("need at least one dimension")
        self._dims = dimensions
        self._alloc(_MIN_LEAVES)
        #: slot -> bin index (-1 for dead slots), increasing over live slots
        self._slot_bin: list[int] = []
        #: bin index -> slot, live bins only
        self._bin_slot: dict[int, int] = {}
        #: slots handed out since the last rebuild (live + dead)
        self._n = 0

    def _alloc(self, leaves: int) -> None:
        self._leaves = leaves
        #: one min-aggregate array per dimension (list-of-lists beats an
        #: array of tuples: updates touch one dimension's lane at a time
        #: and the query reads lanes independently)
        self._mn = [[_INF] * (2 * leaves) for _ in range(self._dims)]

    def __len__(self) -> int:
        return len(self._bin_slot)

    # -- updates -------------------------------------------------------------
    def _rebuild(self) -> None:
        """Compact live slots (order preserved) into a right-sized tree."""
        leaves = self._leaves
        old_mn = self._mn
        pairs = [
            (b, [old_mn[d][leaves + s] for d in range(self._dims)])
            for s, b in enumerate(self._slot_bin)
            if b >= 0
        ]
        live = len(pairs)
        size = _MIN_LEAVES
        while size < 2 * (live + 1):
            size *= 2
        self._alloc(size)
        self._slot_bin = [b for b, _ in pairs]
        self._bin_slot = {b: s for s, (b, _) in enumerate(pairs)}
        self._n = live
        for d in range(self._dims):
            mn = self._mn[d]
            for s, (_, levels) in enumerate(pairs):
                mn[size + s] = levels[d]
            for i in range(size - 1, 0, -1):
                left, right = 2 * i, 2 * i + 1
                mn[i] = mn[left] if mn[left] <= mn[right] else mn[right]

    def _update(self, slot: int, levels: Sequence[float]) -> None:
        leaves = self._leaves
        for d in range(self._dims):
            mn = self._mn[d]
            i = leaves + slot
            mn[i] = levels[d]
            i >>= 1
            while i:
                j = i + i
                lo = mn[j]
                v = mn[j + 1]
                if v < lo:
                    lo = v
                if mn[i] == lo:
                    break
                mn[i] = lo
                i >>= 1

    def append(self, bin_index: int, levels: Optional[Sequence[float]] = None) -> None:
        """Register a newly opened bin at ``levels`` (default: empty).

        Bin indices must arrive in increasing order (they do: a new bin
        always gets the next opening index).
        """
        if self._n >= self._leaves:
            self._rebuild()  # collects dead slots; grows only if needed
        slot = self._n
        self._n += 1
        self._slot_bin.append(bin_index)
        self._bin_slot[bin_index] = slot
        self._update(slot, levels if levels is not None else (0.0,) * self._dims)

    def has(self, bin_index: int) -> bool:
        """Whether ``bin_index`` is currently registered (open)."""
        return bin_index in self._bin_slot

    def set_level(self, bin_index: int, levels: Sequence[float]) -> None:
        """Record the new level vector of an open bin."""
        self._update(self._bin_slot[bin_index], levels)

    def close(self, bin_index: int) -> None:
        """Retire a bin: a closed bin is never a candidate again."""
        slot = self._bin_slot.pop(bin_index)
        self._slot_bin[slot] = -1
        self._update(slot, (_INF,) * self._dims)

    # -- queries -------------------------------------------------------------
    def first_fit(
        self, sizes: Sequence[float], bounds: Sequence[float]
    ) -> Optional[int]:
        """Earliest-opened bin feasible in every dimension, or ``None``.

        Depth-first, left child first, pruning any subtree whose minimum
        fails a component predicate; inconclusive interior nodes fall
        through to the exact leaf check (see the class docstring).
        """
        mn = self._mn
        leaves = self._leaves
        dims = range(self._dims)
        stack = [1]
        pop = stack.pop
        push = stack.append
        while stack:
            node = pop()
            feasible = True
            for d in dims:
                if mn[d][node] + sizes[d] > bounds[d]:
                    feasible = False
                    break
            if not feasible:
                continue
            if node >= leaves:
                # leaf minima are the actual levels of one bin, so the
                # componentwise check above was exact; dead slots carry
                # +inf levels and never reach here
                return self._slot_bin[node - leaves]
            node += node
            push(node + 1)
            push(node)
        return None
