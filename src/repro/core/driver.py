"""The resource-agnostic event driver shared by every packing engine.

:func:`run_events` is the *single* event loop of the repository: the
scalar 1-D engine (:func:`repro.core.packing.run_packing`) and the
multi-dimensional engine (:func:`repro.multidim.packing.run_vector_packing`)
are thin wrappers that build an instance-specific state and hand it to
this loop.  The driver — not the algorithm and not the wrapper — owns
correctness: it streams events in the canonical order (time-ordered,
departures before arrivals at ties, instance order within a kind, as
C-sorted tuples), validates every placement against the chosen bin's
lifecycle and capacity, reveals departures only when they occur, and
dispatches observers after each applied event.

The loop is generic over the *resource type* via a small structural
protocol (see ``docs/ARCHITECTURE.md``):

- ``item.size`` — the demand revealed to the policy (a ``float`` for the
  scalar engine, a tuple of floats for the vector engine).  Departure
  times are never revealed.
- ``bin.index`` / ``bin.is_open`` / ``bin.fits(item)`` / ``bin.level``
  — lifecycle and feasibility on the bin side.
- ``state.place`` / ``state.depart`` / ``state.num_open`` — the
  mutations, implemented once in
  :class:`~repro.core.state.BasePackingState`.

Because both engines raise from the same lines below, infeasible and
closed-bin placements produce *identical* error messages in the scalar
and vector engines — pinned by ``tests/multidim/test_guardrails.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from .events import Event, EventKind, event_tuples

__all__ = ["run_events", "bind_policy", "check_move", "EventStepper", "Observer"]

#: Observer callback signature: ``(event, state)`` after each event is
#: applied.  The state is the engine-specific packing state (scalar or
#: vector); observers that only read the shared surface
#: (``num_open``, ``num_bins_used``, ``total_level``, ``now``) work
#: unchanged on both engines.
Observer = Callable[[Event, object], None]


def bind_policy(algorithm, hook_base: type | None):
    """Reset ``algorithm`` and resolve its per-event callables.

    Returns ``(clairvoyant, choose_bin, on_placed, on_departed,
    plan_migrations)`` where the two hooks are ``None`` when the
    concrete class inherits them unchanged from ``hook_base`` (so
    callers can skip the two no-op calls per event), and
    ``plan_migrations`` is ``None`` unless the policy is
    migration-capable (exposes a ``plan_migrations(state)`` returning
    ``(item, target)`` moves to apply after the event).  Shared by the
    batch loop (:func:`run_events`) and the incremental stepper
    (:class:`EventStepper`) so both paths make identical skip decisions.
    """
    algorithm.reset()
    clairvoyant = getattr(algorithm, "clairvoyant", False)
    choose_bin = (
        algorithm.choose_bin_clairvoyant if clairvoyant else algorithm.choose_bin
    )
    cls = type(algorithm)
    if hook_base is None:
        on_placed = algorithm.on_placed
        on_departed = algorithm.on_departed
    else:
        on_placed = None if cls.on_placed is hook_base.on_placed else algorithm.on_placed
        on_departed = (
            None if cls.on_departed is hook_base.on_departed else algorithm.on_departed
        )
    plan_migrations = getattr(algorithm, "plan_migrations", None)
    return clairvoyant, choose_bin, on_placed, on_departed, plan_migrations


def check_move(name: str, state, item, target):
    """Validate one planned migration; returns the item's source bin.

    The driver-owned counterpart of the arrival checks in the loop
    bodies below: a migration-capable policy proposes ``(item, target)``
    moves, and the driver — not the policy — verifies that the target is
    a *different*, still-open bin that fits the item before mutating.
    Shared verbatim by :func:`run_events`, :class:`EventStepper` and the
    service defragmenter so every path refuses a bad move with the same
    message (migrations are rare; a helper call per move is fine).
    """
    src = state.bins[state.item_bin[item.item_id]]
    if target is src:
        raise RuntimeError(
            f"{name} migration kept item {item.item_id} in bin {src.index}"
        )
    if not target.is_open:
        raise RuntimeError(f"{name} migration chose closed bin {target.index}")
    if not target.fits(item):
        raise RuntimeError(
            f"{name} migration chose bin {target.index} at level "
            f"{target.level} for item of size {item.size}"
        )
    return src


class EventStepper:
    """One-event-at-a-time interface to the unified driver.

    The streaming service (:mod:`repro.service`) cannot hand the driver
    a materialised item list — jobs are pushed one at a time — so this
    class exposes the loop *body* of :func:`run_events` as two methods,
    :meth:`arrive` and :meth:`depart`.  Feeding the stepper the canonical
    event sequence of an instance must reproduce a batch run bit for
    bit: same placements, same validation, identical error messages,
    same observer dispatch (pinned by
    ``tests/service/test_stream_differential.py``).

    :func:`run_events` keeps its own inlined copy of these bodies — the
    batch loop is the throughput baseline and must not pay a method
    call per event — but both are built on :func:`bind_policy`, and any
    behavioural edit to one must land in the other.

    ``fault_hook`` is the chaos-testing seam: when set (by the fault
    injection harness, :mod:`repro.service.faults`), it is called with
    a point name at the named kill-points of the step —
    ``arrive.pre`` / ``arrive.post`` / ``depart.pre`` / ``depart.post``,
    plus ``migrate.pre`` / ``migrate.post`` around each applied move
    — so crash-recovery tests can kill the engine *inside* an event,
    between the WAL append and the state mutation, or between the
    mutation and the acknowledgement.  ``None`` (the default) costs one
    attribute test per step; the batch loop is untouched.
    """

    #: set to a callable(name) to arm the named kill-points
    fault_hook = None
    #: set to a callable(item, src, target) to observe each applied
    #: migration (the streaming engine counts moves and bills bins that
    #: close by evacuation through this seam)
    migration_hook = None

    def __init__(
        self,
        algorithm,
        state,
        observers: Sequence[Observer] = (),
        hook_base: type | None = None,
    ):
        self.algorithm = algorithm
        self.state = state
        self.observers = tuple(observers)
        (
            self.clairvoyant,
            self._choose_bin,
            self._on_placed,
            self._on_departed,
            self._plan_migrations,
        ) = bind_policy(algorithm, hook_base)

    def arrive(self, time: float, seq: int, item):
        """Apply one arrival; returns the bin the item was placed in."""
        if self.fault_hook is not None:
            self.fault_hook("arrive.pre")
        state = self.state
        state.now = time
        target = self._choose_bin(state, item if self.clairvoyant else item.size)
        if target is not None:
            if not target.is_open:
                raise RuntimeError(
                    f"{self.algorithm.name} chose closed bin {target.index}"
                )
            if not target.fits(item):
                raise RuntimeError(
                    f"{self.algorithm.name} chose bin {target.index} at level "
                    f"{target.level} for item of size {item.size}"
                )
        placed = state.place(item, target)
        if self._on_placed is not None:
            self._on_placed(state, placed, item.size)
        if self._plan_migrations is not None:
            self.apply_migrations(self._plan_migrations(state))
        if self.observers:
            event = Event(time, EventKind.ARRIVE, seq, item)
            for obs in self.observers:
                obs(event, state)
        if self.fault_hook is not None:
            self.fault_hook("arrive.post")
        return placed

    def depart(self, time: float, seq: int, item):
        """Apply one departure; returns the bin the item left (may be closed)."""
        if self.fault_hook is not None:
            self.fault_hook("depart.pre")
        state = self.state
        state.now = time
        source = state.depart(item)
        if self._on_departed is not None:
            self._on_departed(state, source)
        if self._plan_migrations is not None:
            self.apply_migrations(self._plan_migrations(state))
        if self.observers:
            event = Event(time, EventKind.DEPART, seq, item)
            for obs in self.observers:
                obs(event, state)
        if self.fault_hook is not None:
            self.fault_hook("depart.post")
        return source

    def apply_migrations(self, moves) -> int:
        """Apply planned ``(item, target)`` moves; returns how many.

        Every move is validated (:func:`check_move`) and wrapped in its
        own ``migrate.pre`` / ``migrate.post`` kill-points, so a crash
        between two moves of one plan is a recoverable position like any
        other.  Used both for event-coupled migrations (policies with a
        ``plan_migrations``) and by the service's background
        defragmenter, which plans out-of-band but applies through here.
        """
        applied = 0
        state = self.state
        name = self.algorithm.name
        for item, target in moves:
            if self.fault_hook is not None:
                self.fault_hook("migrate.pre")
            src = check_move(name, state, item, target)
            state.migrate(item, target)
            if self.migration_hook is not None:
                self.migration_hook(item, src, target)
            if self.fault_hook is not None:
                self.fault_hook("migrate.post")
            applied += 1
        return applied

    def finish(self) -> None:
        """Assert the terminal invariant of a complete run."""
        assert self.state.num_open == 0, "all bins must be closed after the last departure"


def run_events(
    items: Iterable,
    algorithm,
    state,
    observers: Sequence[Observer] = (),
    hook_base: type | None = None,
) -> None:
    """Replay ``items``'s arrival/departure stream through ``algorithm``.

    Parameters
    ----------
    items:
        Any iterable of items with ``arrival``/``departure`` attributes
        (:class:`~repro.core.items.ItemList`,
        :class:`~repro.multidim.items.VectorItemList`, ...).
    algorithm:
        The placement policy.  It is ``reset()`` before the run and its
        ``choose_bin(state, size)`` is called once per arrival — or
        ``choose_bin_clairvoyant(state, item)`` when the policy declares
        ``clairvoyant = True`` (known-departure reference model).
    state:
        A :class:`~repro.core.state.BasePackingState` subclass instance.
        Mutated in place; read the packing off it afterwards.
    observers:
        Callbacks invoked after every applied event.
    hook_base:
        The algorithm base class whose ``on_placed``/``on_departed`` are
        known no-ops.  Most policies keep no per-placement state, so the
        driver skips the two callback calls per event unless the
        concrete class actually overrides them.  ``None`` always calls.
    """
    clairvoyant, choose_bin, on_placed, on_departed, plan_migrations = bind_policy(
        algorithm, hook_base
    )
    place = state.place
    depart = state.depart

    for time, kind, seq, item in event_tuples(items):
        state.now = time
        if kind:  # EventKind.ARRIVE
            # clairvoyant policies (known-departure model) receive the
            # full item; everyone else sees only the demand
            target = choose_bin(state, item if clairvoyant else item.size)
            if target is not None:
                if not target.is_open:
                    raise RuntimeError(
                        f"{algorithm.name} chose closed bin {target.index}"
                    )
                if not target.fits(item):
                    raise RuntimeError(
                        f"{algorithm.name} chose bin {target.index} at level "
                        f"{target.level} for item of size {item.size}"
                    )
            placed = place(item, target)
            if on_placed is not None:
                on_placed(state, placed, item.size)
        else:
            source = depart(item)
            if on_departed is not None:
                on_departed(state, source)
        if plan_migrations is not None:
            for m_item, m_target in plan_migrations(state):
                check_move(algorithm.name, state, m_item, m_target)
                state.migrate(m_item, m_target)
        if observers:
            event = Event(time, EventKind(kind), seq, item)
            for obs in observers:
                obs(event, state)

    assert state.num_open == 0, "all bins must be closed after the last departure"
