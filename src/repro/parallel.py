"""Process-parallel experiment sharding.

Monte Carlo replications and algorithm × workload grids are
embarrassingly parallel: every shard regenerates its own instance from a
deterministic seed, runs pure computation, and returns a small picklable
result.  :func:`parallel_map` is the one primitive the experiment
modules build on — an *ordered* map over independent tasks that runs

- serially in-process when ``workers`` resolves to one (the default),
  guaranteeing byte-identical behaviour to the historical code path, or
- across a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise,
  with results merged back in task order so the output is independent of
  worker scheduling.

Determinism contract: a task function must be a top-level (picklable)
callable, derive all randomness from seeds carried *in its argument*,
and never mutate shared state.  Under that contract
``parallel_map(fn, tasks, workers=k)`` returns the same list for every
``k`` — the experiment modules keep their historical per-replication
seed formulas, so published numbers do not depend on the worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument to an effective process count.

    ``None``, ``0`` and ``1`` mean serial (run in this process);
    a negative value means one worker per available CPU.
    """
    if workers is None or workers in (0, 1):
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return int(workers)


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``tasks``, optionally across processes, in order.

    Parameters
    ----------
    fn:
        A pure, top-level (picklable) callable.
    tasks:
        The shard arguments.  Materialised up front so the serial and
        parallel paths consume identical task sequences.
    workers:
        See :func:`resolve_workers`.  Serial execution calls ``fn``
        directly in this process — no pickling, no subprocess, exactly
        the pre-parallel behaviour.
    chunksize:
        Passed to ``ProcessPoolExecutor.map``; raise it when tasks are
        tiny relative to the pickling overhead.

    Returns
    -------
    list
        ``[fn(t) for t in tasks]`` — the merge is ordered by task,
        never by completion.
    """
    task_list: Sequence[T] = list(tasks)
    n_workers = min(resolve_workers(workers), len(task_list))
    if n_workers <= 1:
        return [fn(t) for t in task_list]
    with ProcessPoolExecutor(max_workers=n_workers) as ex:
        # Executor.map yields results in submission order regardless of
        # which worker finishes first — the ordered merge is free.
        return list(ex.map(fn, task_list, chunksize=chunksize))
