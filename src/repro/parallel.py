"""Process-parallel experiment sharding.

Monte Carlo replications and algorithm × workload grids are
embarrassingly parallel: every shard regenerates its own instance from a
deterministic seed, runs pure computation, and returns a small picklable
result.  :func:`parallel_map` is the one primitive the experiment
modules build on — an *ordered* map over independent tasks that runs

- serially in-process when ``workers`` resolves to one (the default),
  guaranteeing byte-identical behaviour to the historical code path, or
- across a :class:`~concurrent.futures.ProcessPoolExecutor` otherwise,
  with results merged back in task order so the output is independent of
  worker scheduling.

Determinism contract: a task function must be a top-level (picklable)
callable, derive all randomness from seeds carried *in its argument*,
and never mutate shared state.  Under that contract
``parallel_map(fn, tasks, workers=k)`` returns the same list for every
``k`` — the experiment modules keep their historical per-replication
seed formulas, so published numbers do not depend on the worker count.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, Sequence, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

T = TypeVar("T")
R = TypeVar("R")


class _ShardFailure:
    """Picklable carrier for an exception raised inside a worker."""

    __slots__ = ("index", "task_repr", "exc")

    def __init__(self, index: int, task_repr: str, exc: BaseException):
        self.index = index
        self.task_repr = task_repr
        self.exc = exc


def _task_repr(task: object) -> str:
    try:
        text = repr(task)
    except Exception:  # pragma: no cover - defensive
        text = f"<unreprable {type(task).__name__}>"
    return text if len(text) <= 200 else text[:200] + "…"


def _raise_with_context(index: int, task_repr: str, exc: BaseException) -> None:
    """Re-raise a shard exception annotated with which task failed.

    The original exception type is preserved (callers keep catching
    what the task function raises); the shard index and argument ride
    along as an exception note.
    """
    if hasattr(exc, "add_note"):
        exc.add_note(f"parallel_map: shard {index} failed on task {task_repr}")
    raise exc


class _IndexedCall:
    """Wrap ``fn`` so worker-side failures return a tagged carrier.

    Raising inside the worker would strip everything but the exception
    itself on its way through the pool; returning the carrier lets the
    parent re-raise with the shard index and argument attached.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, pair: tuple[int, T]):
        index, task = pair
        try:
            return self.fn(task)
        except Exception as exc:
            return _ShardFailure(index, _task_repr(task), exc)


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument to an effective process count.

    ``None``, ``0`` and ``1`` mean serial (run in this process);
    a negative value means one worker per available CPU.
    """
    if workers is None or workers in (0, 1):
        return 1
    if workers < 0:
        return max(os.cpu_count() or 1, 1)
    return int(workers)


def parallel_map(
    fn: Callable[[T], R],
    tasks: Iterable[T],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``fn`` over ``tasks``, optionally across processes, in order.

    Parameters
    ----------
    fn:
        A pure, top-level (picklable) callable.
    tasks:
        The shard arguments.  Materialised up front so the serial and
        parallel paths consume identical task sequences.
    workers:
        See :func:`resolve_workers`.  Serial execution calls ``fn``
        directly in this process — no pickling, no subprocess, exactly
        the pre-parallel behaviour.
    chunksize:
        Passed to ``ProcessPoolExecutor.map``; raise it when tasks are
        tiny relative to the pickling overhead.

    Returns
    -------
    list
        ``[fn(t) for t in tasks]`` — the merge is ordered by task,
        never by completion.
    """
    task_list: Sequence[T] = list(tasks)
    n_workers = min(resolve_workers(workers), len(task_list))
    if n_workers <= 1:
        out: list[R] = []
        for index, task in enumerate(task_list):
            try:
                out.append(fn(task))
            except Exception as exc:
                _raise_with_context(index, _task_repr(task), exc)
        return out
    with ProcessPoolExecutor(max_workers=n_workers) as ex:
        # Executor.map yields results in submission order regardless of
        # which worker finishes first — the ordered merge is free.
        results = list(
            ex.map(_IndexedCall(fn), enumerate(task_list), chunksize=chunksize)
        )
    for value in results:
        if isinstance(value, _ShardFailure):
            _raise_with_context(value.index, value.task_repr, value.exc)
    return results
