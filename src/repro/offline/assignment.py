"""Offline non-migratory assignments and their cost model.

The paper's ``OPT_total`` adversary may *repack everything at any
instant* (Section III-C).  Between that adversary and the online
algorithms sits a natural third model from the interval-scheduling
literature the paper relates to (Section II): the **offline
non-migratory** optimum — all intervals are known in advance, items are
partitioned into capacity-feasible groups once, and each group's cost is
the measure of the union of its items' intervals (a server is rented
whenever at least one of its assigned jobs is active; an idle server is
released and re-rented, which is what closing/reopening a bin means).

This module defines the assignment representation, feasibility and cost;
:mod:`repro.offline.solvers` computes optimal and heuristic assignments.

The three models bracket each other instance-wise::

    repacking OPT_total  <=  offline non-migratory OPT  <=  best online ALG

The gaps are the *price of non-migration* and the *price of
online-ness*, measured by experiment X3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.intervals import merge_intervals, union_length
from ..core.items import Item, ItemList

__all__ = [
    "Assignment",
    "group_feasible",
    "group_cost",
    "marginal_cost",
    "max_level",
]

_EPS = 1e-9


def max_level(items: Iterable[Item]) -> float:
    """Peak total size of a set of items over time (sweep line)."""
    events: list[tuple[float, float]] = []
    for it in items:
        events.append((it.arrival, it.size))
        events.append((it.departure, -it.size))
    events.sort(key=lambda e: (e[0], e[1]))  # departures first at ties
    level = peak = 0.0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def group_feasible(items: Sequence[Item], capacity: float = 1.0) -> bool:
    """Whether a group of items can share one server at all times."""
    return max_level(items) <= capacity + _EPS


def group_cost(items: Sequence[Item]) -> float:
    """Cost of one group: measure of the union of its intervals."""
    return union_length(it.interval for it in items)


def marginal_cost(group: Sequence[Item], item: Item) -> float:
    """Cost increase from adding ``item`` to ``group``."""
    base = group_cost(group)
    return union_length(
        [it.interval for it in group] + [item.interval]
    ) - base


@dataclass
class Assignment:
    """A partition of an instance into server groups."""

    items: ItemList
    groups: list[list[Item]]

    def cost(self) -> float:
        """Total renting cost: Σ per-group union lengths."""
        return sum(group_cost(g) for g in self.groups)

    def is_feasible(self) -> bool:
        """All groups capacity-feasible and every item placed once."""
        placed = [it.item_id for g in self.groups for it in g]
        if sorted(placed) != sorted(it.item_id for it in self.items):
            return False
        return all(group_feasible(g, self.items.capacity) for g in self.groups)

    def validate(self) -> None:
        """Raise ``ValueError`` if infeasible (with the reason)."""
        placed = [it.item_id for g in self.groups for it in g]
        if len(placed) != len(set(placed)):
            raise ValueError("an item is assigned to more than one group")
        if set(placed) != {it.item_id for it in self.items}:
            raise ValueError("assignment does not cover the instance")
        for i, g in enumerate(self.groups):
            peak = max_level(g)
            if peak > self.items.capacity + _EPS:
                raise ValueError(
                    f"group {i} peaks at level {peak} > capacity {self.items.capacity}"
                )

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def busy_intervals(self, group_index: int):
        """The disjoint busy intervals of one group (for rendering)."""
        return merge_intervals(it.interval for it in self.groups[group_index])
