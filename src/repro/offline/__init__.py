"""Offline non-migratory model: assignments, exact and heuristic solvers."""

from .busy_time import (
    BusyTimeJob,
    busy_time_lower_bound,
    busy_time_of,
    exact_busy_time,
    greedy_tracking,
    to_capacity_instance,
)
from .assignment import (
    Assignment,
    group_cost,
    group_feasible,
    marginal_cost,
    max_level,
)
from .solvers import exact_offline, greedy_offline, local_search

__all__ = [
    "Assignment",
    "BusyTimeJob",
    "busy_time_lower_bound",
    "busy_time_of",
    "exact_busy_time",
    "greedy_tracking",
    "to_capacity_instance",
    "exact_offline",
    "greedy_offline",
    "group_cost",
    "group_feasible",
    "local_search",
    "marginal_cost",
    "max_level",
]
