"""Interval scheduling with bounded parallelism (MinTotal busy time).

The related-work problem the paper positions itself against
(Section II, citing Flammini et al. and Mertzios et al.): jobs with
*known* intervals must be assigned to machines that can run at most
``g`` jobs concurrently; a machine is busy whenever at least one of its
jobs runs; minimise total busy time.

This is exactly our offline non-migratory model with every job of size
``1/g`` — a correspondence the tests verify — but the busy-time
literature has its own classic algorithm, implemented here:

- :func:`greedy_tracking` — the "first fit by longest job" greedy from
  Flammini et al.: sort jobs by *decreasing length* and put each on the
  first machine with capacity throughout the job's interval; it is
  4-competitive against the busy-time optimum (and 2-competitive for
  proper interval families).
- :func:`busy_time_lower_bound` — ``max(span, total length / g)``, the
  standard LB pair (their "span bound" and "mass bound" — the exact
  analogues of the paper's Propositions 2 and 1).
- :func:`exact_busy_time` — optimal for small instances via the
  capacity-model branch and bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import Interval, union_length
from ..core.items import Item, ItemList
from .assignment import Assignment, group_feasible
from .solvers import exact_offline

__all__ = [
    "BusyTimeJob",
    "greedy_tracking",
    "busy_time_lower_bound",
    "exact_busy_time",
    "to_capacity_instance",
]


@dataclass(frozen=True)
class BusyTimeJob:
    """A unit-demand job with a fixed execution interval."""

    job_id: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if not (self.end > self.start):
            raise ValueError(f"job {self.job_id}: end must be after start")

    @property
    def interval(self) -> Interval:
        return Interval(self.start, self.end)

    @property
    def length(self) -> float:
        return self.end - self.start


def to_capacity_instance(jobs: list[BusyTimeJob], g: int) -> ItemList:
    """The equivalent MinUsageTime instance: every job has size ``1/g``.

    A machine running ≤ g unit jobs is a bin of capacity 1 holding
    size-1/g items; busy time = usage time.
    """
    if g < 1:
        raise ValueError("g must be positive")
    return ItemList(
        Item(j.job_id, 1.0 / g, j.start, j.end) for j in jobs
    )


def busy_time_lower_bound(jobs: list[BusyTimeJob], g: int) -> float:
    """``max(span, Σ lengths / g)`` — the standard busy-time LB."""
    if g < 1:
        raise ValueError("g must be positive")
    if not jobs:
        return 0.0
    span = union_length(j.interval for j in jobs)
    mass = sum(j.length for j in jobs) / g
    return max(span, mass)


def _machine_load_ok(machine: list[BusyTimeJob], candidate: BusyTimeJob, g: int) -> bool:
    """Whether adding ``candidate`` keeps concurrency ≤ g at all times."""
    events: list[tuple[float, int]] = []
    for j in machine + [candidate]:
        events.append((j.start, 1))
        events.append((j.end, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    load = 0
    for _, delta in events:
        load += delta
        if load > g:
            return False
    return True


def greedy_tracking(jobs: list[BusyTimeJob], g: int) -> list[list[BusyTimeJob]]:
    """First Fit by decreasing job length (Flammini et al.'s greedy).

    Returns the machine assignment; its busy time is
    ``Σ_machines |union of the machine's intervals|`` and is within a
    factor 4 of optimal.
    """
    if g < 1:
        raise ValueError("g must be positive")
    machines: list[list[BusyTimeJob]] = []
    for job in sorted(jobs, key=lambda j: -j.length):
        for m in machines:
            if _machine_load_ok(m, job, g):
                m.append(job)
                break
        else:
            machines.append([job])
    return machines


def busy_time_of(machines: list[list[BusyTimeJob]]) -> float:
    """Total busy time of a machine assignment."""
    return sum(union_length(j.interval for j in m) for m in machines)


def exact_busy_time(
    jobs: list[BusyTimeJob], g: int, node_budget: int = 400_000
) -> tuple[float, bool]:
    """Optimal busy time via the capacity-model exact solver.

    Returns ``(busy_time, certified)``.
    """
    items = to_capacity_instance(jobs, g)
    assignment, certified = exact_offline(items, node_budget=node_budget)
    return assignment.cost(), certified
