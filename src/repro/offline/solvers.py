"""Offline non-migratory solvers: exact branch & bound and heuristics.

- :func:`exact_offline` — optimal partition for small instances
  (≈ ≤ 14 items), by assigning items one at a time to existing or new
  groups with cost-based pruning and symmetry breaking.
- :func:`greedy_offline` — duration-descending greedy: each item joins
  the feasible group with the smallest marginal (span-extension) cost,
  opening a new group when extension ≥ its own duration.  The
  longest-first order is the classic device from the busy-time
  scheduling literature (Flammini et al., cited by the paper): long
  jobs define the busy windows, short jobs slot into them.
- :func:`local_search` — first-improvement single-item relocation until
  a local optimum.
"""

from __future__ import annotations

from typing import Optional

from ..core.items import Item, ItemList
from ..core.intervals import union_length
from .assignment import Assignment, group_feasible, marginal_cost

__all__ = ["exact_offline", "greedy_offline", "local_search"]

_EPS = 1e-9


def exact_offline(
    items: ItemList, node_budget: int = 500_000
) -> tuple[Assignment, bool]:
    """Optimal non-migratory assignment by branch and bound.

    Returns ``(assignment, certified)``; ``certified`` is False when the
    node budget ran out (the assignment is then the best found, an
    upper bound).  Items are processed longest-first so strong groups
    form early and pruning bites.
    """
    order = sorted(items, key=lambda it: -it.duration)
    n = len(order)
    best_assignment = greedy_offline(items)
    best_cost = best_assignment.cost()
    nodes = 0
    exhausted = False
    groups: list[list[Item]] = []

    def lower_bound(i: int, cost_so_far: float) -> float:
        """cost so far + the span of the still-unassigned items not
        already covered by existing groups (cheap, admissible)."""
        if i >= n:
            return cost_so_far
        remaining = union_length(it.interval for it in order[i:])
        covered = union_length(
            iv for g in groups for iv in (it.interval for it in g)
        )
        whole = union_length(
            [it.interval for g in groups for it in g]
            + [it.interval for it in order[i:]]
        )
        # new area that must be paid at least once by someone
        return cost_so_far + max(0.0, whole - covered)

    def recurse(i: int, cost_so_far: float) -> None:
        nonlocal best_cost, best_assignment, nodes, exhausted
        if exhausted:
            return
        nodes += 1
        if nodes > node_budget:
            exhausted = True
            return
        if i == n:
            if cost_so_far < best_cost - _EPS:
                best_cost = cost_so_far
                best_assignment = Assignment(
                    items, [list(g) for g in groups if g]
                )
            return
        if lower_bound(i, cost_so_far) >= best_cost - _EPS:
            return
        it = order[i]
        # note: branches with equal marginal cost are NOT symmetric —
        # the groups differ in content and constrain future items
        # differently — so every feasible group must be explored.
        for g in groups:
            if not group_feasible(g + [it], items.capacity):
                continue
            delta = marginal_cost(g, it)
            g.append(it)
            recurse(i + 1, cost_so_far + delta)
            g.pop()
            if exhausted:
                return
        # open a new group (always feasible; costs the item's duration)
        groups.append([it])
        recurse(i + 1, cost_so_far + it.duration)
        groups.pop()

    if n > 0:
        recurse(0, 0.0)
    else:
        best_assignment, best_cost = Assignment(items, []), 0.0
    return best_assignment, not exhausted


def greedy_offline(items: ItemList) -> Assignment:
    """Duration-descending, minimum-extension greedy assignment."""
    order = sorted(items, key=lambda it: -it.duration)
    groups: list[list[Item]] = []
    for it in order:
        best_group: Optional[list[Item]] = None
        best_delta = it.duration  # opening a new group costs this
        for g in groups:
            if not group_feasible(g + [it], items.capacity):
                continue
            delta = marginal_cost(g, it)
            if delta < best_delta - _EPS:
                best_delta = delta
                best_group = g
        if best_group is None:
            groups.append([it])
        else:
            best_group.append(it)
    return Assignment(items, groups)


def local_search(assignment: Assignment, max_rounds: int = 50) -> Assignment:
    """First-improvement single-item relocation to a local optimum.

    Tries moving each item to every other group (or a fresh one was
    never better: removal saves at most the item's contribution, which a
    fresh group charges in full), accepting the first strict
    improvement; stops when a full pass finds none.
    """
    items = assignment.items
    groups = [list(g) for g in assignment.groups]
    for _ in range(max_rounds):
        improved = False
        for gi, g in enumerate(groups):
            for it in list(g):
                rest = [x for x in g if x.item_id != it.item_id]
                save = (
                    union_length(x.interval for x in g)
                    - union_length(x.interval for x in rest)
                )
                if save <= _EPS:
                    continue  # item is free where it is
                for gj, h in enumerate(groups):
                    if gi == gj:
                        continue
                    if not group_feasible(h + [it], items.capacity):
                        continue
                    delta = marginal_cost(h, it)
                    if delta < save - _EPS:
                        g.remove(it)
                        h.append(it)
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            break
    return Assignment(items, [g for g in groups if g])
