"""Seedable scalar distributions for workload generation.

Small, explicit distribution objects (rather than bare callables) so
workload specs can be printed, compared, and recorded in experiment
metadata.  All sampling goes through a ``numpy.random.Generator`` owned
by the caller — no global RNG state anywhere in the library.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "Exponential",
    "Pareto",
    "LogNormal",
    "DiscreteChoice",
    "Clipped",
]


class Distribution(abc.ABC):
    """A one-dimensional distribution with vectorised sampling."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` i.i.d. samples."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic mean (used for load calculations)."""


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution at ``value``."""

    value: float

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.value)

    @property
    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential with the given mean (memoryless session lengths)."""

    mean_value: float

    def __post_init__(self) -> None:
        if self.mean_value <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(self.mean_value, n)

    @property
    def mean(self) -> float:
        return self.mean_value


@dataclass(frozen=True)
class Pareto(Distribution):
    """Pareto (heavy tail) with shape ``alpha`` and scale ``xm > 0``.

    Samples are ``xm · (1 + Pareto(alpha))``, i.e. supported on
    ``[xm, ∞)``.  Mean is finite only for ``alpha > 1``.
    """

    alpha: float
    xm: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.xm <= 0:
            raise ValueError("alpha and xm must be positive")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.xm * (1.0 + rng.pareto(self.alpha, n))

    @property
    def mean(self) -> float:
        if self.alpha <= 1:
            return float("inf")
        return self.alpha * self.xm / (self.alpha - 1.0)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Log-normal with underlying normal parameters ``(mu, sigma)``."""

    mu: float
    sigma: float

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, n)

    @property
    def mean(self) -> float:
        return float(np.exp(self.mu + self.sigma**2 / 2.0))


@dataclass(frozen=True)
class DiscreteChoice(Distribution):
    """Choice among fixed values with optional weights.

    Models e.g. a catalogue of game titles with known GPU shares.
    """

    values: tuple[float, ...]
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("values must be non-empty")
        if self.weights is not None:
            if len(self.weights) != len(self.values):
                raise ValueError("weights length must match values")
            if any(w < 0 for w in self.weights) or sum(self.weights) <= 0:
                raise ValueError("weights must be non-negative with positive sum")

    def _probs(self) -> np.ndarray | None:
        if self.weights is None:
            return None
        w = np.asarray(self.weights, dtype=float)
        return w / w.sum()

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.choice(np.asarray(self.values), size=n, p=self._probs())

    @property
    def mean(self) -> float:
        vals = np.asarray(self.values, dtype=float)
        p = self._probs()
        if p is None:
            return float(vals.mean())
        return float(np.dot(vals, p))


@dataclass(frozen=True)
class Clipped(Distribution):
    """A distribution clipped to ``[low, high]``.

    Used to control the duration ratio µ of generated instances: clip
    durations to ``[d_min, µ·d_min]`` and the instance's realised µ is
    at most the requested one.
    """

    inner: Distribution
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValueError("high must be >= low")

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.clip(self.inner.sample(rng, n), self.low, self.high)

    @property
    def mean(self) -> float:
        # The clipped mean has no general closed form; estimate once with
        # a fixed-seed quadrature draw (deterministic, documented as such).
        rng = np.random.default_rng(123456789)
        return float(self.sample(rng, 20_000).mean())
