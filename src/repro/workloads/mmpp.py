"""Markov-modulated Poisson arrivals (bursty workloads).

Cloud request streams are bursty: quiet periods punctuated by flash
crowds.  The standard model is an MMPP — a continuous-time Markov chain
over "phases", each with its own Poisson arrival rate.  Burstiness is
exactly what stresses MinUsageTime packing: a burst forces many bins
open at once, and the question is how long stragglers keep them open
after the burst passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.items import Item, ItemList
from .distributions import Clipped, Distribution, Exponential, Uniform

__all__ = ["MMPPPhase", "mmpp_workload", "two_phase_bursty"]


@dataclass(frozen=True)
class MMPPPhase:
    """One phase: arrival rate + mean dwell time before switching."""

    name: str
    arrival_rate: float
    mean_dwell: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if self.mean_dwell <= 0:
            raise ValueError("mean_dwell must be positive")


def two_phase_bursty(
    base_rate: float = 1.0, burst_rate: float = 10.0,
    base_dwell: float = 8.0, burst_dwell: float = 1.0,
) -> tuple[MMPPPhase, ...]:
    """The canonical quiet/burst pair of phases."""
    return (
        MMPPPhase("quiet", base_rate, base_dwell),
        MMPPPhase("burst", burst_rate, burst_dwell),
    )


def mmpp_workload(
    horizon: float,
    seed: int,
    phases: tuple[MMPPPhase, ...] | None = None,
    size_dist: Distribution | None = None,
    duration_dist: Distribution | None = None,
    mu_target: float = 8.0,
    capacity: float = 1.0,
) -> ItemList:
    """Jobs over ``[0, horizon)`` with phase-switching arrival rates.

    Phases cycle in order (quiet → burst → quiet → …) with
    exponentially distributed dwell times; arrivals within a phase are
    Poisson at that phase's rate.
    """
    if phases is None:
        phases = two_phase_bursty()
    if not phases:
        raise ValueError("need at least one phase")
    rng = np.random.default_rng(seed)
    size_dist = size_dist or Uniform(0.05, 0.5)
    duration_dist = Clipped(duration_dist or Exponential(3.0), 1.0, mu_target)

    arrivals: list[float] = []
    t = 0.0
    phase_idx = 0
    while t < horizon:
        phase = phases[phase_idx % len(phases)]
        dwell = rng.exponential(phase.mean_dwell)
        end = min(t + dwell, horizon)
        if phase.arrival_rate > 0:
            tt = t
            while True:
                tt += rng.exponential(1.0 / phase.arrival_rate)
                if tt >= end:
                    break
                arrivals.append(tt)
        t = end
        phase_idx += 1

    n = len(arrivals)
    if n == 0:
        return ItemList([], capacity=capacity)
    sizes = np.clip(size_dist.sample(rng, n), 1e-6, capacity)
    durations = duration_dist.sample(rng, n)
    return ItemList(
        (
            Item(i, float(sizes[i]), arrivals[i], arrivals[i] + float(durations[i]))
            for i in range(n)
        ),
        capacity=capacity,
    )
