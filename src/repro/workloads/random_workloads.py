"""Random (stochastic) workload generators.

These produce the "typical case" instances for the comparison
experiments: jobs arriving by a Poisson (or batched) process, with sizes
and durations drawn from configurable distributions.  The duration
distribution is clipped to ``[d_min, µ_target · d_min]`` so the
instance's realised µ never exceeds the requested target — the quantity
Theorem 1's bound is expressed in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.items import Item, ItemList
from .distributions import Clipped, Constant, Distribution, Exponential, Uniform

__all__ = ["RandomWorkload", "poisson_workload", "batch_workload"]


@dataclass(frozen=True)
class RandomWorkload:
    """Specification of a stochastic instance.

    Parameters
    ----------
    n:
        Number of items.
    arrival_rate:
        Poisson arrival rate (items per unit time).
    size_dist:
        Item size distribution; samples are clipped to ``(0, capacity]``.
    duration_dist:
        Duration distribution *before* the µ clip.
    mu_target:
        Durations are clipped to ``[min_duration, mu_target·min_duration]``
        so realised µ ≤ mu_target.
    min_duration:
        Lower clip for durations (the paper's normalised "1").
    capacity:
        Bin capacity.
    """

    n: int
    arrival_rate: float = 1.0
    size_dist: Distribution = Uniform(0.05, 0.6)
    duration_dist: Distribution = Exponential(2.0)
    mu_target: float = 10.0
    min_duration: float = 1.0
    capacity: float = 1.0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("n must be positive")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        if self.mu_target < 1:
            raise ValueError("mu_target must be >= 1")

    def generate(self, seed: int) -> ItemList:
        """Materialise the instance with a fixed seed (reproducible)."""
        rng = np.random.default_rng(seed)
        inter = rng.exponential(1.0 / self.arrival_rate, self.n)
        arrivals = np.cumsum(inter)
        sizes = np.clip(
            self.size_dist.sample(rng, self.n), 1e-6, self.capacity
        )
        dur = Clipped(
            self.duration_dist,
            self.min_duration,
            self.mu_target * self.min_duration,
        ).sample(rng, self.n)
        return ItemList(
            (
                Item(i, float(sizes[i]), float(arrivals[i]), float(arrivals[i] + dur[i]))
                for i in range(self.n)
            ),
            capacity=self.capacity,
        )


def poisson_workload(
    n: int,
    seed: int,
    arrival_rate: float = 1.0,
    mu_target: float = 10.0,
    size_dist: Distribution | None = None,
    duration_dist: Distribution | None = None,
    capacity: float = 1.0,
) -> ItemList:
    """Convenience wrapper: Poisson arrivals with default distributions."""
    spec = RandomWorkload(
        n=n,
        arrival_rate=arrival_rate,
        size_dist=size_dist or Uniform(0.05, 0.6),
        duration_dist=duration_dist or Exponential(2.0),
        mu_target=mu_target,
        capacity=capacity,
    )
    return spec.generate(seed)


def batch_workload(
    n_batches: int,
    batch_size: int,
    seed: int,
    batch_spacing: float = 1.0,
    mu_target: float = 10.0,
    size_dist: Distribution | None = None,
    duration_dist: Distribution | None = None,
    capacity: float = 1.0,
) -> ItemList:
    """Items arriving in simultaneous batches (flash-crowd pattern).

    Simultaneous arrivals exercise the tie-breaking path of the event
    order (instance order) and stress Any Fit algorithms, which must
    spread a batch over several bins at once.
    """
    rng = np.random.default_rng(seed)
    size_dist = size_dist or Uniform(0.05, 0.6)
    duration_dist = duration_dist or Exponential(2.0)
    n = n_batches * batch_size
    sizes = np.clip(size_dist.sample(rng, n), 1e-6, capacity)
    durations = Clipped(duration_dist, 1.0, mu_target).sample(rng, n)
    items = []
    k = 0
    for b in range(n_batches):
        t = b * batch_spacing
        for _ in range(batch_size):
            items.append(Item(k, float(sizes[k]), t, t + float(durations[k])))
            k += 1
    return ItemList(items, capacity=capacity)
