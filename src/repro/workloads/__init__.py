"""Workload generators: random, adversarial, gaming, diurnal, traces."""

from .adversarial import (
    anyfit_pressure,
    best_fit_staircase,
    next_fit_lower_bound,
    universal_lower_bound,
)
from .distributions import (
    Clipped,
    Constant,
    DiscreteChoice,
    Distribution,
    Exponential,
    LogNormal,
    Pareto,
    Uniform,
)
from .diurnal import diurnal_workload, sinusoidal_rate
from .gaming import DEFAULT_CATALOGUE, GameProfile, gaming_workload
from .mmpp import MMPPPhase, mmpp_workload, two_phase_bursty
from .profile import InstanceProfile, profile_instance
from .random_workloads import RandomWorkload, batch_workload, poisson_workload
from .resample import resample_trace
from .traces import from_csv, from_json, load_trace, save_trace, to_csv, to_json

__all__ = [
    "Clipped",
    "Constant",
    "DEFAULT_CATALOGUE",
    "DiscreteChoice",
    "Distribution",
    "Exponential",
    "GameProfile",
    "InstanceProfile",
    "LogNormal",
    "MMPPPhase",
    "Pareto",
    "RandomWorkload",
    "Uniform",
    "anyfit_pressure",
    "batch_workload",
    "best_fit_staircase",
    "diurnal_workload",
    "from_csv",
    "from_json",
    "gaming_workload",
    "load_trace",
    "mmpp_workload",
    "next_fit_lower_bound",
    "profile_instance",
    "resample_trace",
    "poisson_workload",
    "save_trace",
    "sinusoidal_rate",
    "to_csv",
    "to_json",
    "two_phase_bursty",
    "universal_lower_bound",
]
