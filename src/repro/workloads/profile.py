"""Instance profiling: the statistics that predict packing behaviour.

Used by ``repro inspect`` and the experiment notes: before arguing about
an algorithm's ratio on a workload, know the workload — its µ, its load
profile, its size mix (how much mass sits above the small/large
threshold), and its burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.items import ItemList
from ..opt.lower_bounds import fractional_ceiling_bound

__all__ = ["InstanceProfile", "profile_instance"]


@dataclass(frozen=True)
class InstanceProfile:
    """Summary statistics of one instance."""

    n: int
    mu: float
    span: float
    horizon: float
    time_space_demand: float
    mean_size: float
    large_item_fraction: float  # sizes ≥ 1/2 of capacity
    mean_duration: float
    mean_concurrency: float  # time-average number of active items
    peak_concurrency: int
    burstiness: float  # index of dispersion of arrival counts
    opt_lower_bound: float

    def render(self) -> str:
        rows = [
            ("items", f"{self.n}"),
            ("µ (max/min duration)", f"{self.mu:.3f}"),
            ("span / horizon", f"{self.span:.3f} / {self.horizon:.3f}"),
            ("time-space demand", f"{self.time_space_demand:.3f}"),
            ("mean size", f"{self.mean_size:.3f}"),
            ("large-item fraction (≥ C/2)", f"{self.large_item_fraction:.1%}"),
            ("mean duration", f"{self.mean_duration:.3f}"),
            ("mean / peak concurrency", f"{self.mean_concurrency:.2f} / {self.peak_concurrency}"),
            ("burstiness (arrival IoD)", f"{self.burstiness:.3f}"),
            ("OPT_total lower bound", f"{self.opt_lower_bound:.3f}"),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k:<{width}s}  {v}" for k, v in rows)


def profile_instance(items: ItemList, burst_bins: int = 20) -> InstanceProfile:
    """Compute the profile (empty instances get a zeroed profile)."""
    if len(items) == 0:
        return InstanceProfile(0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0, 0.0)
    sizes = np.array([it.size for it in items])
    durations = np.array([it.duration for it in items])
    arrivals = np.array([it.arrival for it in items])
    period = items.packing_period
    horizon = period.length

    # concurrency sweep
    events = sorted(
        [(it.arrival, 1) for it in items] + [(it.departure, -1) for it in items],
        key=lambda e: (e[0], e[1]),
    )
    peak = cur = 0
    weighted = 0.0
    last_t = events[0][0]
    for t, delta in events:
        weighted += cur * (t - last_t)
        last_t = t
        cur += delta
        peak = max(peak, cur)

    # burstiness: index of dispersion of arrival counts over equal windows
    if horizon > 0 and len(items) > 1:
        counts, _ = np.histogram(
            arrivals, bins=burst_bins, range=(period.left, period.right)
        )
        mean = counts.mean()
        burstiness = float(counts.var() / mean) if mean > 0 else 0.0
    else:
        burstiness = 0.0

    return InstanceProfile(
        n=len(items),
        mu=items.mu,
        span=items.span,
        horizon=horizon,
        time_space_demand=items.time_space_demand,
        mean_size=float(sizes.mean()),
        large_item_fraction=float((sizes >= items.capacity / 2.0 - 1e-12).mean()),
        mean_duration=float(durations.mean()),
        mean_concurrency=weighted / horizon if horizon > 0 else 0.0,
        peak_concurrency=peak,
        burstiness=burstiness,
        opt_lower_bound=fractional_ceiling_bound(items),
    )
