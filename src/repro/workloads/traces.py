"""Internal trace (de)serialisation: item lists as JSON or CSV.

Lets experiments pin exact instances to disk (for regression baselines)
and lets users bring their own traces into the dispatcher.  This is the
*internal* format — converted cluster traces land here via
``repro trace convert``; the external schemas live in
:mod:`repro.traces`.

Parsing rides the shared streaming reader (:mod:`repro.traces.reader`),
so malformed input raises :class:`~repro.traces.reader.TraceFormatError`
naming the offending line and field instead of a bare ``KeyError`` from
three layers down, and ``.gz`` files load/save transparently.

JSON documents carry either scalar records (``size``) or vector records
(``sizes`` plus a ``capacity`` list) — :func:`from_json` returns the
matching instance type.  CSV stays scalar-only (the pinned baseline
format predates the vector engine).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from ..core.items import Item, ItemList
from ..multidim.items import VectorItem, VectorItemList
from ..traces.reader import (
    TraceFormatError,
    iter_csv_records,
    open_trace,
    record_float,
    record_int,
    trace_suffix,
)

__all__ = [
    "TraceFormatError",
    "to_json",
    "from_json",
    "to_csv",
    "from_csv",
    "save_trace",
    "load_trace",
]

PathLike = Union[str, Path]
AnyItemList = Union[ItemList, VectorItemList]


def to_json(items: AnyItemList) -> str:
    """Serialise to a JSON document (capacity + item records).

    Scalar instances write ``size`` per record and a float capacity;
    vector instances write ``sizes`` lists and a capacity list.
    """
    vector = isinstance(items, VectorItemList)
    doc = {
        "capacity": list(items.capacity) if vector else items.capacity,
        "items": [
            {
                "id": it.item_id,
                **(
                    {"sizes": list(it.sizes)}
                    if vector
                    else {"size": it.size}
                ),
                "arrival": it.arrival,
                "departure": it.departure,
            }
            for it in items
        ],
    }
    return json.dumps(doc, indent=2)


def _item_from_record(rec: dict, index: int, vector: bool):
    where = f"items[{index}]"
    if not isinstance(rec, dict):
        raise TraceFormatError(
            f"item record must be an object, got {type(rec).__name__}",
            None,
            None,
            where,
        )
    item_id = record_int(rec, "id", where)
    arrival = record_float(rec, "arrival", where)
    departure = record_float(rec, "departure", where)
    try:
        if vector:
            sizes = rec.get("sizes")
            if not isinstance(sizes, (list, tuple)) or not sizes:
                raise TraceFormatError(
                    "vector record needs a non-empty 'sizes' list",
                    where,
                    None,
                    "sizes",
                )
            return VectorItem(
                item_id, tuple(float(s) for s in sizes), arrival, departure
            )
        return Item(item_id, record_float(rec, "size", where), arrival, departure)
    except ValueError as exc:
        if isinstance(exc, TraceFormatError):
            raise
        raise TraceFormatError(str(exc), None, None, where) from None


def from_json(text: str) -> AnyItemList:
    """Parse an instance from :func:`to_json` output (scalar or vector)."""
    try:
        doc = json.loads(text)
    except ValueError as exc:
        raise TraceFormatError(f"malformed JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("items"), list):
        raise TraceFormatError(
            "document must be an object with an 'items' list", field="items"
        )
    capacity = doc.get("capacity", 1.0)
    vector = isinstance(capacity, (list, tuple)) or any(
        isinstance(rec, dict) and "sizes" in rec for rec in doc["items"]
    )
    items = [
        _item_from_record(rec, i, vector) for i, rec in enumerate(doc["items"])
    ]
    try:
        if vector:
            if not isinstance(capacity, (list, tuple)):
                capacity = [float(capacity)]
            return VectorItemList(items, capacity=tuple(capacity))
        return ItemList(items, capacity=float(capacity))
    except ValueError as exc:
        raise TraceFormatError(str(exc)) from None


def to_csv(items: ItemList) -> str:
    """Serialise to CSV with header ``id,size,arrival,departure``.

    Capacity is recorded in a leading comment line.  Scalar only — the
    vector instances serialise via :func:`to_json`.
    """
    if isinstance(items, VectorItemList):
        raise TraceFormatError(
            "vector instances cannot be written as CSV; use the JSON format"
        )
    buf = io.StringIO()
    buf.write(f"# capacity={items.capacity}\n")
    writer = csv.writer(buf)
    writer.writerow(["id", "size", "arrival", "departure"])
    for it in items:
        writer.writerow([it.item_id, repr(it.size), repr(it.arrival), repr(it.departure)])
    return buf.getvalue()


def from_csv(text: str) -> ItemList:
    """Parse an instance from :func:`to_csv` output."""
    capacity = 1.0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            if "capacity=" in stripped:
                raw = stripped.split("capacity=", 1)[1].strip()
                try:
                    capacity = float(raw)
                except ValueError:
                    raise TraceFormatError(
                        f"expected a number, got {raw!r}", None, None, "capacity"
                    ) from None
            continue
        break
    items = []
    for lineno, rec in iter_csv_records(
        iter(text.splitlines(keepends=True)),
        required=("id", "size", "arrival", "departure"),
    ):
        try:
            items.append(
                Item(
                    record_int(rec, "id", None, lineno),
                    record_float(rec, "size", None, lineno),
                    record_float(rec, "arrival", None, lineno),
                    record_float(rec, "departure", None, lineno),
                )
            )
        except ValueError as exc:
            if isinstance(exc, TraceFormatError):
                raise
            raise TraceFormatError(str(exc), None, lineno) from None
    try:
        return ItemList(items, capacity=capacity)
    except ValueError as exc:
        raise TraceFormatError(str(exc)) from None


def save_trace(items: AnyItemList, path: PathLike) -> None:
    """Write an instance to ``path`` (.json or .csv by extension; .gz ok)."""
    path = Path(path)
    suffix = trace_suffix(path)
    if suffix == ".json":
        text = to_json(items)
    elif suffix == ".csv":
        text = to_csv(items)
    else:
        raise ValueError(f"unsupported trace extension: {suffix!r}")
    with open_trace(path, "wt") as handle:
        handle.write(text)


def load_trace(path: PathLike) -> AnyItemList:
    """Read an instance written by :func:`save_trace`."""
    path = Path(path)
    suffix = trace_suffix(path)
    if suffix not in (".json", ".csv"):
        raise ValueError(f"unsupported trace extension: {suffix!r}")
    with open_trace(path) as handle:
        text = handle.read()
    try:
        if suffix == ".json":
            return from_json(text)
        if suffix == ".csv":
            return from_csv(text)
    except TraceFormatError as exc:
        # attach the file name when the text-level parser had none
        raise TraceFormatError(
            exc.message, exc.source or str(path), exc.line, exc.field
        ) from None
    raise ValueError(f"unsupported trace extension: {suffix!r}")
