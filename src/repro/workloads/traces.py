"""Trace (de)serialisation: item lists as JSON or CSV.

Lets experiments pin exact instances to disk (for regression baselines)
and lets users bring their own traces into the dispatcher.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

from ..core.items import Item, ItemList

__all__ = ["to_json", "from_json", "to_csv", "from_csv", "save_trace", "load_trace"]

PathLike = Union[str, Path]


def to_json(items: ItemList) -> str:
    """Serialise to a JSON document (capacity + item records)."""
    doc = {
        "capacity": items.capacity,
        "items": [
            {
                "id": it.item_id,
                "size": it.size,
                "arrival": it.arrival,
                "departure": it.departure,
            }
            for it in items
        ],
    }
    return json.dumps(doc, indent=2)


def from_json(text: str) -> ItemList:
    """Parse an instance from :func:`to_json` output."""
    doc = json.loads(text)
    return ItemList(
        (
            Item(rec["id"], rec["size"], rec["arrival"], rec["departure"])
            for rec in doc["items"]
        ),
        capacity=doc.get("capacity", 1.0),
    )


def to_csv(items: ItemList) -> str:
    """Serialise to CSV with header ``id,size,arrival,departure``.

    Capacity is recorded in a leading comment line.
    """
    buf = io.StringIO()
    buf.write(f"# capacity={items.capacity}\n")
    writer = csv.writer(buf)
    writer.writerow(["id", "size", "arrival", "departure"])
    for it in items:
        writer.writerow([it.item_id, repr(it.size), repr(it.arrival), repr(it.departure)])
    return buf.getvalue()


def from_csv(text: str) -> ItemList:
    """Parse an instance from :func:`to_csv` output."""
    capacity = 1.0
    lines = text.splitlines()
    body_start = 0
    for i, line in enumerate(lines):
        if line.startswith("#"):
            if "capacity=" in line:
                capacity = float(line.split("capacity=", 1)[1].strip())
            body_start = i + 1
        else:
            break
    reader = csv.DictReader(lines[body_start:])
    return ItemList(
        (
            Item(
                int(row["id"]),
                float(row["size"]),
                float(row["arrival"]),
                float(row["departure"]),
            )
            for row in reader
        ),
        capacity=capacity,
    )


def save_trace(items: ItemList, path: PathLike) -> None:
    """Write an instance to ``path`` (.json or .csv by extension)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(to_json(items))
    elif path.suffix == ".csv":
        path.write_text(to_csv(items))
    else:
        raise ValueError(f"unsupported trace extension: {path.suffix!r}")


def load_trace(path: PathLike) -> ItemList:
    """Read an instance written by :func:`save_trace`."""
    path = Path(path)
    if path.suffix == ".json":
        return from_json(path.read_text())
    if path.suffix == ".csv":
        return from_csv(path.read_text())
    raise ValueError(f"unsupported trace extension: {path.suffix!r}")
