"""Synthetic cloud-gaming workloads (the paper's motivating application).

The paper motivates MinUsageTime DBP with cloud gaming (GaiKai-style):
play requests arrive over time, each game instance needs a fixed share
of a server's GPU, runs until the player quits, and cannot be migrated.
No trace data is published, so we synthesise sessions from a catalogue
of *game profiles* — (GPU share, expected session length) pairs — with
Poisson request arrivals and heavy-tailed session durations, which is
the standard shape for player session lengths.

This is the documented substitution for real provider traces (see
DESIGN.md §2): it exercises exactly the same dispatch code path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.items import Item, ItemList
from .distributions import Distribution, LogNormal

__all__ = ["GameProfile", "DEFAULT_CATALOGUE", "gaming_workload"]


@dataclass(frozen=True)
class GameProfile:
    """One game title: GPU share per instance + session length model."""

    name: str
    gpu_share: float
    session_dist: Distribution
    popularity: float = 1.0

    def __post_init__(self) -> None:
        if not (0 < self.gpu_share <= 1):
            raise ValueError("gpu_share must be in (0, 1]")
        if self.popularity <= 0:
            raise ValueError("popularity must be positive")


#: A small catalogue spanning light 2D titles to GPU-saturating AAA
#: instances.  Session lengths are log-normal (median ≈ exp(mu) hours),
#: a common empirical fit for play sessions.
DEFAULT_CATALOGUE: tuple[GameProfile, ...] = (
    GameProfile("casual-2d", 0.10, LogNormal(-0.7, 0.6), popularity=4.0),
    GameProfile("moba", 0.25, LogNormal(-0.3, 0.4), popularity=3.0),
    GameProfile("fps", 0.34, LogNormal(0.0, 0.5), popularity=2.0),
    GameProfile("open-world", 0.50, LogNormal(0.3, 0.7), popularity=1.5),
    GameProfile("aaa-max", 1.00, LogNormal(0.5, 0.5), popularity=0.5),
)


def gaming_workload(
    n: int,
    seed: int,
    request_rate: float = 2.0,
    catalogue: tuple[GameProfile, ...] = DEFAULT_CATALOGUE,
    min_session: float = 0.25,
    max_session: float = 8.0,
) -> ItemList:
    """Generate ``n`` play sessions.

    Parameters
    ----------
    request_rate:
        Poisson arrival rate of play requests (per hour).
    min_session, max_session:
        Session lengths are clipped to this range, bounding the realised
        µ at ``max_session / min_session`` (32 with the defaults — cloud
        gaming sessions range from minutes to a work day).
    """
    if not catalogue:
        raise ValueError("catalogue must be non-empty")
    rng = np.random.default_rng(seed)
    pops = np.array([g.popularity for g in catalogue])
    probs = pops / pops.sum()
    arrivals = np.cumsum(rng.exponential(1.0 / request_rate, n))
    choices = rng.choice(len(catalogue), size=n, p=probs)
    items: list[Item] = []
    for i in range(n):
        game = catalogue[choices[i]]
        dur = float(np.clip(game.session_dist.sample(rng, 1)[0], min_session, max_session))
        items.append(Item(i, game.gpu_share, float(arrivals[i]), float(arrivals[i]) + dur))
    return ItemList(items)
