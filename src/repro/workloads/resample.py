"""Trace resampling: bootstrap new instances from an existing trace.

Given a real (or frozen) trace, generate statistically similar variants:
items are drawn with replacement, arrival times are re-jittered, and
durations/sizes optionally perturbed — preserving the trace's marginal
distributions while varying the interleaving that packing is sensitive
to.  Used to turn one trace into a test *population*.
"""

from __future__ import annotations

import numpy as np

from ..core.items import Item, ItemList

__all__ = ["resample_trace"]


def resample_trace(
    items: ItemList,
    seed: int,
    n: int | None = None,
    arrival_jitter: float = 0.5,
    duration_jitter: float = 0.0,
    preserve_mu: bool = True,
) -> ItemList:
    """Bootstrap a new instance from ``items``.

    Parameters
    ----------
    n:
        Output size (default: same as input).
    arrival_jitter:
        Uniform ±jitter added to each resampled arrival.
    duration_jitter:
        Relative log-normal-ish perturbation of durations (0 keeps them).
    preserve_mu:
        Clip perturbed durations back into the source trace's
        [min, max] duration band so µ does not grow.
    """
    if len(items) == 0:
        raise ValueError("cannot resample an empty trace")
    rng = np.random.default_rng(seed)
    n = len(items) if n is None else n
    source = list(items)
    lo, hi = items.min_duration, items.max_duration
    out = []
    for i in range(n):
        src = source[int(rng.integers(0, len(source)))]
        arrival = max(0.0, src.arrival + float(rng.uniform(-arrival_jitter, arrival_jitter)))
        duration = src.duration
        if duration_jitter > 0:
            duration *= float(np.exp(duration_jitter * rng.standard_normal()))
        if preserve_mu:
            duration = float(np.clip(duration, lo, hi))
        out.append(Item(i, src.size, arrival, arrival + duration))
    return ItemList(out, capacity=items.capacity)
