"""Adversarial instances from the paper and its cited prior work.

Four constructions, each returning an :class:`~repro.core.items.ItemList`
whose arrival *order* encodes the adversary's release order (the event
layer preserves instance order among simultaneous arrivals):

- :func:`next_fit_lower_bound` — Section VIII of the paper, verbatim:
  forces Next Fit to a ratio approaching 2µ while First Fit stays O(1).
- :func:`universal_lower_bound` — the blocker/filler construction behind
  the µ lower bound (Li–Tang–Cai [6], formalised by Kamali–López-Ortiz
  [12]); every Any Fit algorithm and Next Fit pay ≈ nµ against
  OPT ≈ n + µ.
- :func:`best_fit_staircase` — a staircase-level gadget on which Best
  Fit scatters long fillers across all prepared bins while First Fit
  consolidates them into one; exhibits the Best-Fit-specific weakness
  behind the cited "Best Fit is unbounded for any µ" result.
- :func:`anyfit_pressure` — repeated blocker/filler rounds stacked in
  time, a stress workload whose measured First Fit ratio approaches the
  µ lower bound from below as rounds grow.

All constructions take explicit ``epsilon``-style slack so capacity
checks are exact at float precision.
"""

from __future__ import annotations

import math

from ..core.items import Item, ItemList

__all__ = [
    "next_fit_lower_bound",
    "universal_lower_bound",
    "best_fit_staircase",
    "anyfit_pressure",
]


def next_fit_lower_bound(n: int, mu: float) -> ItemList:
    """The Section VIII construction: Next Fit ratio → 2µ.

    At time 0, ``n`` pairs of items arrive in sequence; the first item of
    each pair has size 1/2 and the second size ``1/n``.  At time 1 all
    the size-1/2 items depart; at time µ all the size-1/n items depart.

    Next Fit puts each pair in its own bin (a new 1/2-item never fits in
    the previous bin at level ``1/2 + 1/n``) and keeps all ``n`` bins
    open until µ: ``NF_total = nµ``.  The optimum pairs up the 1/2-items
    (n/2 bins over [0,1)) and packs all 1/n-items into one bin over
    [0,µ): ``OPT_total ≈ n/2 + µ``.  The ratio ``nµ/(n/2+µ) → 2µ``.

    Requires ``n >= 3`` (as in the paper) and ``mu > 1``.
    """
    if n < 3:
        raise ValueError("the construction requires n >= 3")
    if mu <= 1:
        raise ValueError("the construction requires mu > 1")
    items: list[Item] = []
    for i in range(n):
        items.append(Item(2 * i, 0.5, 0.0, 1.0))  # pair leader, duration 1
        items.append(Item(2 * i + 1, 1.0 / n, 0.0, mu))  # pair tail, duration µ
    return ItemList(items)


def universal_lower_bound(n: int, mu: float, delta: float | None = None) -> ItemList:
    """Blocker/filler rounds: every online algorithm pays ≈ nµ/(n+µ)·OPT.

    Round ``i`` (i = 1..n) at time ``(i-1)·delta``:

    - a *blocker* of size ``1 − ε`` and duration 1 (the minimum) arrives;
      every previously opened bin is exactly full, so every algorithm
      must open a new bin for it;
    - a *filler* of size ``ε`` and duration µ arrives immediately after;
      it fits only the just-opened bin (all others are full), topping it
      up to exactly 1.

    After the blockers depart, each of the ``n`` bins holds one ε-filler
    until its round start + µ, so ``ALG ≈ nµ`` for First Fit, Best Fit,
    Worst Fit, Last Fit, Random Fit and Next Fit alike — no placement
    choice ever exists for an algorithm that mixes item sizes in one
    bin.  (Size-classified hybrids dodge the gadget by segregating the
    fillers, which is precisely how they beat the Any Fit lower bound.)  The optimum pays ≈ n (the blocker
    phase, where total demand is ≈ n) plus µ (all fillers share one
    bin): the ratio approaches ``µ`` as ``n → ∞``, matching the
    universal lower bound the paper cites.

    ``delta`` defaults to ``1/(2n)`` so all rounds start before the
    first blocker departs.  ``ε = 1/(2n)`` keeps the fillers' total size
    at 1/2 (one bin for OPT).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if mu <= 1:
        raise ValueError("mu must be > 1")
    if delta is None:
        delta = 1.0 / (2 * n)
    if delta <= 0 or n * delta >= 1:
        raise ValueError("need 0 < delta and n*delta < 1 so blockers overlap")
    eps = 1.0 / (2 * n)
    items: list[Item] = []
    for i in range(n):
        t = i * delta
        items.append(Item(2 * i, 1.0 - eps, t, t + 1.0))
        items.append(Item(2 * i + 1, eps, t, t + mu))
    return ItemList(items)


def best_fit_staircase(n: int, mu: float, fillers: int | None = None) -> ItemList:
    """Staircase gadget separating Best Fit from First Fit.

    At time 0, blockers of sizes ``1 − nγ, 1 − (n−1)γ, …, 1 − γ``
    (duration 1) arrive in that order with ``γ = 1/(2n+2)``; they are
    pairwise conflicting, so every algorithm opens ``n`` bins whose
    levels form an ascending staircase with bin 1 the emptiest.  Then
    ``K`` long fillers of sizes ``γ, 2γ, …, Kγ`` (duration µ) arrive:

    - **Best Fit** sends filler ``kγ`` to the fullest bin it fits —
      bin ``n−k+1``, exactly topping it up — scattering the fillers over
      ``K`` distinct bins, each of which then stays open until µ.
    - **First Fit** sends every filler to bin 1 (they all fit there:
      their total is at most ``nγ``), so only one bin stays open long.

    With ``K = ⌊(√(8n+1)−1)/2⌋`` (the largest K with K(K+1)/2 ≤ n):
    ``BF_total ≈ Kµ + n`` versus ``FF_total ≈ µ + n`` and
    ``OPT ≈ n + µ`` — a Best-Fit/First-Fit gap growing like √n,
    demonstrating the Best-Fit-specific failure mode behind the cited
    unboundedness result.
    """
    if n < 3:
        raise ValueError("n must be >= 3")
    if mu <= 1:
        raise ValueError("mu must be > 1")
    gamma = 1.0 / (2 * n + 2)
    max_k = int((math.isqrt(8 * n + 1) - 1) // 2)
    if fillers is None:
        fillers = max_k
    if not (1 <= fillers <= max_k):
        raise ValueError(f"fillers must be in [1, {max_k}] so they all fit bin 1")
    items: list[Item] = []
    iid = 0
    for i in range(1, n + 1):  # blockers: sizes 1-nγ, 1-(n-1)γ, ..., 1-γ
        items.append(Item(iid, 1.0 - (n - i + 1) * gamma, 0.0, 1.0))
        iid += 1
    for k in range(1, fillers + 1):  # fillers: sizes γ, 2γ, ..., Kγ, duration µ
        items.append(Item(iid, k * gamma, 0.0, mu))
        iid += 1
    return ItemList(items)


def anyfit_pressure(rounds: int, n: int, mu: float) -> ItemList:
    """Repeated universal rounds stacked back-to-back in time.

    ``rounds`` copies of :func:`universal_lower_bound`'s gadget, the
    r-th starting at time ``r·(µ+1)`` so consecutive copies do not
    interact.  The measured ratio equals the single-gadget ratio (both
    ALG and OPT scale by ``rounds``); the workload exists to give the
    ratio estimators long instances with many bins — e.g. for checking
    that measured ratios are stable under repetition, and as a heavier
    stress case for the proof-invariant property tests.
    """
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    base = universal_lower_bound(n, mu)
    items: list[Item] = []
    iid = 0
    for r in range(rounds):
        shift = r * (mu + 1.0)
        for it in base:
            items.append(Item(iid, it.size, it.arrival + shift, it.departure + shift))
            iid += 1
    return ItemList(items)
