"""Analytic competitive-ratio bounds for MinUsageTime DBP.

The closed-form bounds the paper states or cites, as functions of µ,
plus the table generator used by the T5 experiment (bounds vs measured
worst-case ratios).

Provenance of each constant is annotated; entries whose constants were
garbled in the OCR source are marked ``reconstructed`` (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BoundEntry", "KNOWN_BOUNDS", "theorem1_upper_bound", "bounds_table"]


def theorem1_upper_bound(mu: float) -> float:
    """Theorem 1: First Fit's competitive ratio is at most ``µ + 4``."""
    if mu < 1:
        raise ValueError("µ is a max/min ratio and cannot be below 1")
    return mu + 4.0


@dataclass(frozen=True)
class BoundEntry:
    """One row of the known-bounds table."""

    algorithm: str
    lower: Optional[Callable[[float], float]]
    upper: Optional[Callable[[float], float]]
    lower_source: str
    upper_source: str

    def lower_at(self, mu: float) -> Optional[float]:
        return None if self.lower is None else self.lower(mu)

    def upper_at(self, mu: float) -> Optional[float]:
        return None if self.upper is None else self.upper(mu)


KNOWN_BOUNDS: tuple[BoundEntry, ...] = (
    BoundEntry(
        "any online algorithm",
        lambda mu: mu,
        None,
        "Li–Tang–Cai [6]; formal proof Kamali–López-Ortiz [12]",
        "—",
    ),
    BoundEntry(
        "any Any Fit algorithm",
        lambda mu: mu + 1.0,
        None,
        "Li–Tang–Cai [5][6] (constant reconstructed from OCR)",
        "—",
    ),
    BoundEntry(
        "first-fit",
        lambda mu: mu + 1.0,
        theorem1_upper_bound,
        "Any Fit lower bound applies",
        "THIS PAPER, Theorem 1: µ + 4",
    ),
    BoundEntry(
        "best-fit",
        lambda mu: float("inf"),
        None,
        "unbounded for any given µ — Li–Tang–Cai [5][6]",
        "—",
    ),
    BoundEntry(
        "next-fit",
        lambda mu: 2.0 * mu,
        lambda mu: 2.0 * mu + 1.0,
        "THIS PAPER, Section VIII construction",
        "Kamali–López-Ortiz [12] (constant reconstructed from OCR)",
    ),
    BoundEntry(
        "hybrid-first-fit",
        None,
        lambda mu: 8.0 / 7.0 * mu + 5.0,
        "—",
        "Li–Tang–Cai [6][15], semi-online (constant reconstructed from OCR)",
    ),
)


def bounds_table(mu: float) -> str:
    """Render the known-bounds table at a given µ (plain text)."""

    def fmt(x: Optional[float]) -> str:
        if x is None:
            return "—"
        if x == float("inf"):
            return "unbounded"
        return f"{x:.2f}"

    lines = [
        f"Known competitive-ratio bounds at µ = {mu:g}",
        f"{'algorithm':28s} {'lower':>10s} {'upper':>10s}",
        "-" * 52,
    ]
    for e in KNOWN_BOUNDS:
        lines.append(
            f"{e.algorithm:28s} {fmt(e.lower_at(mu)):>10s} {fmt(e.upper_at(mu)):>10s}"
        )
    return "\n".join(lines)
