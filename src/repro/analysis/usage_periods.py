"""Section IV: decomposition of bin usage periods (Figure 2).

For bins ``b_1, …, b_m`` indexed in opening order with usage periods
``U_k``:

- ``E_k = max{U_i^+ : i < k}`` — the latest closing time among bins
  opened before ``b_k`` (``E_1 = U_1^-``);
- ``V_k = [U_k^-, min(U_k^+, E_k))`` — the (possibly empty) prefix of
  ``U_k`` overlapped by some earlier-opened bin's lifetime;
- ``W_k = U_k − V_k`` — the remainder.

Key facts (Equation (1) of the paper, verified by the test suite):

- the ``W_k`` are pairwise disjoint and ``Σ|W_k| = span(R)``;
- hence ``FF_total(R) = Σ|V_k| + span(R) ≤ Σ|V_k| + OPT_total(R)``
  (Proposition 2), which is where the additive "+1" of Theorem 1's
  ``µ+4`` comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.intervals import EMPTY_INTERVAL, Interval
from ..core.result import PackingResult

__all__ = ["BinPeriods", "UsagePeriodDecomposition", "decompose_usage_periods"]


@dataclass(frozen=True)
class BinPeriods:
    """The Section-IV quantities for one bin."""

    index: int
    usage: Interval  # U_k
    latest_earlier_close: float  # E_k
    overlapped: Interval  # V_k
    exclusive: Interval  # W_k

    @property
    def v_length(self) -> float:
        return self.overlapped.length

    @property
    def w_length(self) -> float:
        return self.exclusive.length


@dataclass(frozen=True)
class UsagePeriodDecomposition:
    """All bins' U/V/W/E decomposition plus the instance aggregates."""

    per_bin: tuple[BinPeriods, ...]
    span: float
    total_usage_time: float

    @property
    def total_v(self) -> float:
        """``Σ_k |V_k|``."""
        return sum(b.v_length for b in self.per_bin)

    @property
    def total_w(self) -> float:
        """``Σ_k |W_k|`` — equals ``span`` (Section IV)."""
        return sum(b.w_length for b in self.per_bin)


def decompose_usage_periods(result: PackingResult) -> UsagePeriodDecomposition:
    """Compute ``E_k``, ``V_k``, ``W_k`` for every bin of a packing run.

    Works for any packing whose bins are indexed in opening order (the
    driver guarantees this), not only First Fit.
    """
    per_bin: list[BinPeriods] = []
    latest_close = None
    for b in result.bins:
        u = b.usage_period
        if latest_close is None:
            e_k = u.left  # E_1 = U_1^-  (no earlier bins)
        else:
            e_k = latest_close
        v_right = min(u.right, e_k)
        v_k = Interval(u.left, v_right) if v_right > u.left else EMPTY_INTERVAL
        w_left = max(u.left, v_right)
        w_k = Interval(w_left, u.right) if u.right > w_left else EMPTY_INTERVAL
        per_bin.append(
            BinPeriods(
                index=b.index,
                usage=u,
                latest_earlier_close=e_k,
                overlapped=v_k,
                exclusive=w_k,
            )
        )
        latest_close = u.right if latest_close is None else max(latest_close, u.right)
    return UsagePeriodDecomposition(
        per_bin=tuple(per_bin),
        span=result.items.span,
        total_usage_time=result.total_usage_time,
    )
