"""Section V: small-item selection and l/h-subperiod split (Figure 3).

For each bin ``b_k`` of a First Fit run, the period ``V_k`` is divided
into subperiods by the arrival times of a chain of *selected* small
items, then each piece is split into an *l-subperiod* (potentially low
utilisation) and an *h-subperiod* (bin level provably ≥ 1/2):

- Items of size below 1/2 are **small**, the rest **large**.  (The OCR
  source drops the threshold; 1/2 is the standard split and the one that
  makes Proposition 6 true: with no small item present, an open bin
  holds at least one large item, so its level is at least 1/2.)
- Selection walks forward through the small items placed in ``b_k``
  during ``V_k``: from the current selected item, the next is the *last*
  small item arriving within a window of length µ (the maximum item
  duration) after it — or the *first* one beyond the window if the
  window is empty.  Selection stops when the chosen item arrives within
  µ of ``V_k``'s end, or no small arrivals remain (paper's termination
  rules (i)/(ii)).
- The selected arrivals cut ``V_k`` into ``x_0, x_1, …``; every ``x_i``
  longer than µ is split at ``µ`` into ``x_{l,i}`` (first µ) and
  ``x_{h,i}`` (rest); ``x_0`` is all-h.

Propositions 3–6 are mechanically checkable on the produced structure
and are exercised by the property-based test suite:

- P3: ``|x_{l,i}| ≤ µ``;
- P4: a new small item is placed in the bin at each l-subperiod's left
  endpoint;
- P5: consecutive l-subperiods satisfy ``|x_{l,i}| + |x_{l,i+1}| > µ``;
- P6: the bin level is ≥ 1/2 throughout every h-subperiod.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.bins import Bin
from ..core.intervals import EMPTY_INTERVAL, Interval
from ..core.items import Item
from ..core.result import PackingResult
from .usage_periods import UsagePeriodDecomposition, decompose_usage_periods

__all__ = [
    "SMALL_ITEM_THRESHOLD",
    "LSubperiod",
    "HSubperiod",
    "BinSubperiods",
    "build_subperiods",
    "select_small_items",
]

#: Size threshold separating small from large items (paper Section V;
#: reconstructed — see module docstring).
SMALL_ITEM_THRESHOLD = 0.5

_EPS = 1e-9


@dataclass(frozen=True)
class LSubperiod:
    """An l-subperiod ``x_{l,i}`` produced from one bin.

    ``opener`` is the selected small item arriving at the left endpoint
    (Proposition 4); ``position`` is the paper's ``i`` (1-based).
    """

    bin_index: int
    position: int
    interval: Interval
    opener: Item

    @property
    def length(self) -> float:
        return self.interval.length


@dataclass(frozen=True)
class HSubperiod:
    """An h-subperiod ``x_{h,i}`` (bin level ≥ 1/2 throughout)."""

    bin_index: int
    position: int  # 0 for x_{h,0}
    interval: Interval

    @property
    def length(self) -> float:
        return self.interval.length


@dataclass(frozen=True)
class BinSubperiods:
    """All subperiods produced from one bin's ``V_k``."""

    bin_index: int
    v: Interval
    selected: tuple[Item, ...]
    l_subperiods: tuple[LSubperiod, ...]
    h_subperiods: tuple[HSubperiod, ...]

    @property
    def total_l(self) -> float:
        return sum(x.length for x in self.l_subperiods)

    @property
    def total_h(self) -> float:
        return sum(y.length for y in self.h_subperiods)


def small_items_in_bin(
    result: PackingResult, b: Bin, v: Interval, threshold: float = SMALL_ITEM_THRESHOLD
) -> list[Item]:
    """Small items placed in ``b`` whose arrival lies in ``v``.

    Sorted by (arrival, placement order); ``b.all_items`` is already in
    placement order, which the sort preserves for ties.
    """
    return sorted(
        (
            it
            for it in b.all_items
            if it.size < threshold - _EPS / 2 and v.contains(it.arrival)
        ),
        key=lambda it: it.arrival,
    )


def select_small_items(smalls: list[Item], v: Interval, window: float) -> list[Item]:
    """The paper's selection walk over the small arrivals in ``V_k``.

    ``window`` is µ expressed in the instance's time units (the maximum
    item duration).  Returns the selected chain in arrival order.
    """
    if not smalls:
        return []
    selected = [smalls[0]]
    pos = 0
    while True:
        current = selected[-1]
        a = current.arrival
        # termination (i): chosen item arrives within µ (inclusive) of V's end
        if a >= v.right - window - _EPS:
            break
        # candidates strictly after the current item in the sorted order
        in_window = [
            (j, s)
            for j, s in enumerate(smalls[pos + 1 :], start=pos + 1)
            if s.arrival <= a + window + _EPS
        ]
        if in_window:
            pos, nxt = in_window[-1]  # the LAST small within the window
        else:
            if pos + 1 >= len(smalls):
                break  # termination (ii): last small arrival already chosen
            pos, nxt = pos + 1, smalls[pos + 1]  # first small beyond the window
        selected.append(nxt)
        # termination (ii) — "last small item chosen" — is detected at the
        # top of the next iteration when no candidates remain.
    return selected


def build_subperiods(
    result: PackingResult,
    decomposition: Optional[UsagePeriodDecomposition] = None,
    threshold: float = SMALL_ITEM_THRESHOLD,
) -> list[BinSubperiods]:
    """Produce every bin's l/h-subperiods for a packing result.

    The window µ is the instance's maximum item duration (the paper
    normalises the minimum duration to 1; we keep native units, so the
    window is ``max_duration`` and the "duration ≥ 1" facts become
    "duration ≥ min_duration").
    """
    if decomposition is None:
        decomposition = decompose_usage_periods(result)
    window = result.items.max_duration
    out: list[BinSubperiods] = []
    for b, periods in zip(result.bins, decomposition.per_bin):
        v = periods.overlapped
        if v.is_empty:
            out.append(
                BinSubperiods(
                    bin_index=b.index,
                    v=EMPTY_INTERVAL,
                    selected=(),
                    l_subperiods=(),
                    h_subperiods=(),
                )
            )
            continue
        smalls = small_items_in_bin(result, b, v, threshold)
        selected = select_small_items(smalls, v, window)
        ls: list[LSubperiod] = []
        hs: list[HSubperiod] = []
        if not selected:
            # no small item ever placed during V_k: x_0 = V_k, all-h
            hs.append(HSubperiod(b.index, 0, v))
        else:
            arrivals = [it.arrival for it in selected]
            # x_0 — before the first selected arrival (h-kind)
            if arrivals[0] > v.left + _EPS:
                hs.append(HSubperiod(b.index, 0, Interval(v.left, arrivals[0])))
            bounds = arrivals + [v.right]
            for i in range(len(selected)):
                left, right = bounds[i], bounds[i + 1]
                if right <= left + _EPS:
                    continue  # degenerate (simultaneous selected arrivals)
                x = Interval(left, right)
                if x.length > window + _EPS:
                    ls.append(
                        LSubperiod(
                            b.index, i + 1, Interval(left, left + window), selected[i]
                        )
                    )
                    hs.append(HSubperiod(b.index, i + 1, Interval(left + window, right)))
                else:
                    ls.append(LSubperiod(b.index, i + 1, x, selected[i]))
        out.append(
            BinSubperiods(
                bin_index=b.index,
                v=v,
                selected=tuple(selected),
                l_subperiods=tuple(ls),
                h_subperiods=tuple(hs),
            )
        )
    return out
