"""Sections V–VI: supplier bins, pairing, consolidation (Figure 4).

For every l-subperiod ``x`` produced from bin ``b_k``:

- the **supplier bin** of ``x`` is the *last-opened* (highest-index) bin
  among the bins with index < k that are open at ``x``'s left endpoint.
  Existence is guaranteed because ``x ⊆ V_k`` (otherwise the time would
  belong to ``W_k``); by First Fit's rule, the supplier bin could not
  accommodate the small item placed at ``x^-``, so its level then
  exceeds ``1 − s(small) > 1/2``.

- two consecutive l-subperiods of the same bin **form a pair**
  (Definition 1) when they share a supplier bin and
  ``|x_{l,i+1}| > pair_coefficient · |x_{l,i}|``; maximal chains of
  pairs are merged into **consolidated** l-subperiods (Definition 2).

- each single/consolidated l-subperiod gets a **supplier period**, a
  time window around it charged to its supplier bin.  For a single
  ``x``: ``[x^- − |x|/(µ+1), x^- + |x|/(µ+1))`` — items resident in
  the supplier bin at ``x^-`` have duration ≥ min-duration and the
  radius is below min-duration, so each overlaps this window by at
  least ``|x|/(µ+1)``, which is exactly what Section VII's
  time–space accounting needs to produce the ``1/(µ+3)`` amortised
  bin level: ``|u| + |x| = (µ+3)/(µ+1)·|x|`` and
  ``d(u)+d(x) > |x|/(µ+1) = (|u|+|x|)/(µ+3)``.  For a consolidated sequence we take the
  union hull of the member windows plus the pair-overlap windows of
  Lemmas 3–4, so containment (Lemmas 3 and 4) holds by construction and
  the quantitative facts — Lemma 1's length bound and Lemma 2's
  non-intersection — remain empirically checkable.

**Reconstruction note** (see DESIGN.md): the OCR source drops the exact
pair coefficient and window radii.  The defaults — pair coefficient µ
(the straight reading of Definition 1) and radius divisor µ+1 — are the
unique pair under which the paper's algebra closes exactly:

- Case 1 (same bin, no pair): ``(|x_{l,i}|+|x_{l,i+1}|)/(µ+1)
  ≤ (1+µ)|x_{l,i}|/(µ+1) = |x_{l,i}| ≤ |x_i|`` — the supplier periods
  touch but do not cross;
- Cases 3–4 (different bins): the gap is at least
  ``max(min-duration, |x_{l,i}|)`` and
  ``(|x| + µ)/(µ+1) ≤ max(1, |x|)`` unconditionally;
- the amortised-level constant comes out as ``1/(µ+3)``, reproducing
  inequality (0) and hence Theorem 1's ``µ+4``.

The verification suite checks Lemma 2 under these defaults across
randomized instances; both knobs remain parameters so the ablation
benchmark can show the algebra failing under neighbouring constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core.intervals import Interval
from ..core.result import PackingResult
from .subperiods import BinSubperiods, LSubperiod, build_subperiods

__all__ = [
    "SupplierAssignment",
    "ConsolidatedGroup",
    "SupplierAnalysis",
    "analyze_suppliers",
]

_EPS = 1e-9


@dataclass(frozen=True)
class SupplierAssignment:
    """One l-subperiod with its supplier bin."""

    subperiod: LSubperiod
    supplier_index: int


@dataclass(frozen=True)
class ConsolidatedGroup:
    """A maximal single/consolidated l-subperiod group from one bin.

    ``members`` has length 1 for a *single* l-subperiod; ≥ 2 for a
    consolidated one.  ``supplier_period`` is the window charged to the
    common supplier bin.
    """

    bin_index: int
    supplier_index: int
    members: tuple[LSubperiod, ...]
    supplier_period: Interval

    @property
    def is_single(self) -> bool:
        return len(self.members) == 1

    @property
    def own_length(self) -> float:
        """``Σ |x_{l,k}|`` over member subperiods."""
        return sum(m.length for m in self.members)

    @property
    def own_intervals(self) -> tuple[Interval, ...]:
        return tuple(m.interval for m in self.members)


@dataclass(frozen=True)
class SupplierAnalysis:
    """Full Sections V–VI structure for one packing run."""

    per_bin: tuple[BinSubperiods, ...]
    assignments: tuple[SupplierAssignment, ...]
    groups: tuple[ConsolidatedGroup, ...]
    pair_coefficient_used: float
    radius_divisor: float  # supplier window radius = |x| / radius_divisor

    def groups_by_supplier(self) -> dict[int, list[ConsolidatedGroup]]:
        by: dict[int, list[ConsolidatedGroup]] = {}
        for g in self.groups:
            by.setdefault(g.supplier_index, []).append(g)
        return by


def _find_supplier(result: PackingResult, bin_index: int, t: float) -> Optional[int]:
    """Highest-indexed bin with index < bin_index open at time ``t``."""
    for j in range(bin_index - 1, -1, -1):
        b = result.bins[j]
        if b.opened_at is not None and b.opened_at <= t + _EPS:
            if b.closed_at is None or b.closed_at > t + _EPS:
                return j
    return None


def _single_supplier_period(x: LSubperiod, radius: float) -> Interval:
    return Interval(x.interval.left - radius, x.interval.left + radius)


def _consolidated_supplier_period(
    members: Sequence[LSubperiod], radius_divisor: float
) -> Interval:
    """Hull of the member windows and the pair-overlap windows.

    Contains, for every member ``x_{l,k}``, the window
    ``[x_{l,k}^- − |x_{l,k}|/d, x_{l,k}^- + |x_{l,k}|/d)`` (Lemma 3),
    and for every consecutive pair the window
    ``[x_{l,k+1}^- − (|x_{l,k}|+|x_{l,k+1}|)/d,
       x_{l,k}^- + (|x_{l,k}|+|x_{l,k+1}|)/d)`` (Lemma 4).
    """
    left = float("inf")
    right = float("-inf")
    for k, m in enumerate(members):
        r = m.length / radius_divisor
        left = min(left, m.interval.left - r)
        right = max(right, m.interval.left + r)
        if k + 1 < len(members):
            nxt = members[k + 1]
            rr = (m.length + nxt.length) / radius_divisor
            left = min(left, nxt.interval.left - rr)
            right = max(right, m.interval.left + rr)
    return Interval(left, right)


def analyze_suppliers(
    result: PackingResult,
    subperiods: Optional[list[BinSubperiods]] = None,
    pair_coefficient: Optional[float] = None,
    radius_divisor: Optional[float] = None,
) -> SupplierAnalysis:
    """Assign supplier bins, form pairs, consolidate, build periods.

    Parameters
    ----------
    pair_coefficient:
        ``c`` in Definition 1's ``|x_{l,i+1}| > c·|x_{l,i}|``; defaults
        to the instance's µ.
    radius_divisor:
        ``d`` in the supplier window radius ``|x|/d``; defaults to µ+1
        (see the reconstruction note in the module docstring).
    """
    if subperiods is None:
        subperiods = build_subperiods(result)
    mu = result.items.mu
    c = mu if pair_coefficient is None else pair_coefficient
    d = mu + 1.0 if radius_divisor is None else radius_divisor

    assignments: list[SupplierAssignment] = []
    groups: list[ConsolidatedGroup] = []

    for bsp in subperiods:
        suppliers: list[int] = []
        for x in bsp.l_subperiods:
            s = _find_supplier(result, bsp.bin_index, x.interval.left)
            if s is None:
                raise AssertionError(
                    f"l-subperiod at {x.interval} in bin {bsp.bin_index} has no "
                    "supplier bin — contradicts V_k membership"
                )
            assignments.append(SupplierAssignment(x, s))
            suppliers.append(s)

        # pairing: consecutive l-subperiods, same supplier, growth by > c
        ls = bsp.l_subperiods
        n = len(ls)
        pairs = [
            suppliers[i] == suppliers[i + 1]
            and ls[i + 1].length > c * ls[i].length + _EPS
            for i in range(n - 1)
        ]
        # maximal runs of consecutive pairs → consolidated groups
        i = 0
        while i < n:
            j = i
            while j < n - 1 and pairs[j]:
                j += 1
            members = ls[i : j + 1]
            if len(members) == 1:
                period = _single_supplier_period(members[0], members[0].length / d)
            else:
                period = _consolidated_supplier_period(members, d)
            groups.append(
                ConsolidatedGroup(
                    bin_index=bsp.bin_index,
                    supplier_index=suppliers[i],
                    members=tuple(members),
                    supplier_period=period,
                )
            )
            i = j + 1

    return SupplierAnalysis(
        per_bin=tuple(subperiods),
        assignments=tuple(assignments),
        groups=tuple(groups),
        pair_coefficient_used=c,
        radius_divisor=d,
    )
