"""Section VII's time–space accounting, computed numerically.

The structural checkers (:mod:`repro.analysis.verification`) confirm the
*shape* of the proof; this module checks its *quantities*: for every
single/consolidated l-subperiod group, the time–space demand served in
the supplier bin over the supplier period plus in the own bin over the
member subperiods must be at least ``1/(µ+3)`` of the total length —
inequalities (0) and (3) of the paper, the engine of Theorem 1.

The demand we compute is the *full* demand of each bin over the window
(every resident item, not only the paper's selected subsets), which is
an over-count of the left-hand side — so the check is implied by the
paper's inequality and must pass whenever the analysis is correct.
A second, stricter variant restricts the own-bin demand to the opener
items only, matching the paper's accounting for the l-subperiod side.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bins import Bin
from ..core.intervals import Interval
from ..core.result import PackingResult
from .supplier import ConsolidatedGroup, SupplierAnalysis, analyze_suppliers

__all__ = ["GroupAmortization", "amortization_report", "bin_demand_over"]


def bin_demand_over(b: Bin, window: Interval) -> float:
    """Time–space demand served by bin ``b`` inside ``window``.

    ``Σ_items size · |item interval ∩ window|`` over every item ever
    placed in the bin.
    """
    total = 0.0
    for it in b.all_items:
        total += it.size * it.interval.intersection(window).length
    return total


@dataclass(frozen=True)
class GroupAmortization:
    """Inequality (0)/(3) evaluated for one group."""

    group: ConsolidatedGroup
    supplier_demand: float  # d(u(x)) — full supplier-bin demand over u
    own_demand_full: float  # full own-bin demand over the member subperiods
    own_demand_openers: float  # openers only (the paper's accounting)
    total_length: float  # |u(x)| + Σ|x|
    required_level: float  # 1/(µ+3)

    @property
    def measured_level_full(self) -> float:
        if self.total_length <= 0:
            return float("inf")
        return (self.supplier_demand + self.own_demand_full) / self.total_length

    @property
    def measured_level_openers(self) -> float:
        if self.total_length <= 0:
            return float("inf")
        return (self.supplier_demand + self.own_demand_openers) / self.total_length

    @property
    def holds(self) -> bool:
        """The paper-faithful (openers-only) inequality."""
        return self.measured_level_openers >= self.required_level - 1e-9


def amortization_report(
    result: PackingResult, analysis: SupplierAnalysis | None = None
) -> list[GroupAmortization]:
    """Evaluate the amortised-level inequality for every group."""
    if analysis is None:
        analysis = analyze_suppliers(result)
    mu = result.items.mu
    required = 1.0 / (mu + 3.0)
    out: list[GroupAmortization] = []
    for g in analysis.groups:
        supplier_bin = result.bins[g.supplier_index]
        own_bin = result.bins[g.bin_index]
        supplier_demand = bin_demand_over(supplier_bin, g.supplier_period)
        own_full = sum(bin_demand_over(own_bin, m.interval) for m in g.members)
        own_openers = sum(
            m.opener.size * m.opener.interval.intersection(m.interval).length
            for m in g.members
        )
        out.append(
            GroupAmortization(
                group=g,
                supplier_demand=supplier_demand,
                own_demand_full=own_full,
                own_demand_openers=own_openers,
                total_length=g.supplier_period.length + g.own_length,
                required_level=required,
            )
        )
    return out
