"""Mechanisation of the paper's competitive analysis (Sections IV–VII)."""

from .amortization import GroupAmortization, amortization_report, bin_demand_over
from .augmentation import augment_capacity, augmented_ratio
from .bounds import KNOWN_BOUNDS, BoundEntry, bounds_table, theorem1_upper_bound
from .subperiods import (
    SMALL_ITEM_THRESHOLD,
    BinSubperiods,
    HSubperiod,
    LSubperiod,
    build_subperiods,
    select_small_items,
)
from .supplier import (
    ConsolidatedGroup,
    SupplierAnalysis,
    SupplierAssignment,
    analyze_suppliers,
)
from .usage_periods import (
    BinPeriods,
    UsagePeriodDecomposition,
    decompose_usage_periods,
)
from .verification import AnalysisReport, Violation, theorem1_slack, verify_analysis

__all__ = [
    "AnalysisReport",
    "GroupAmortization",
    "amortization_report",
    "bin_demand_over",
    "augment_capacity",
    "augmented_ratio",
    "BinPeriods",
    "BinSubperiods",
    "BoundEntry",
    "ConsolidatedGroup",
    "HSubperiod",
    "KNOWN_BOUNDS",
    "LSubperiod",
    "SMALL_ITEM_THRESHOLD",
    "SupplierAnalysis",
    "SupplierAssignment",
    "UsagePeriodDecomposition",
    "Violation",
    "analyze_suppliers",
    "bounds_table",
    "build_subperiods",
    "decompose_usage_periods",
    "select_small_items",
    "theorem1_slack",
    "theorem1_upper_bound",
    "verify_analysis",
]
