"""Resource augmentation analysis.

The paper's reference [5] (Chan, Wong, Yung) studies dynamic bin packing
under *resource augmentation*: the online algorithm's bins have capacity
``1 + ε`` while the adversary's have capacity 1.  Augmentation is the
standard lens for "how much extra hardware buys how much competitiveness"
— here it means renting slightly larger servers than the adversary is
charged for.

:func:`augmented_ratio` packs the instance into capacity-``(1+ε)`` bins
and divides by the *unit-capacity* OPT lower bound; experiment X6 sweeps
ε and shows the measured worst ratios decay toward 1 (and in particular
the §VIII Next Fit gadget collapses as soon as ε ≥ 1/n lets the pair
leader join the previous bin).
"""

from __future__ import annotations

from ..algorithms.base import PackingAlgorithm
from ..core.items import Item, ItemList
from ..core.packing import run_packing
from ..opt.opt_total import OptTotalBracket, opt_total

__all__ = ["augmented_ratio", "augment_capacity"]


def augment_capacity(items: ItemList, epsilon: float) -> ItemList:
    """The same instance re-hosted on capacity ``(1+ε)`` bins.

    Item sizes are unchanged; only the bin capacity grows, exactly as in
    the resource-augmentation model.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return ItemList(
        (Item(it.item_id, it.size, it.arrival, it.departure) for it in items),
        capacity=items.capacity * (1.0 + epsilon),
    )


def augmented_ratio(
    items: ItemList,
    algorithm: PackingAlgorithm,
    epsilon: float,
    opt: OptTotalBracket | None = None,
    node_budget: int = 100_000,
) -> float:
    """``ALG_{(1+ε)·C}(R) / OPT_C(R)`` — the augmented competitive ratio.

    ``opt`` (the *unit*-capacity adversary) may be passed in to share one
    computation across an ε sweep.
    """
    if opt is None:
        opt = opt_total(items, node_budget=node_budget)
    if opt.lower <= 0:
        raise ValueError("degenerate instance: OPT lower bound is zero")
    augmented = augment_capacity(items, epsilon)
    result = run_packing(augmented, algorithm, capacity=augmented.capacity)
    return result.total_usage_time / opt.lower
