"""Empirical verification of the paper's propositions and lemmas.

The analysis of Sections IV–VII is a chain of structural claims about
First Fit packings.  Each claim below is checked *mechanically* on a
concrete packing result; the property-based tests run these checkers
over randomized and adversarial instances.

Checked claims
--------------
- **Eq. (1)** (Section IV): the ``W_k`` are disjoint, sum to the span,
  and ``FF_total = Σ|V_k| + span``.
- **P3**: every l-subperiod has length ≤ µ (in instance time units,
  µ·min_duration = max_duration).
- **P4**: a small item is placed at each l-subperiod's left endpoint.
- **P5**: consecutive l-subperiods sum to more than µ.
- **P6**: bin level ≥ 1/2 throughout h-subperiods.
- **Supplier levels**: at an l-subperiod's left endpoint, every
  lower-indexed open bin (in particular the supplier) has level
  ``> 1 − s(opener)`` — the First Fit guarantee the whole Section VII
  accounting rests on.
- **Lemma 1**: consolidated supplier periods are shorter than
  ``2·Σ|x_{l,k}|/(µ+1)`` — the length bound Section VII's consolidated
  amortisation needs.
- **Lemma 2**: supplier periods associated with the same supplier bin
  do not intersect (reported, with the parameter choices recorded —
  see the reconstruction note in :mod:`repro.analysis.supplier`).
- **Theorem-1 inequality chain**: the directly computable consequence
  ``FF_total ≤ (µ+3)·(time–space demand) + span`` — both sides known in
  closed form, no OPT solver needed — and, when an OPT bracket is
  supplied, the headline ``FF_total ≤ (µ+4)·OPT_total``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.intervals import Interval, intervals_intersect
from ..core.result import PackingResult
from .subperiods import SMALL_ITEM_THRESHOLD, build_subperiods
from .supplier import SupplierAnalysis, analyze_suppliers
from .usage_periods import decompose_usage_periods

__all__ = ["Violation", "AnalysisReport", "verify_analysis", "theorem1_slack"]

_EPS = 1e-7


@dataclass(frozen=True)
class Violation:
    """A single failed check."""

    check: str
    context: str
    detail: str


@dataclass
class AnalysisReport:
    """Outcome of running every checker on one packing result."""

    algorithm: str
    mu: float
    violations: list[Violation] = field(default_factory=list)
    #: measured slack of the closed-form Theorem-1 chain:
    #: ((µ+3)·TS + span − FF_total) — must be ≥ 0 for First Fit
    closed_form_slack: float = 0.0
    #: max over consolidated groups of |supplier period| / Σ|x_{l,k}|
    max_supplier_length_ratio: float = 0.0
    num_l_subperiods: int = 0
    num_h_subperiods: int = 0
    num_groups: int = 0
    num_consolidated: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def failures(self, check: str) -> list[Violation]:
        return [v for v in self.violations if v.check == check]


def _min_level_over(b, interval: Interval) -> float:
    """Minimum recorded bin level over a half-open interval.

    The level history is piecewise constant and right-continuous, so the
    minimum over ``[l, r)`` is the min of the level in force at ``l``
    and all levels set by events in ``(l, r)``.
    """
    lvl = 0.0
    mn = None
    for t, level in b.level_history:
        if t <= interval.left + 1e-12:
            lvl = level
        elif t < interval.right - 1e-12:
            if mn is None:
                mn = lvl
            mn = min(mn, level)
        else:
            break
    return lvl if mn is None else min(mn, lvl)


def verify_analysis(
    result: PackingResult,
    check_lemma2: bool = True,
    pair_coefficient: Optional[float] = None,
    radius_divisor: Optional[float] = None,
) -> AnalysisReport:
    """Run every structural checker on a packing result.

    Propositions 3–6 and the supplier-level facts are properties of
    *First Fit* packings; running this on other algorithms' results is
    allowed (the usage-period checks still apply) but supplier-level
    checks are skipped unless the algorithm is First Fit.
    """
    items = result.items
    report = AnalysisReport(algorithm=result.algorithm_name, mu=items.mu)
    window = items.max_duration
    v = report.violations

    # --- Section IV / Eq. (1) -------------------------------------------
    deco = decompose_usage_periods(result)
    for bp in deco.per_bin:
        if abs(bp.v_length + bp.w_length - bp.usage.length) > _EPS:
            v.append(
                Violation(
                    "eq1-partition",
                    f"bin {bp.index}",
                    f"|V|+|W| = {bp.v_length + bp.w_length} != |U| = {bp.usage.length}",
                )
            )
    ws = [bp.exclusive for bp in deco.per_bin if not bp.exclusive.is_empty]
    for i in range(len(ws)):
        for j in range(i + 1, len(ws)):
            if ws[i].intersects(ws[j]):
                v.append(
                    Violation("eq1-w-disjoint", f"W pair ({i},{j})", f"{ws[i]} ∩ {ws[j]}")
                )
    if abs(deco.total_w - deco.span) > max(_EPS, 1e-9 * deco.span):
        v.append(
            Violation(
                "eq1-w-span", "instance", f"ΣW = {deco.total_w} != span = {deco.span}"
            )
        )
    if abs(deco.total_v + deco.span - result.total_usage_time) > max(
        _EPS, 1e-9 * result.total_usage_time
    ):
        v.append(
            Violation(
                "eq1-total",
                "instance",
                f"ΣV + span = {deco.total_v + deco.span} != "
                f"FF_total = {result.total_usage_time}",
            )
        )

    # --- Section V: subperiods ------------------------------------------
    subs = build_subperiods(result, deco)
    is_ff = result.algorithm_name == "first-fit"
    for bsp in subs:
        ls = bsp.l_subperiods
        report.num_l_subperiods += len(ls)
        report.num_h_subperiods += len(bsp.h_subperiods)
        bin_obj = result.bins[bsp.bin_index]
        for x in ls:
            if x.length > window + _EPS:  # P3
                v.append(
                    Violation("prop3", f"bin {bsp.bin_index} x_l,{x.position}",
                              f"|x| = {x.length} > µ-window = {window}")
                )
            if abs(x.opener.arrival - x.interval.left) > _EPS:  # P4
                v.append(
                    Violation("prop4", f"bin {bsp.bin_index} x_l,{x.position}",
                              "left endpoint is not the opener's arrival")
                )
            if not (x.opener.size < SMALL_ITEM_THRESHOLD):  # P4 (small)
                v.append(
                    Violation("prop4", f"bin {bsp.bin_index} x_l,{x.position}",
                              f"opener size {x.opener.size} is not small")
                )
        for a, b in zip(ls, ls[1:]):  # P5 (consecutive positions only)
            if b.position == a.position + 1:
                if a.length + b.length <= window - _EPS:
                    v.append(
                        Violation("prop5", f"bin {bsp.bin_index} x_l,{a.position}+next",
                                  f"{a.length} + {b.length} <= µ-window = {window}")
                    )
        for y in bsp.h_subperiods:  # P6
            lvl = _min_level_over(bin_obj, y.interval)
            if lvl < SMALL_ITEM_THRESHOLD - _EPS:
                v.append(
                    Violation("prop6", f"bin {bsp.bin_index} x_h,{y.position}",
                              f"min level {lvl} < 1/2 over {y.interval}")
                )

    # --- Sections V–VI: suppliers ----------------------------------------
    if is_ff and any(bsp.l_subperiods for bsp in subs):
        sup = analyze_suppliers(
            result, subs, pair_coefficient=pair_coefficient,
            radius_divisor=radius_divisor,
        )
        report.num_groups = len(sup.groups)
        report.num_consolidated = sum(1 for g in sup.groups if not g.is_single)
        # First Fit guarantee: every lower-indexed open bin rejects the opener
        for asg in sup.assignments:
            x = asg.subperiod
            t = x.interval.left
            for j in range(x.bin_index):
                b = result.bins[j]
                if b.opened_at is not None and b.opened_at <= t + 1e-12 and (
                    b.closed_at is None or b.closed_at > t + 1e-12
                ):
                    lvl = b.level_at(t)
                    if lvl + x.opener.size <= result.items.capacity - _EPS:
                        v.append(
                            Violation(
                                "ff-rejection",
                                f"bin {x.bin_index} x_l,{x.position}",
                                f"open bin {j} at level {lvl} could fit the "
                                f"opener (size {x.opener.size})",
                            )
                        )
        for g in sup.groups:
            if g.own_length > 0:
                ratio = g.supplier_period.length / g.own_length
                report.max_supplier_length_ratio = max(
                    report.max_supplier_length_ratio, ratio
                )
            # Lemma 1: a consolidated supplier period is shorter than
            # 2·Σ|x_{l,k}|/(µ+1) (singles meet it with equality by
            # construction); the bound is what Section VII's consolidated
            # amortisation (inequality (3)) requires.
            if not g.is_single and g.own_length > 0:
                bound = 2.0 * g.own_length / (items.mu + 1.0)
                if g.supplier_period.length > bound + _EPS * max(1.0, bound):
                    v.append(
                        Violation(
                            "lemma1",
                            f"bin {g.bin_index} supplier {g.supplier_index}",
                            f"|u| = {g.supplier_period.length} > "
                            f"2Σ|x|/(µ+1) = {bound}",
                        )
                    )
        if check_lemma2:
            for supplier, groups in sup.groups_by_supplier().items():
                for i in range(len(groups)):
                    for j in range(i + 1, len(groups)):
                        gi, gj = groups[i], groups[j]
                        if gi.supplier_period.intersects(gj.supplier_period):
                            v.append(
                                Violation(
                                    "lemma2",
                                    f"supplier {supplier}",
                                    f"periods {gi.supplier_period} (bin {gi.bin_index})"
                                    f" and {gj.supplier_period} (bin {gj.bin_index})"
                                    " intersect",
                                )
                            )

    # --- Theorem 1 closed-form chain --------------------------------------
    mu = items.mu
    ts = items.time_space_demand / items.capacity
    bound = (mu + 3.0) * ts + items.span
    report.closed_form_slack = bound - result.total_usage_time
    if is_ff and report.closed_form_slack < -_EPS * max(1.0, bound):
        v.append(
            Violation(
                "theorem1-closed-form",
                "instance",
                f"FF_total = {result.total_usage_time} > (µ+3)·TS + span = {bound}",
            )
        )
    return report


def theorem1_slack(result: PackingResult, opt_lower: float) -> float:
    """``(µ+4)·OPT_lower − ALG_total`` — ≥ 0 certifies the Theorem-1 bound.

    Uses the certified OPT lower bound, so a non-negative slack is a
    *conservative* confirmation (the true slack is at least as large).
    """
    mu = result.items.mu
    return (mu + 4.0) * opt_lower - result.total_usage_time
