"""Computing ``OPT_total(R)`` — the repacking adversary's cost.

``OPT_total(R) = ∫ OPT(R, t) dt`` over the packing period
(Section III-C).  Between consecutive event times the set of active
items is constant, so the integral is a finite sum

    ``Σ_intervals OPT(active items) · interval length``.

Each static ``OPT(·)`` is a classical bin packing instance; we solve it
with branch and bound (:func:`repro.opt.bin_packing.exact_bin_count`),
which may return a certified bracket when the instance is too large for
the node budget.  The result is therefore an :class:`OptTotalBracket`
``[lower, upper]`` with ``lower == upper`` whenever every static
instance solved exactly — in this reproduction that is the common case.

Measured competitive ratios are always reported against ``lower`` (an
upper estimate of the true ratio), so Theorem 1's bound can only be
*harder* to satisfy in our measurements, never easier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from ..core.items import Item, ItemList
from .bin_packing import BinCountBracket, exact_bin_count
from .lower_bounds import (
    fractional_ceiling_bound,
    prop1_time_space_bound,
    prop2_span_bound,
)

__all__ = ["OptTotalBracket", "opt_total", "opt_at_times", "competitive_ratio_bracket"]

_EPS = 1e-9


@dataclass(frozen=True)
class OptTotalBracket:
    """Certified bracket on ``OPT_total(R)``.

    ``lower <= OPT_total <= upper``; ``exact`` when they coincide (up to
    float precision).  ``num_intervals`` and ``num_inexact`` report how
    many static instances were solved and how many only bracketed.
    """

    lower: float
    upper: float
    num_intervals: int
    num_inexact: int

    @property
    def exact(self) -> bool:
        return self.num_inexact == 0

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return 0.5 * (self.lower + self.upper)


def _static_brackets(
    items: ItemList, node_budget: int
) -> list[tuple[float, BinCountBracket]]:
    """Per event interval: (length, bin-count bracket for active items)."""
    times = items.event_times()
    out: list[tuple[float, BinCountBracket]] = []
    if len(times) < 2:
        return out

    @lru_cache(maxsize=None)
    def solve(sizes: tuple[float, ...]) -> BinCountBracket:
        return exact_bin_count(sizes, items.capacity, node_budget=node_budget)

    # incremental active set for O(n log n + intervals) sweeping
    arrivals = sorted(items, key=lambda it: it.arrival)
    departures = sorted(items, key=lambda it: it.departure)
    ai = di = 0
    active: dict[int, Item] = {}
    for t0, t1 in zip(times[:-1], times[1:]):
        while di < len(departures) and departures[di].departure <= t0 + _EPS:
            active.pop(departures[di].item_id, None)
            di += 1
        while ai < len(arrivals) and arrivals[ai].arrival <= t0 + _EPS:
            it = arrivals[ai]
            if it.departure > t0 + _EPS:
                active[it.item_id] = it
            ai += 1
        length = t1 - t0
        if not active:
            continue
        sizes = tuple(sorted(it.size for it in active.values()))
        out.append((length, solve(sizes)))
    return out


def opt_total(items: ItemList, node_budget: int = 200_000) -> OptTotalBracket:
    """Bracket ``OPT_total(R)`` by solving bin packing on every interval.

    The returned lower bound is additionally floored at the closed-form
    bounds (Propositions 1–2 and the fractional-ceiling integral), so it
    is valid even if every static instance only bracketed.
    """
    brackets = _static_brackets(items, node_budget)
    lo = sum(length * br.lower for length, br in brackets)
    hi = sum(length * br.upper for length, br in brackets)
    closed_form = max(
        fractional_ceiling_bound(items),
        prop1_time_space_bound(items),
        prop2_span_bound(items),
    )
    lo = max(lo, closed_form)
    return OptTotalBracket(
        lower=lo,
        upper=max(hi, lo),
        num_intervals=len(brackets),
        num_inexact=sum(1 for _, br in brackets if not br.exact),
    )


def opt_at_times(
    items: ItemList, times: Sequence[float], node_budget: int = 200_000
) -> list[BinCountBracket]:
    """``OPT(R, t)`` bracket at each queried time (for plots/inspection)."""
    out: list[BinCountBracket] = []
    for t in times:
        sizes = tuple(sorted(it.size for it in items.active_at(t)))
        if not sizes:
            out.append(BinCountBracket(0, 0))
        else:
            out.append(exact_bin_count(sizes, items.capacity, node_budget=node_budget))
    return out


def competitive_ratio_bracket(
    algorithm_total: float, opt: OptTotalBracket
) -> tuple[float, float]:
    """Bracket of ``ALG/OPT`` given an OPT bracket.

    Returns ``(ratio_lower, ratio_upper)`` where the true ratio lies in
    between; ``ratio_upper`` (ALG / OPT.lower) is the conservative value
    used when checking upper bounds such as Theorem 1.
    """
    if opt.lower <= 0:
        raise ValueError("OPT_total lower bound must be positive")
    return algorithm_total / opt.upper, algorithm_total / opt.lower
