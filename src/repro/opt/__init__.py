"""Offline adversary: classical bin packing solvers and OPT_total."""

from .bin_packing import (
    BinCountBracket,
    exact_bin_count,
    first_fit_decreasing,
    first_fit_static,
    lower_bound_l1,
    lower_bound_l2,
)
from .lower_bounds import (
    combined_lower_bound,
    fractional_ceiling_bound,
    prop1_time_space_bound,
    prop2_span_bound,
)
from .schedule import RepackingSchedule, build_repacking_schedule
from .opt_total import (
    OptTotalBracket,
    competitive_ratio_bracket,
    opt_at_times,
    opt_total,
)

__all__ = [
    "BinCountBracket",
    "RepackingSchedule",
    "build_repacking_schedule",
    "OptTotalBracket",
    "combined_lower_bound",
    "competitive_ratio_bracket",
    "exact_bin_count",
    "first_fit_decreasing",
    "first_fit_static",
    "fractional_ceiling_bound",
    "lower_bound_l1",
    "lower_bound_l2",
    "opt_at_times",
    "opt_total",
    "prop1_time_space_bound",
    "prop2_span_bound",
]
