"""Lower bounds on ``OPT_total(R)`` (Propositions 1 and 2).

The paper's optimal offline adversary may repack all active items at any
instant, so

    ``OPT_total(R) = ∫ OPT(R, t) dt``  over the packing period,

where ``OPT(R, t)`` is the minimum bin count for the items active at
``t``.  Two closed-form lower bounds (Section III-C):

- **Proposition 1**: ``OPT_total(R) ≥ Σ_r s(r)·|I(r)|`` — no bin
  capacity can be wasted, so the integral of the bin count is at least
  the integral of the total active size (the *time–space demand*).
- **Proposition 2**: ``OPT_total(R) ≥ span(R)`` — at least one bin is
  open whenever an item is active.

This module also provides the tighter *fractional-ceiling* bound
``∫ ⌈total active size(t)⌉ dt``, which dominates both propositions and
is cheap to compute exactly (it is piecewise constant between events).
"""

from __future__ import annotations

import math

from ..core.items import ItemList

__all__ = [
    "prop1_time_space_bound",
    "prop2_span_bound",
    "fractional_ceiling_bound",
    "combined_lower_bound",
]

_EPS = 1e-9


def prop1_time_space_bound(items: ItemList) -> float:
    """Proposition 1: total time–space demand, scaled to unit capacity."""
    return items.time_space_demand / items.capacity


def prop2_span_bound(items: ItemList) -> float:
    """Proposition 2: the span of the item list."""
    return items.span


def fractional_ceiling_bound(items: ItemList) -> float:
    """``∫ ⌈S(t)/C⌉ dt`` where ``S(t)`` is total active size at ``t``.

    Piecewise constant between consecutive event times; dominates both
    Propositions (pointwise ``⌈S/C⌉ ≥ S/C`` and ``⌈S/C⌉ ≥ 1`` whenever
    ``S > 0``).
    """
    times = items.event_times()
    if len(times) < 2:
        return 0.0
    # sweep the piecewise-constant total active size
    deltas: dict[float, float] = {}
    for it in items:
        deltas[it.arrival] = deltas.get(it.arrival, 0.0) + it.size
        deltas[it.departure] = deltas.get(it.departure, 0.0) - it.size
    total = 0.0
    level = 0.0
    for t0, t1 in zip(times[:-1], times[1:]):
        level += deltas.get(t0, 0.0)
        if level > _EPS:
            ratio = level / items.capacity
            nearest = round(ratio)
            bins = int(nearest) if abs(ratio - nearest) < 1e-7 else int(math.ceil(ratio))
            total += bins * (t1 - t0)
    return total


def combined_lower_bound(items: ItemList) -> float:
    """Best closed-form lower bound: the fractional-ceiling integral.

    (It dominates Propositions 1 and 2; all three are exposed separately
    for the tests that verify the domination.)
    """
    return fractional_ceiling_bound(items)
