"""A constructive repacking schedule: what the adversary actually does.

``OPT_total`` integrates a *number* (the per-interval optimum bin
count); this module materialises a *schedule* achieving it — an explicit
assignment of active items to bins on every inter-event interval — and
measures how much repacking it needs: the number of item *migrations*
(an item in bin i on one interval, bin j ≠ i on the next).

Two uses:

- it is a constructive witness that the integral is attainable by an
  all-powerful adversary (the upper side of the bracket);
- the migration count quantifies how unrealistic that adversary is —
  the paper's motivation says migration is disallowed "due to high
  migration overheads and penalty", and the schedule shows how much
  overhead the lower bound silently assumes.

Bins are matched greedily between consecutive intervals (maximum
overlap first) to *minimise counted migrations per step* before
comparing assignments, so the reported count does not punish arbitrary
bin relabelling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..core.items import Item, ItemList
from .bin_packing import exact_bin_count, first_fit_static

__all__ = ["RepackingSchedule", "build_repacking_schedule"]

_EPS = 1e-9


@dataclass(frozen=True)
class IntervalAssignment:
    """One inter-event interval with its bin assignment."""

    start: float
    end: float
    #: bins as frozensets of item ids (canonical, order-free)
    bins: tuple[frozenset[int], ...]

    @property
    def length(self) -> float:
        return self.end - self.start

    @property
    def num_bins(self) -> int:
        return len(self.bins)


@dataclass(frozen=True)
class RepackingSchedule:
    """The adversary's full trajectory."""

    intervals: tuple[IntervalAssignment, ...]
    total_usage_time: float  # Σ num_bins · length — equals the OPT integral
    migrations: int  # items that changed bin between consecutive intervals
    exact: bool  # every interval solved to optimality

    @property
    def migrations_per_item_event(self) -> float:
        """Migrations normalised by interval transitions (≥ 0)."""
        steps = max(len(self.intervals) - 1, 1)
        return self.migrations / steps


def _assign_items(sizes_items: list[Item], capacity: float, node_budget: int):
    """Partition active items into an optimal (or FFD) set of bins."""
    sizes = tuple(sorted((it.size for it in sizes_items)))
    bracket = exact_bin_count(sizes, capacity, node_budget=node_budget)
    # rebuild an assignment achieving bracket.upper via first-fit-decreasing
    order = sorted(range(len(sizes_items)), key=lambda i: -sizes_items[i].size)
    groups = first_fit_static([sizes_items[i].size for i in order], capacity)
    bins = tuple(
        frozenset(sizes_items[order[i]].item_id for i in g) for g in groups
    )
    # FFD may exceed the optimum; if so, fall back to branch and bound
    # with assignment tracking only when it pays off
    if len(bins) > bracket.upper:
        bins = _exact_assignment(sizes_items, capacity, bracket.upper, node_budget)
    return bins, bracket.exact and len(bins) == bracket.lower


def _exact_assignment(items: list[Item], capacity: float, target: int, node_budget: int):
    """Branch and bound that returns an actual ≤-target assignment."""
    order = sorted(items, key=lambda it: -it.size)
    best: list[list[int]] | None = None
    nodes = 0

    def recurse(i: int, bins: list[list[int]], levels: list[float]) -> bool:
        nonlocal best, nodes
        nodes += 1
        if nodes > node_budget:
            return True  # give up; caller keeps FFD
        if len(bins) > target:
            return False
        if i == len(order):
            best = [list(b) for b in bins]
            return True
        it = order[i]
        seen: set[float] = set()
        for k in range(len(bins)):
            if levels[k] + it.size <= capacity + _EPS:
                key = round(levels[k], 9)
                if key in seen:
                    continue
                seen.add(key)
                bins[k].append(it.item_id)
                levels[k] += it.size
                if recurse(i + 1, bins, levels):
                    return True
                bins[k].pop()
                levels[k] -= it.size
        if len(bins) < target:
            bins.append([it.item_id])
            levels.append(it.size)
            if recurse(i + 1, bins, levels):
                return True
            bins.pop()
            levels.pop()
        return False

    recurse(0, [], [])
    if best is None:
        # fall back to FFD grouping
        groups = first_fit_static([it.size for it in order], capacity)
        return tuple(frozenset(order[i].item_id for i in g) for g in groups)
    return tuple(frozenset(b) for b in best)


def _count_migrations(
    prev: tuple[frozenset[int], ...], cur: tuple[frozenset[int], ...]
) -> int:
    """Minimum migrations between two assignments, via greedy matching.

    Bins are matched in decreasing-overlap order (counting only items
    present in both assignments); unmatched items count as migrated.
    """
    carried = {iid for b in prev for iid in b} & {iid for b in cur for iid in b}
    if not carried:
        return 0
    pairs = []
    for i, p in enumerate(prev):
        for j, c in enumerate(cur):
            overlap = len((p & c) & carried)
            if overlap:
                pairs.append((overlap, i, j))
    pairs.sort(reverse=True)
    used_prev: set[int] = set()
    used_cur: set[int] = set()
    stayed = 0
    for overlap, i, j in pairs:
        if i in used_prev or j in used_cur:
            continue
        used_prev.add(i)
        used_cur.add(j)
        stayed += len((prev[i] & cur[j]) & carried)
    return len(carried) - stayed


def build_repacking_schedule(
    items: ItemList, node_budget: int = 100_000
) -> RepackingSchedule:
    """Construct the adversary's trajectory for an instance."""
    times = items.event_times()
    intervals: list[IntervalAssignment] = []
    total = 0.0
    migrations = 0
    all_exact = True
    prev_bins: tuple[frozenset[int], ...] | None = None
    for t0, t1 in zip(times[:-1], times[1:]):
        active = items.active_at(t0)
        if not active:
            prev_bins = None
            continue
        bins, exact = _assign_items(active, items.capacity, node_budget)
        all_exact &= exact
        intervals.append(IntervalAssignment(t0, t1, bins))
        total += len(bins) * (t1 - t0)
        if prev_bins is not None:
            migrations += _count_migrations(prev_bins, bins)
        prev_bins = bins
    return RepackingSchedule(
        intervals=tuple(intervals),
        total_usage_time=total,
        migrations=migrations,
        exact=all_exact,
    )
