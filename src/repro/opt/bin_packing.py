"""Classical (static) bin packing solvers.

The paper's offline adversary may *repack everything at any time*
(Section III-C), so ``OPT(R, t)`` — the minimum number of bins holding
the items active at time ``t`` — is an instance of classical bin
packing.  Classical bin packing is NP-hard; this module provides:

- :func:`first_fit_decreasing` — the 11/9·OPT+6/9 approximation, used as
  an upper bound and as the branch-and-bound incumbent;
- :func:`lower_bound_l1` — the ceiling bound ``⌈Σs / C⌉``;
- :func:`lower_bound_l2` — the Martello–Toth L2 bound (dominates L1);
- :func:`exact_bin_count` — exact branch and bound, practical to a few
  dozen items, with a node budget that degrades gracefully to a
  certified bracket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "first_fit_decreasing",
    "first_fit_static",
    "lower_bound_l1",
    "lower_bound_l2",
    "exact_bin_count",
    "BinCountBracket",
]

_EPS = 1e-9


def first_fit_static(sizes: Sequence[float], capacity: float = 1.0) -> list[list[int]]:
    """Static First Fit: pack sizes in given order; returns bins of indices."""
    bins: list[list[int]] = []
    levels: list[float] = []
    for i, s in enumerate(sizes):
        if s > capacity + _EPS:
            raise ValueError(f"size {s} exceeds capacity {capacity}")
        for k, lvl in enumerate(levels):
            if lvl + s <= capacity + _EPS:
                bins[k].append(i)
                levels[k] += s
                break
        else:
            bins.append([i])
            levels.append(s)
    return bins


def first_fit_decreasing(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """Number of bins used by First Fit Decreasing.

    FFD is an upper bound on the optimum and is within
    ``11/9·OPT + 6/9`` of it (Dósa's tight bound).
    """
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    return len(first_fit_static([sizes[i] for i in order], capacity))


def lower_bound_l1(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """``L1 = ⌈Σ sizes / capacity⌉`` — the fractional (area) bound."""
    total = sum(sizes)
    if total <= _EPS:
        return 0
    # guard against float round-up on exact multiples, e.g. 10 × 0.1
    ratio = total / capacity
    nearest = round(ratio)
    if abs(ratio - nearest) < 1e-7:
        return int(nearest)
    return int(math.ceil(ratio))


def lower_bound_l2(sizes: Sequence[float], capacity: float = 1.0) -> int:
    """Martello–Toth L2 lower bound.

    For every threshold ``alpha ∈ (0, C/2]``: items larger than
    ``C − alpha`` each need a private bin; items in
    ``(C/2, C − alpha]`` also cannot share with each other; the small
    items in ``[alpha, C/2]`` can only fill the remaining headroom.
    ``L2 = max_alpha`` of the implied bound, and ``L2 ≥ L1``.
    """
    n = len(sizes)
    if n == 0:
        return 0
    xs = sorted(sizes, reverse=True)
    best = lower_bound_l1(sizes, capacity)
    half = capacity / 2.0
    # candidate thresholds: α → 0 (counts the mutually-conflicting items
    # above C/2 with no small-item credit) plus every distinct size ≤ C/2
    alphas = [0.0] + sorted({s for s in xs if s <= half + _EPS})
    for alpha in alphas:
        n1 = sum(1 for s in xs if s > capacity - alpha + _EPS)
        mid = [s for s in xs if half + _EPS < s <= capacity - alpha + _EPS]
        n2 = len(mid)
        small_total = sum(s for s in xs if alpha - _EPS <= s <= half + _EPS)
        headroom = n2 * capacity - sum(mid)
        extra = small_total - headroom
        if extra > _EPS:
            ratio = extra / capacity
            nearest = round(ratio)
            add = int(nearest) if abs(ratio - nearest) < 1e-7 else int(math.ceil(ratio))
        else:
            add = 0
        best = max(best, n1 + n2 + add)
    return best


@dataclass(frozen=True)
class BinCountBracket:
    """A certified bracket ``lower <= OPT <= upper`` on the bin count."""

    lower: int
    upper: int

    @property
    def exact(self) -> bool:
        return self.lower == self.upper

    @property
    def value(self) -> int:
        """The optimum, when the bracket is tight."""
        if not self.exact:
            raise ValueError(f"bracket [{self.lower}, {self.upper}] is not tight")
        return self.lower


def exact_bin_count(
    sizes: Sequence[float],
    capacity: float = 1.0,
    node_budget: int = 200_000,
) -> BinCountBracket:
    """Exact minimum bin count by branch and bound (bounded search).

    Branches on the largest unplaced item (first-fit branching with
    symmetry breaking: an item may open at most one new bin per node).
    If the node budget is exhausted, returns the best certified bracket
    found so far instead of an exact value.
    """
    xs = sorted((s for s in sizes if s > _EPS), reverse=True)
    n = len(xs)
    if n == 0:
        return BinCountBracket(0, 0)
    if any(s > capacity + _EPS for s in xs):
        raise ValueError("an item exceeds bin capacity")

    lb = lower_bound_l2(xs, capacity)
    ub = first_fit_decreasing(xs, capacity)
    if lb >= ub:
        return BinCountBracket(ub, ub)

    best = ub
    nodes = 0
    budget_exhausted = False

    suffix_total = [0.0] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix_total[i] = suffix_total[i + 1] + xs[i]

    def recurse(i: int, levels: list[float]) -> None:
        nonlocal best, nodes, budget_exhausted
        if budget_exhausted:
            return
        nodes += 1
        if nodes > node_budget:
            budget_exhausted = True
            return
        if i == n:
            best = min(best, len(levels))
            return
        # bound: bins so far + fractional need for the rest in current headroom
        free = sum(capacity - l for l in levels)
        need = suffix_total[i] - free
        extra = 0 if need <= _EPS else int(math.ceil(need / capacity - 1e-9))
        if len(levels) + extra >= best:
            return
        s = xs[i]
        seen_levels: set[float] = set()
        for k in range(len(levels)):
            lvl = levels[k]
            if lvl + s <= capacity + _EPS:
                key = round(lvl, 9)
                if key in seen_levels:
                    continue  # symmetric bin
                seen_levels.add(key)
                levels[k] = lvl + s
                recurse(i + 1, levels)
                levels[k] = lvl
                if budget_exhausted:
                    return
        if len(levels) + 1 < best:
            levels.append(s)
            recurse(i + 1, levels)
            levels.pop()

    recurse(0, [])
    if budget_exhausted:
        return BinCountBracket(lb, best)
    return BinCountBracket(best, best)
