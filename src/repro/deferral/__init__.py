"""Deferred dispatch: patience windows trading wait time for cost."""

from .engine import DeferralResult, run_deferred_first_fit

__all__ = ["DeferralResult", "run_deferred_first_fit"]
