"""Deferred dispatch: trade waiting time for packing quality.

The paper's model places every job the instant it arrives.  Real
dispatchers often may hold a request briefly (matchmaking queues,
batch admission): if a server frees up within the patience window, the
job reuses it instead of forcing a new rental.

Model: a job arriving at ``a`` with duration ``d`` may start at any
``s ∈ [a, a + max_delay]``; once started it runs to ``s + d`` (the
session is served in full, the user just waited).  The dispatcher here
is *lazy first fit*:

- place immediately if any open bin fits;
- otherwise queue the job (FIFO) and retry after every departure;
- at the patience deadline, place unconditionally (new bin if needed).

``max_delay = 0`` reproduces plain First Fit exactly (asserted in
tests).  Experiment X9 sweeps the patience window and reports the
cost/waiting frontier.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from functools import cached_property

from ..core.items import Item, ItemList
from ..core.result import PackingResult
from ..core.state import PackingState

__all__ = ["DeferralResult", "run_deferred_first_fit"]

_EPS = 1e-9

# event kinds, ordered: departures free capacity first, then deadlines
# force placements, then fresh arrivals join the queue
_DEPART, _DEADLINE, _ARRIVE = 0, 1, 2


@dataclass(frozen=True)
class DeferralResult:
    """Packing plus queueing statistics of a deferred dispatch run."""

    packing: PackingResult
    max_delay: float
    waits: dict[int, float]  # item id -> time spent queued

    @property
    def total_usage_time(self) -> float:
        return self.packing.total_usage_time

    @cached_property
    def mean_wait(self) -> float:
        if not self.waits:
            return 0.0
        return sum(self.waits.values()) / len(self.waits)

    @cached_property
    def max_wait(self) -> float:
        return max(self.waits.values(), default=0.0)

    @cached_property
    def delayed_jobs(self) -> int:
        return sum(1 for w in self.waits.values() if w > _EPS)


def run_deferred_first_fit(
    jobs: ItemList, max_delay: float, capacity: float = 1.0
) -> DeferralResult:
    """Lazy First Fit with a patience window of ``max_delay``.

    Durations are taken from the instance (departure − arrival); actual
    departures shift with the start time.
    """
    if max_delay < 0:
        raise ValueError("max_delay must be non-negative")
    if not isinstance(jobs, ItemList):
        jobs = ItemList(jobs, capacity=capacity)

    state = PackingState(capacity=capacity)
    counter = itertools.count()
    heap: list[tuple[float, int, int, object]] = []
    for it in jobs:
        heapq.heappush(heap, (it.arrival, _ARRIVE, next(counter), it))

    queue: list[Item] = []  # FIFO of waiting jobs (original items)
    placed_items: dict[int, Item] = {}  # id -> shifted item actually placed
    waits: dict[int, float] = {}

    def try_place(original: Item, now: float, force: bool) -> bool:
        fitting = state.open_bins_fitting(original.size)
        if not fitting and not force:
            return False
        target = fitting[0] if fitting else None
        shifted = Item(original.item_id, original.size, now, now + original.duration)
        placed = state.place(shifted, target)
        placed_items[original.item_id] = shifted
        waits[original.item_id] = now - original.arrival
        heapq.heappush(
            heap, (shifted.departure, _DEPART, next(counter), shifted)
        )
        return True

    def drain_queue(now: float) -> None:
        # FIFO retry: stop at the first job that still doesn't fit (later
        # jobs must not jump the queue — fairness).  When no bin is open
        # at all, waiting cannot help (capacity only frees from open
        # bins), so the head is placed into a fresh bin unconditionally.
        while queue:
            head = queue[0]
            if state.num_open == 0:
                queue.pop(0)
                try_place(head, now, force=True)
                continue
            if try_place(head, now, force=False):
                queue.pop(0)
                continue
            break

    while heap:
        time, kind, _seq, payload = heapq.heappop(heap)
        state.now = time
        if kind == _DEPART:
            state.depart(payload)
            drain_queue(time)
        elif kind == _ARRIVE:
            item = payload
            if max_delay == 0.0:
                try_place(item, time, force=True)
            elif not queue and try_place(item, time, force=False):
                pass  # placed immediately
            elif not queue and state.num_open == 0:
                # nothing is open: waiting cannot free capacity
                try_place(item, time, force=True)
            else:
                queue.append(item)
                heapq.heappush(
                    heap, (time + max_delay, _DEADLINE, next(counter), item)
                )
        else:  # deadline
            item = payload
            if item.item_id not in placed_items:
                queue.remove(item)
                try_place(item, time, force=True)
                drain_queue(time)

    assert state.num_open == 0
    shifted_list = ItemList(
        (placed_items[it.item_id] for it in jobs), capacity=capacity
    )
    packing = PackingResult(
        items=shifted_list,
        bins=tuple(state.bins),
        algorithm_name=f"deferred-first-fit(delay={max_delay:g})",
        item_bin=dict(state.item_bin),
    )
    return DeferralResult(packing=packing, max_delay=max_delay, waits=waits)
