"""Heterogeneous server fleets: multiple instance types.

The paper's model has one server type (unit capacity); real providers
offer a catalogue.  This module extends the dispatcher to mixed fleets:
placement is still First-Fit-style over *open* servers (of any type),
and a **launch policy** decides which type to rent when nothing open
fits.  The per-type price/capacity trade-off makes the launch decision
non-trivial: big servers amortise better under sustained load, small
ones waste less on stragglers.

This is an extension beyond the paper (single-capacity MinUsageTime DBP
is the µ+4 result's setting); experiment T7 measures how the launch
policy moves real cost on the motivating workload.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from ..core.events import EventKind, event_sequence
from ..core.intervals import Interval
from ..core.items import Item, ItemList
from .billing import BillingPolicy, ContinuousBilling
from .server import InstanceType

__all__ = [
    "DEFAULT_FLEET_CATALOGUE",
    "FleetServer",
    "FleetReport",
    "LaunchPolicy",
    "CheapestFitting",
    "SmallestFitting",
    "BestDensity",
    "FleetDispatcher",
]

_EPS = 1e-9

#: A small realistic catalogue: price grows slightly sublinearly with
#: capacity (volume discount), so neither extreme trivially wins.
DEFAULT_FLEET_CATALOGUE: tuple[InstanceType, ...] = (
    InstanceType("small", capacity=0.5, hourly_price=0.6),
    InstanceType("medium", capacity=1.0, hourly_price=1.0),
    InstanceType("large", capacity=2.0, hourly_price=1.8),
)


@dataclass
class FleetServer:
    """One rented server of a concrete type."""

    server_id: int
    instance_type: InstanceType
    opened_at: float
    closed_at: Optional[float] = None
    level: float = 0.0
    active: dict[int, Item] = field(default_factory=dict)
    jobs: list[int] = field(default_factory=list)

    @property
    def is_open(self) -> bool:
        return self.closed_at is None

    def fits(self, item: Item) -> bool:
        return self.level + item.size <= self.instance_type.capacity + _EPS

    def place(self, item: Item) -> None:
        self.active[item.item_id] = item
        self.jobs.append(item.item_id)
        self.level += item.size

    def remove(self, item: Item, now: float) -> None:
        del self.active[item.item_id]
        self.level -= item.size
        if not self.active:
            self.level = 0.0
            self.closed_at = now

    @property
    def usage(self) -> Interval:
        if self.closed_at is None:
            raise ValueError(f"server {self.server_id} still open")
        return Interval(self.opened_at, self.closed_at)


class LaunchPolicy(abc.ABC):
    """Chooses which instance type to rent for an unplaceable job."""

    name = "abstract"

    @abc.abstractmethod
    def choose_type(
        self, catalogue: tuple[InstanceType, ...], item: Item
    ) -> InstanceType:
        """Pick a type with capacity ≥ the item's size."""

    @staticmethod
    def feasible(
        catalogue: tuple[InstanceType, ...], item: Item
    ) -> list[InstanceType]:
        out = [t for t in catalogue if t.capacity >= item.size - _EPS]
        if not out:
            raise ValueError(
                f"no instance type can host a job of size {item.size}"
            )
        return out


class CheapestFitting(LaunchPolicy):
    """Lowest hourly price among the types the job fits."""

    name = "cheapest-fitting"

    def choose_type(self, catalogue, item):
        return min(self.feasible(catalogue, item), key=lambda t: t.hourly_price)


class SmallestFitting(LaunchPolicy):
    """Smallest capacity that hosts the job (minimal stranding)."""

    name = "smallest-fitting"

    def choose_type(self, catalogue, item):
        return min(self.feasible(catalogue, item), key=lambda t: t.capacity)


class BestDensity(LaunchPolicy):
    """Lowest price per unit capacity (best amortisation if filled)."""

    name = "best-density"

    def choose_type(self, catalogue, item):
        return min(
            self.feasible(catalogue, item),
            key=lambda t: t.hourly_price / t.capacity,
        )


@dataclass(frozen=True)
class FleetReport:
    """Cost accounting of a heterogeneous dispatch run."""

    servers: tuple[FleetServer, ...]
    billing_name: str
    launch_policy: str
    costs: tuple[float, ...]  # aligned with servers

    @cached_property
    def total_cost(self) -> float:
        return sum(self.costs)

    @cached_property
    def total_usage_time(self) -> float:
        return sum(s.usage.length for s in self.servers)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    def cost_by_type(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s, c in zip(self.servers, self.costs):
            out[s.instance_type.name] = out.get(s.instance_type.name, 0.0) + c
        return out

    def servers_by_type(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.servers:
            out[s.instance_type.name] = out.get(s.instance_type.name, 0) + 1
        return out


class FleetDispatcher:
    """First-Fit placement over a mixed fleet with a launch policy.

    Placement scans open servers in launch order and uses the first that
    fits (the paper's rule, lifted to heterogeneous capacities).  When
    none fits, ``launch_policy`` picks the type of the new server.
    """

    def __init__(
        self,
        catalogue: tuple[InstanceType, ...] = DEFAULT_FLEET_CATALOGUE,
        launch_policy: LaunchPolicy | None = None,
        billing: BillingPolicy | None = None,
    ):
        if not catalogue:
            raise ValueError("catalogue must be non-empty")
        self.catalogue = catalogue
        self.launch_policy = launch_policy or SmallestFitting()
        self.billing = billing or ContinuousBilling()

    def dispatch(self, jobs: ItemList) -> FleetReport:
        max_cap = max(t.capacity for t in self.catalogue)
        for it in jobs:
            if it.size > max_cap + _EPS:
                raise ValueError(
                    f"job {it.item_id} (size {it.size}) exceeds the largest "
                    f"instance capacity {max_cap}"
                )
        servers: list[FleetServer] = []
        open_servers: list[FleetServer] = []
        where: dict[int, FleetServer] = {}
        for event in event_sequence(jobs):
            if event.kind is EventKind.ARRIVE:
                item = event.item
                target = next((s for s in open_servers if s.fits(item)), None)
                if target is None:
                    itype = self.launch_policy.choose_type(self.catalogue, item)
                    target = FleetServer(
                        server_id=len(servers),
                        instance_type=itype,
                        opened_at=event.time,
                    )
                    servers.append(target)
                    open_servers.append(target)
                target.place(item)
                where[item.item_id] = target
            else:
                s = where[event.item.item_id]
                s.remove(event.item, event.time)
                if not s.is_open:
                    open_servers.remove(s)
        assert not open_servers, "all servers must close after the last departure"
        costs = tuple(
            self.billing.billed_time(s.usage) * s.instance_type.hourly_price
            for s in servers
        )
        return FleetReport(
            servers=tuple(servers),
            billing_name=type(self.billing).__name__,
            launch_policy=self.launch_policy.name,
            costs=costs,
        )
