"""Warm-server retention: keep an empty server rented for reuse.

In the paper's model a bin closes the instant its last item departs and
is never reused.  Under *continuous* billing that is optimal — idle time
is pure cost.  Under *hourly* billing it wastes money the other way:
the tail of the last billed hour is already paid for, so releasing an
empty server early buys nothing, while keeping it warm lets the next
job reuse it for free (the classic EC2 "hold until the hour boundary"
operations rule).

A caution the experiments make visible: the *hold itself* is free, but a
reuse changes every later placement — the reused server's rental can be
extended into hours that two separate rentals would not have touched, so
the system-wide bill under hour-boundary retention is *usually* lower
but not provably never higher.  T8 reports both directions honestly.

:class:`RetentionDispatcher` extends First-Fit dispatch with a
:class:`RetentionPolicy` deciding, each time a server empties, how long
to keep it rentable.  A warm server that receives a job resumes the same
rental (one contiguous billed period); a warm server whose hold expires
is released retroactively at its configured release time.

Experiment T8 measures the effect: under hourly billing the
hour-boundary policy typically saves a few percent; under continuous
billing any retention is a pure loss.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional

from ..core.events import EventKind, event_sequence
from ..core.intervals import Interval
from ..core.items import Item, ItemList
from .billing import BillingPolicy, ContinuousBilling
from .server import InstanceType

__all__ = [
    "RetentionPolicy",
    "NoRetention",
    "FixedCooldown",
    "BilledHourBoundary",
    "RetainedServer",
    "RetentionReport",
    "RetentionDispatcher",
]

_EPS = 1e-9


class RetentionPolicy(abc.ABC):
    """Given an emptying server, decide how long it stays rentable."""

    name = "abstract"

    @abc.abstractmethod
    def hold_until(self, opened_at: float, emptied_at: float) -> float:
        """Latest time the empty server remains available (≥ emptied_at)."""


class NoRetention(RetentionPolicy):
    """Release immediately — the paper's bin-closing semantics."""

    name = "no-retention"

    def hold_until(self, opened_at: float, emptied_at: float) -> float:
        return emptied_at


@dataclass(frozen=True)
class FixedCooldown(RetentionPolicy):
    """Keep every emptied server warm for a fixed window."""

    cooldown: float
    name: str = "fixed-cooldown"

    def __post_init__(self) -> None:
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")

    def hold_until(self, opened_at: float, emptied_at: float) -> float:
        return emptied_at + self.cooldown


@dataclass(frozen=True)
class BilledHourBoundary(RetentionPolicy):
    """Hold until the end of the already-billed quantum.

    With quantum-q billing the rental is billed to
    ``opened_at + q·⌈(emptied_at − opened_at)/q⌉`` anyway; holding until
    that boundary never increases *this server's* bill (see the module
    docstring for the system-wide caveat).
    """

    quantum: float = 1.0
    name: str = "hour-boundary"

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")

    def hold_until(self, opened_at: float, emptied_at: float) -> float:
        used = emptied_at - opened_at
        quanta = used / self.quantum
        nearest = round(quanta)
        if abs(quanta - nearest) < 1e-9:
            quanta = nearest
        else:
            quanta = math.ceil(quanta)
        return opened_at + max(quanta, 1) * self.quantum


@dataclass
class RetainedServer:
    """A server whose rental may span several busy episodes."""

    server_id: int
    opened_at: float
    level: float = 0.0
    active: dict[int, Item] = field(default_factory=dict)
    jobs: list[int] = field(default_factory=list)
    #: None while busy; while warm, the time the hold expires
    warm_until: Optional[float] = None
    released_at: Optional[float] = None

    @property
    def is_busy(self) -> bool:
        return self.released_at is None and bool(self.active)

    @property
    def is_warm(self) -> bool:
        return self.released_at is None and not self.active and self.warm_until is not None

    def available_at(self, t: float, size: float, capacity: float) -> bool:
        if self.released_at is not None:
            return False
        if self.is_warm and self.warm_until < t - _EPS:
            return False  # hold expired (release is applied lazily)
        return self.level + size <= capacity + _EPS

    @property
    def rental(self) -> Interval:
        if self.released_at is None:
            raise ValueError(f"server {self.server_id} not released")
        return Interval(self.opened_at, self.released_at)


@dataclass(frozen=True)
class RetentionReport:
    """Costs of a retention-aware dispatch run."""

    servers: tuple[RetainedServer, ...]
    policy_name: str
    billing_name: str
    costs: tuple[float, ...]

    @cached_property
    def total_cost(self) -> float:
        return sum(self.costs)

    @cached_property
    def total_rented_time(self) -> float:
        return sum(s.rental.length for s in self.servers)

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @cached_property
    def num_reuses(self) -> int:
        """Jobs that landed on a previously-emptied (warm) server."""
        return self._reuses

    # populated by the dispatcher before freezing
    _reuses: int = 0


class RetentionDispatcher:
    """First Fit over busy + warm servers, with a retention policy."""

    def __init__(
        self,
        retention: RetentionPolicy | None = None,
        billing: BillingPolicy | None = None,
        instance_type: InstanceType = InstanceType("standard", 1.0, 1.0),
    ):
        self.retention = retention or NoRetention()
        self.billing = billing or ContinuousBilling()
        self.instance_type = instance_type

    def dispatch(self, jobs: ItemList) -> RetentionReport:
        capacity = self.instance_type.capacity
        servers: list[RetainedServer] = []
        where: dict[int, RetainedServer] = {}
        reuses = 0

        def release_expired(now: float) -> None:
            for s in servers:
                if s.is_warm and s.warm_until < now - _EPS:
                    s.released_at = s.warm_until
                    s.warm_until = None

        for event in event_sequence(jobs):
            release_expired(event.time)
            if event.kind is EventKind.ARRIVE:
                item = event.item
                target = next(
                    (
                        s
                        for s in servers
                        if s.available_at(event.time, item.size, capacity)
                    ),
                    None,
                )
                if target is None:
                    target = RetainedServer(
                        server_id=len(servers), opened_at=event.time
                    )
                    servers.append(target)
                elif target.is_warm:
                    reuses += 1
                target.warm_until = None
                target.active[item.item_id] = item
                target.jobs.append(item.item_id)
                target.level += item.size
                where[item.item_id] = target
            else:
                s = where[event.item.item_id]
                del s.active[event.item.item_id]
                s.level -= event.item.size
                if not s.active:
                    s.level = 0.0
                    s.warm_until = self.retention.hold_until(
                        s.opened_at, event.time
                    )
        # simulation over: every warm server is charged to its hold end
        for s in servers:
            if s.released_at is None:
                s.released_at = s.warm_until if s.warm_until is not None else 0.0
                s.warm_until = None

        costs = tuple(
            self.billing.billed_time(s.rental) * self.instance_type.hourly_price
            for s in servers
        )
        report = RetentionReport(
            servers=tuple(servers),
            policy_name=self.retention.name,
            billing_name=type(self.billing).__name__,
            costs=costs,
        )
        object.__setattr__(report, "_reuses", reuses)
        return report
