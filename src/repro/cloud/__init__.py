"""Cloud server allocation layer: billing, servers, dispatching."""

from .billing import (
    BillingPolicy,
    ContinuousBilling,
    HourlyBilling,
    PerSecondBilling,
)
from .dispatcher import ConcurrencyMeter, DispatchReport, Dispatcher
from .fleet import (
    DEFAULT_FLEET_CATALOGUE,
    BestDensity,
    CheapestFitting,
    FleetDispatcher,
    FleetReport,
    FleetServer,
    LaunchPolicy,
    SmallestFitting,
)
from .retention import (
    BilledHourBoundary,
    FixedCooldown,
    NoRetention,
    RetainedServer,
    RetentionDispatcher,
    RetentionPolicy,
    RetentionReport,
)
from .gaming_service import (
    GamingComparison,
    GamingScenario,
    run_gaming_comparison,
)
from .server import InstanceType, ServerRecord

__all__ = [
    "BestDensity",
    "BilledHourBoundary",
    "FixedCooldown",
    "NoRetention",
    "RetainedServer",
    "RetentionDispatcher",
    "RetentionPolicy",
    "RetentionReport",
    "BillingPolicy",
    "CheapestFitting",
    "DEFAULT_FLEET_CATALOGUE",
    "FleetDispatcher",
    "FleetReport",
    "FleetServer",
    "LaunchPolicy",
    "SmallestFitting",
    "ContinuousBilling",
    "DispatchReport",
    "ConcurrencyMeter",
    "Dispatcher",
    "GamingComparison",
    "GamingScenario",
    "HourlyBilling",
    "InstanceType",
    "PerSecondBilling",
    "ServerRecord",
    "run_gaming_comparison",
]
