"""The online job dispatcher — the paper's application wrapper.

"Cloud-based systems often face the problem of dispatching a stream of
jobs to run on cloud servers in an online manner" (Section I).  The
dispatcher owns the translation: jobs = items, servers = bins, renting
cost = billed usage time.  Placement is delegated to any
:class:`~repro.algorithms.base.PackingAlgorithm`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

from ..algorithms.base import PackingAlgorithm
from ..core.items import ItemList
from ..core.packing import PackingObserver, run_packing
from ..core.result import PackingResult
from .billing import BillingPolicy, ContinuousBilling
from .server import InstanceType, ServerRecord

__all__ = ["ConcurrencyMeter", "DispatchReport", "Dispatcher", "LiveDispatch"]


class ConcurrencyMeter:
    """Observer tracking how many servers run concurrently.

    Written against the unified engine's shared state surface
    (``event.time`` and ``state.num_open``), so the same instance meters
    a scalar :func:`~repro.core.packing.run_packing` run or a vector
    :func:`~repro.multidim.packing.run_vector_packing` run unchanged.
    Records the peak and the time-weighted mean number of open servers
    (each inter-event interval is attributed to the concurrency that
    held *during* it, i.e. before the event applied).
    """

    def __init__(self) -> None:
        self.peak_open: int = 0
        self._last_time: Optional[float] = None
        self._prev_open: int = 0
        self._weighted: float = 0.0
        self._span: float = 0.0

    def __call__(self, event, state) -> None:
        if self._last_time is not None:
            dt = event.time - self._last_time
            self._weighted += self._prev_open * dt
            self._span += dt
        self._last_time = event.time
        self._prev_open = state.num_open
        if state.num_open > self.peak_open:
            self.peak_open = state.num_open

    @property
    def mean_open(self) -> float:
        """Time-weighted mean concurrency over the observed span."""
        return self._weighted / self._span if self._span else 0.0

DEFAULT_INSTANCE = InstanceType("standard", capacity=1.0, hourly_price=1.0)


@dataclass(frozen=True)
class DispatchReport:
    """Cost accounting of one dispatch run."""

    packing: PackingResult
    servers: tuple[ServerRecord, ...]
    billing_name: str

    @cached_property
    def total_cost(self) -> float:
        return sum(s.cost for s in self.servers)

    @cached_property
    def total_billed_time(self) -> float:
        return sum(s.billed_time for s in self.servers)

    @property
    def total_usage_time(self) -> float:
        """The paper's objective (continuous time, before billing)."""
        return self.packing.total_usage_time

    @property
    def num_servers(self) -> int:
        return len(self.servers)

    @cached_property
    def billing_overhead(self) -> float:
        """Billed time / actual usage time — quantisation waste (≥ 1)."""
        if self.total_usage_time == 0:
            return 1.0
        return self.total_billed_time / self.total_usage_time

    def summary(self) -> str:
        return (
            f"{self.packing.algorithm_name} + {self.billing_name}: "
            f"{self.num_servers} servers, usage {self.total_usage_time:.2f} h, "
            f"billed {self.total_billed_time:.2f} h, cost {self.total_cost:.2f}"
        )


class Dispatcher:
    """Assign a stream of jobs to rented servers with an online policy.

    >>> from repro import FirstFit
    >>> from repro.workloads import gaming_workload
    >>> d = Dispatcher(FirstFit())
    >>> report = d.dispatch(gaming_workload(100, seed=7))
    >>> report.total_cost > 0
    True
    """

    def __init__(
        self,
        algorithm: PackingAlgorithm,
        billing: BillingPolicy | None = None,
        instance_type: InstanceType = DEFAULT_INSTANCE,
    ):
        self.algorithm = algorithm
        self.billing = billing if billing is not None else ContinuousBilling()
        self.instance_type = instance_type

    def dispatch(
        self,
        jobs: ItemList,
        observers: Sequence[PackingObserver] = (),
    ) -> DispatchReport:
        """Run the full arrival/departure stream and bill the servers.

        ``observers`` are forwarded to the unified packing driver and
        invoked after every applied event — e.g. a
        :class:`ConcurrencyMeter` for fleet-size statistics.
        """
        packing = run_packing(
            jobs,
            self.algorithm,
            capacity=self.instance_type.capacity,
            observers=observers,
        )
        servers = tuple(
            ServerRecord.from_bin(b, self.instance_type, self.billing)
            for b in packing.bins
        )
        return DispatchReport(
            packing=packing,
            servers=servers,
            billing_name=type(self.billing).__name__,
        )

    def live(self, **engine_kwargs) -> "LiveDispatch":
        """The streaming counterpart of :meth:`dispatch`.

        Returns a :class:`LiveDispatch` whose engine places jobs as they
        are pushed and **bills each server the moment it shuts down** —
        the running cost is observable mid-stream, which the batch path
        cannot offer.  Keyword arguments are forwarded to
        :meth:`repro.service.engine.StreamingEngine.scalar` (admission
        policy, metrics registry, decision log, observers).
        """
        # deferred import: the cloud layer may be used without the
        # service layer, and service → core must stay cloud-free
        from ..service.engine import StreamingEngine

        engine = StreamingEngine.scalar(
            self.algorithm, capacity=self.instance_type.capacity, **engine_kwargs
        )
        return LiveDispatch(self, engine)


class LiveDispatch:
    """A dispatcher bound to a streaming engine, billing servers live.

    Delegates the push API (``submit`` / ``depart`` / ``advance``) to
    the underlying :class:`~repro.service.engine.StreamingEngine`; every
    bin-close event immediately produces a :class:`ServerRecord`, so
    :attr:`cost_so_far` tracks the bill in real time.  :meth:`settle`
    drains the stream and returns the same :class:`DispatchReport` the
    batch path produces.
    """

    def __init__(self, dispatcher: Dispatcher, engine):
        self.dispatcher = dispatcher
        self.engine = engine
        self.records: list[ServerRecord] = []
        self.cost_so_far: float = 0.0
        engine.bin_closed_callbacks.append(self._on_bin_closed)

    def _on_bin_closed(self, b) -> None:
        record = ServerRecord.from_bin(
            b, self.dispatcher.instance_type, self.dispatcher.billing
        )
        self.records.append(record)
        self.cost_so_far += record.cost

    # -- push API -------------------------------------------------------------
    def submit(self, job, **kwargs):
        return self.engine.submit(job, **kwargs)

    def depart(self, job_id: int, now=None) -> None:
        self.engine.depart(job_id, now)

    def advance(self, now: float) -> int:
        return self.engine.advance(now)

    def settle(self) -> DispatchReport:
        """Drain the stream and produce the final cost accounting."""
        packing = self.engine.finish()
        return DispatchReport(
            packing=packing,
            servers=tuple(sorted(self.records, key=lambda r: r.server_id)),
            billing_name=type(self.dispatcher.billing).__name__,
        )
