"""Pay-as-you-go billing policies.

The paper's objective (total bin usage time) corresponds to *continuous*
pay-as-you-go billing at a constant price per unit time: "the cost of
renting each cloud server is proportional to its running hours".  Real
providers quantise: classic EC2 billed whole hours (the paper's
reference [1]); modern clouds bill per second with a minimum.  The
billing policy is orthogonal to packing, so it is a small strategy
object applied to each server's usage period.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from ..core.intervals import Interval

__all__ = [
    "BillingPolicy",
    "ContinuousBilling",
    "HourlyBilling",
    "PerSecondBilling",
]


class BillingPolicy(abc.ABC):
    """Maps a server usage period to money."""

    @abc.abstractmethod
    def cost(self, usage: Interval) -> float:
        """Cost of renting a server for the given usage period."""

    @abc.abstractmethod
    def billed_time(self, usage: Interval) -> float:
        """The billed duration (before multiplying by the price)."""


@dataclass(frozen=True)
class ContinuousBilling(BillingPolicy):
    """Exact proportional billing — the paper's cost model.

    ``cost = price_per_hour · usage length``; minimising total cost is
    exactly the MinUsageTime DBP objective.
    """

    price_per_hour: float = 1.0

    def billed_time(self, usage: Interval) -> float:
        return usage.length

    def cost(self, usage: Interval) -> float:
        return self.price_per_hour * self.billed_time(usage)


@dataclass(frozen=True)
class HourlyBilling(BillingPolicy):
    """Whole-quantum billing (classic EC2: full hours, reference [1]).

    Usage is rounded up to a multiple of ``quantum`` hours.  A server
    open for 0 time (never happens in practice) costs nothing.
    """

    price_per_hour: float = 1.0
    quantum: float = 1.0

    def __post_init__(self) -> None:
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")

    def billed_time(self, usage: Interval) -> float:
        length = usage.length
        if length <= 0:
            return 0.0
        quanta = length / self.quantum
        nearest = round(quanta)
        if abs(quanta - nearest) < 1e-9:  # exact multiples don't round up
            quanta = nearest
        else:
            quanta = math.ceil(quanta)
        return quanta * self.quantum

    def cost(self, usage: Interval) -> float:
        return self.price_per_hour * self.billed_time(usage)


@dataclass(frozen=True)
class PerSecondBilling(BillingPolicy):
    """Per-second billing with a minimum charge (modern EC2/GCE style).

    ``minimum_hours`` is the floor on billed time per server launch.
    """

    price_per_hour: float = 1.0
    minimum_hours: float = 1.0 / 60.0  # one minute

    def billed_time(self, usage: Interval) -> float:
        if usage.length <= 0:
            return 0.0
        return max(usage.length, self.minimum_hours)

    def cost(self, usage: Interval) -> float:
        return self.price_per_hour * self.billed_time(usage)
