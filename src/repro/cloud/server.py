"""Cloud server model: a bin with an instance type and a price."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.bins import Bin
from ..core.intervals import Interval
from .billing import BillingPolicy

__all__ = ["InstanceType", "ServerRecord"]


@dataclass(frozen=True)
class InstanceType:
    """A rentable server flavour.

    ``capacity`` is the schedulable resource (the paper's unit bin
    capacity — e.g. the GPU of a cloud-gaming server), ``hourly_price``
    its pay-as-you-go rate.
    """

    name: str
    capacity: float = 1.0
    hourly_price: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError("capacity must be positive")
        if self.hourly_price < 0:
            raise ValueError("hourly_price must be non-negative")


@dataclass(frozen=True)
class ServerRecord:
    """One rented server over its lifetime, with its billed cost."""

    server_id: int
    instance_type: InstanceType
    usage: Interval
    jobs: tuple[int, ...]  # item ids served
    billed_time: float
    cost: float

    @classmethod
    def from_bin(
        cls, b: Bin, instance_type: InstanceType, billing: BillingPolicy
    ) -> "ServerRecord":
        usage = b.usage_period
        billed = billing.billed_time(usage)
        return cls(
            server_id=b.index,
            instance_type=instance_type,
            usage=usage,
            jobs=tuple(it.item_id for it in b.all_items),
            billed_time=billed,
            # the billing policy shapes the billed time; the instance
            # type carries the rate (avoids double-counting a price
            # configured on both objects)
            cost=billed * instance_type.hourly_price,
        )
