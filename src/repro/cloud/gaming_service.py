"""Cloud gaming provider simulation (Section I's motivating scenario).

A provider rents GPU servers from a public cloud and assigns each
incoming play request to a server with enough free GPU share; instances
never migrate.  This module runs that scenario end to end for a set of
candidate dispatch policies and produces the cost comparison used by
experiment T6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..core.items import ItemList
from ..workloads.gaming import gaming_workload
from .billing import BillingPolicy, ContinuousBilling, HourlyBilling
from .dispatcher import Dispatcher, DispatchReport
from .server import InstanceType

__all__ = ["GamingScenario", "GamingComparison", "run_gaming_comparison"]

DEFAULT_ALGORITHMS = ("first-fit", "best-fit", "worst-fit", "next-fit", "hybrid-first-fit")


@dataclass(frozen=True)
class GamingScenario:
    """A provider scenario: demand level + billing + server flavour."""

    name: str
    num_sessions: int
    request_rate: float
    seed: int
    billing: BillingPolicy = ContinuousBilling()
    instance_type: InstanceType = InstanceType("gpu", capacity=1.0, hourly_price=1.0)

    def workload(self) -> ItemList:
        return gaming_workload(
            self.num_sessions, seed=self.seed, request_rate=self.request_rate
        )


@dataclass(frozen=True)
class GamingComparison:
    """Per-algorithm dispatch reports for one scenario."""

    scenario: GamingScenario
    reports: dict[str, DispatchReport]

    def best_algorithm(self) -> str:
        """Name of the cheapest policy for this scenario."""
        return min(self.reports, key=lambda name: self.reports[name].total_cost)

    def cost_table(self) -> str:
        lines = [
            f"Scenario {self.scenario.name!r}: {self.scenario.num_sessions} sessions, "
            f"rate {self.scenario.request_rate}/h, "
            f"billing {type(self.scenario.billing).__name__}",
            f"{'algorithm':22s} {'servers':>8s} {'usage(h)':>10s} {'cost':>10s}",
            "-" * 54,
        ]
        for name, rep in sorted(self.reports.items(), key=lambda kv: kv[1].total_cost):
            lines.append(
                f"{name:22s} {rep.num_servers:>8d} "
                f"{rep.total_usage_time:>10.2f} {rep.total_cost:>10.2f}"
            )
        return "\n".join(lines)


def run_gaming_comparison(
    scenario: GamingScenario,
    algorithms: tuple[str, ...] = DEFAULT_ALGORITHMS,
) -> GamingComparison:
    """Dispatch the scenario's workload under each candidate policy."""
    jobs = scenario.workload()
    reports: dict[str, DispatchReport] = {}
    for name in algorithms:
        if name not in ALGORITHM_REGISTRY:
            raise KeyError(f"unknown algorithm {name!r}")
        d = Dispatcher(
            make_algorithm(name),
            billing=scenario.billing,
            instance_type=scenario.instance_type,
        )
        reports[name] = d.dispatch(jobs)
    return GamingComparison(scenario=scenario, reports=reports)
