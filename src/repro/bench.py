"""Bench-trajectory harness: measured throughput → ``BENCH_perf.json``.

``repro bench --json BENCH_perf.json`` times the packing engine on a
fixed grid of seeded Poisson instances — both the default (adaptively
indexed) path and the ``indexed=False`` reference scans, for the scalar
grid and the 2-D vector grid (both run through the unified event
driver) — plus the service-layer cells (streaming push-path replays,
bare and with metrics, and closed-loop runs against an in-process
asyncio server over both wire protocols — JSON lines and the
length-prefixed binary fast path, with and without pipelining; those
cells' throughput counts request round trips) and
one serial-vs-parallel Monte Carlo wall-clock
comparison, and writes a machine-readable report.  The committed ``BENCH_perf.json`` is the
regression baseline future PRs diff against: the *instances* are fully
deterministic (seeded), so any structural slowdown shows up as a drop in
``events_per_sec`` on the same cell.

Timing methodology: best-of-``repeats`` wall clock per cell (the minimum
is the standard noise-robust estimator for short benchmarks), events/sec
= ``2 * n_items / seconds``.

``repro bench --only PATTERN`` regenerates a subset: every cell has a
composite key (``throughput/<instance>/<algorithm>/<path>``,
``service/<instance>/<mode>``, or ``montecarlo``) matched with fnmatch,
and when ``--json`` points at an existing report the unmatched cells are
carried over from it rather than dropped — so one noisy or newly added
row can be re-measured without re-running the whole grid.  Cells whose
rows are *comparisons* (the trace-vs-poisson laps, the WAL trio, the
router scan) are interleaved inside one repeat loop and therefore
regenerate as a group if any member matches.
"""

from __future__ import annotations

import asyncio
import fnmatch
import gc
import json
import os
import platform
import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from .algorithms import make_algorithm
from .core.packing import run_packing
from .experiments.harness import format_table
from .experiments.montecarlo import run_expected_ratio
from .multidim import make_vector_algorithm, run_vector_packing, vector_workload
from .traces import generate_azure_trace, load_items, normalize_items
from .workloads.random_workloads import poisson_workload

__all__ = [
    "run_bench",
    "BenchReport",
    "THROUGHPUT_GRID",
    "QUICK_GRID",
    "VECTOR_GRID",
    "VECTOR_QUICK_GRID",
    "SERVICE_GRID",
    "SERVICE_QUICK_GRID",
]

#: (label, n_items, arrival_rate) — seed and µ are fixed so every cell
#: is the same instance on every machine.  ``n2000`` matches the
#: instance in ``benchmarks/bench_perf.py`` (seed 99, µ=8, rate 4).
THROUGHPUT_GRID: tuple[tuple[str, int, float], ...] = (
    ("n2000", 2_000, 4.0),
    ("n20000", 20_000, 4.0),
    ("n100000", 100_000, 4.0),
    ("n20000-highload", 20_000, 200.0),
)

QUICK_GRID: tuple[tuple[str, int, float], ...] = (
    ("n2000", 2_000, 4.0),
    ("n2000-highload", 2_000, 200.0),
)

ALGORITHMS = ("first-fit", "best-fit", "worst-fit")

#: Vector (2-D) cells through the same unified driver.  The high-load
#: cell holds a few hundred bins open at once, so it exercises the
#: adaptively activated :class:`~repro.core.ffindex.VectorFirstFitIndex`
#: on the default path; the low-load cell stays under the activation
#: threshold and measures the linear-scan regime.
VECTOR_GRID: tuple[tuple[str, int, float], ...] = (
    ("v20000", 20_000, 4.0),
    ("v20000-highload", 20_000, 200.0),
)

VECTOR_QUICK_GRID: tuple[tuple[str, int, float], ...] = (
    ("v2000", 2_000, 4.0),
)

VECTOR_ALGORITHMS = ("vector-first-fit", "vector-best-fit")
VECTOR_DIMENSIONS = 2

#: Service-layer cells: the same seeded instances replayed through the
#: streaming push path (``StreamingEngine.submit``/``finish``), bare and
#: with the metrics registry attached, plus the loopback cells that
#: drive a real asyncio server with the closed-loop load generator
#: (protocol + event loop overhead included) over JSON lines and the
#: binary fast path, batched and pipelined.
SERVICE_GRID: tuple[tuple[str, int, float], ...] = (
    ("n20000", 20_000, 4.0),
    ("n20000-highload", 20_000, 200.0),
)

SERVICE_QUICK_GRID: tuple[tuple[str, int, float], ...] = (
    ("n2000", 2_000, 4.0),
)

#: The loopback cells are bounded by per-request round trips, not
#: packing, so a smaller instance keeps the full bench run short.
SERVICE_LOOPBACK_JOBS = 2_000

#: Arrival rate for the high-load loopback cell: the same job count
#: packed into a far denser arrival window, so many more bins are open
#: at once and each request does more packing work.
SERVICE_LOOPBACK_HIGHLOAD_RATE = 200.0

#: Frame size / in-flight window for the binary loopback cells — the
#: settings the pipelined load generator defaults are tuned around.
#: 512 jobs per frame measured fastest on the loopback scan (larger
#: frames amortise the per-frame event-loop round trip further, with
#: diminishing returns past this point).
SERVICE_LOOPBACK_BATCH = 512
SERVICE_LOOPBACK_PIPELINE = 8

#: ``fsync="always"`` pays one disk flush per record, so its cell uses a
#: smaller instance (events/sec stays comparable across cell sizes).
SERVICE_WAL_ALWAYS_JOBS = 2_000

#: Router-loopback cells: the same closed-loop load generator driven
#: through a :class:`~repro.service.router.ShardRouter` fronting N
#: in-process workers, on the binary pipelined fast path.  On this
#: 1-CPU container every worker shares the core, so shard counts > 1
#: measure the router's *coordination* overhead, not parallel speedup —
#: the number to read is the 1-shard row against the same-run direct
#: baseline (the router-as-transparent-proxy tax).
SERVICE_ROUTER_SHARDS: tuple[int, ...] = (1, 2, 4)
SERVICE_ROUTER_QUICK_SHARDS: tuple[int, ...] = (1, 2)
SERVICE_ROUTER_TENANTS = 16

WORKLOAD_SEED = 99
WORKLOAD_MU = 8.0

#: Trace-replay cells: a generated Azure-schema trace file pulled
#: through the full ingestion pipeline (adapter parse + normalize) once,
#: then packed on the default path — scalar (core only) and vector
#: (core, memory).  Each cell is interleaved with a same-size Poisson
#: baseline lap inside the repeat loop, so the rows read as "what does
#: trace-shaped demand (discrete size catalogue, heavy-tailed
#: durations) cost the engine relative to the synthetic grid", with
#: machine drift cancelled out.
TRACE_BENCH_JOBS = 20_000
TRACE_BENCH_QUICK_JOBS = 2_000


@dataclass
class BenchReport:
    """The measured cells, renderable as a table or JSON."""

    throughput: list[dict[str, Any]] = field(default_factory=list)
    service: list[dict[str, Any]] = field(default_factory=list)
    montecarlo: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "schema": 2,
            "meta": self.meta,
            "throughput": self.throughput,
            "service": self.service,
            "montecarlo": self.montecarlo,
        }

    def render(self) -> str:
        parts = ["== bench: packing engine throughput =="]
        parts.append(format_table(self.throughput))
        if self.service:
            parts.append("== bench: service layer (streaming path) ==")
            parts.append(format_table(self.service))
        if self.montecarlo:
            mc = self.montecarlo
            parts.append(
                f"monte carlo (X7 config {mc['config']}): "
                f"serial {mc['serial_seconds']:.2f}s, "
                f"parallel[{mc['workers']}] {mc['parallel_seconds']:.2f}s "
                f"(speedup {mc['speedup']:.2f}x, results identical: "
                f"{mc['identical']})"
            )
        return "\n".join(parts)


class _Selector:
    """Decides which bench cells run, by fnmatch over composite keys.

    ``None`` (the default) selects everything.  Interleaved cell groups
    call :meth:`any` with every key the group would emit and run
    all-or-nothing — their rows are ratios, and regenerating one side of
    a ratio against a stale other side would measure machine drift, not
    the code.
    """

    def __init__(self, pattern: Optional[str]):
        self.pattern = pattern

    def __call__(self, key: str) -> bool:
        return self.pattern is None or fnmatch.fnmatchcase(key, self.pattern)

    def any(self, keys) -> bool:
        return any(self(key) for key in keys)


def _merge_rows(old_rows, new_rows, key_fields) -> list:
    """Carry old rows over, replacing any the new run re-measured.

    Old-row order is preserved (the committed baseline diffs cleanly);
    rows for genuinely new keys append at the end in measured order.
    """
    key = lambda row: tuple(row.get(f) for f in key_fields)
    fresh = {key(row): row for row in new_rows}
    merged = [fresh.get(key(row), row) for row in old_rows]
    replaced = {key(row) for row in old_rows}
    merged.extend(row for row in new_rows if key(row) not in replaced)
    return merged


def _best_of(repeats: int, fn) -> float:
    """Best-of-``repeats`` wall clock with the cyclic GC paused.

    Without this, generation-2 collections triggered by allocations in
    *earlier* grid cells fire mid-measurement in later ones (each scan
    walks the whole live instance), so a cell's number depends on its
    position in the grid — measured ~35% distortion on the 100k-job
    cell.  Pausing the collector (what ``timeit`` does) makes cells
    order-independent; packing garbage is acyclic, so refcounting frees
    it as usual.
    """
    best = float("inf")
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if enabled:
            gc.enable()
    return best


def _stream_replay(ordered, with_metrics: bool) -> None:
    """One full replay through the streaming push path (submit + drain)."""
    from .service import MetricsRegistry, StreamingEngine

    engine = StreamingEngine.scalar(
        make_algorithm("first-fit"),
        metrics=MetricsRegistry() if with_metrics else None,
    )
    for it in ordered:
        engine.submit(it)
    engine.finish()


def _stream_migration_replay(ordered, budget: int) -> None:
    """Streaming replay under migration churn: repack-ff with a budget.

    Every applied event runs the evacuation planner and possibly a burst
    of ``state.migrate`` calls (remove + reinsert through the adaptive
    index lanes), so this cell prices the migration engine's hot path
    against the plain ``stream`` row measured on the same instance.
    """
    from .algorithms.migration import BudgetedRepack
    from .service import StreamingEngine

    engine = StreamingEngine.scalar(BudgetedRepack(budget=budget))
    for it in ordered:
        engine.submit(it)
    engine.finish()


#: Move budget for the ``stream+migration`` churn cell.
STREAM_MIGRATION_BUDGET = 4


def _wal_stream_replay(ordered, fsync: str) -> None:
    """One streaming replay with the write-ahead log in the loop.

    Bare engine (no metrics registry), matching the ``stream`` cell, so
    the cell isolates what durability itself costs.
    """
    import shutil
    import tempfile

    from .service import DurableEngine, StreamingEngine, WriteAheadLog

    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        engine = DurableEngine(
            StreamingEngine.scalar(make_algorithm("first-fit"), metrics=None),
            WriteAheadLog(directory, fsync=fsync),
            auto_checkpoint=False,
        )
        for it in ordered:
            engine.submit(it)
        engine.finish()
        engine.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)


async def _loopback_replay(ordered, **loadgen_kwargs):
    """Closed-loop load generation against an in-process asyncio server."""
    from .service import AllocationService, build_engine, run_loadgen

    service = AllocationService(build_engine(), quiet=True)
    port = await service.start("127.0.0.1", 0)
    waiter = asyncio.ensure_future(service.wait_closed())
    client = await run_loadgen(
        ordered, port=port, shutdown=True, **loadgen_kwargs
    )
    await waiter
    return client


def _loopback_cell(ordered, repeats: int, **loadgen_kwargs):
    """Best-of-``repeats`` loopback replay with the cyclic GC paused.

    Same collector treatment as :func:`_best_of` (see its docstring):
    the loopback cells exist to compare wire protocols against each
    other, and a generation-2 scan landing inside one protocol's lap
    but not the other's would distort exactly the ratio the rows are
    read for.
    """
    best = None
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            client = asyncio.run(_loopback_replay(ordered, **loadgen_kwargs))
            if best is None or client.wall_seconds < best.wall_seconds:
                best = client
    finally:
        if enabled:
            gc.enable()
    return best


async def _router_loopback_replay(ordered, shards, **loadgen_kwargs):
    """Closed-loop load generation through the consistent-hash router."""
    from .service import AllocationService, ShardRouter, build_engine, run_loadgen

    services = [
        AllocationService(build_engine(), quiet=True) for _ in range(shards)
    ]
    ports = [await s.start("127.0.0.1", 0) for s in services]
    router = ShardRouter(
        [("127.0.0.1", p) for p in ports], tenants=SERVICE_ROUTER_TENANTS
    )
    await router.connect()
    front = await router.start("127.0.0.1", 0)
    waiters = [asyncio.ensure_future(s.wait_closed()) for s in services]
    # the shutdown broadcast takes the workers down through the router
    client = await run_loadgen(
        ordered, port=front, shutdown=True, tenants=SERVICE_ROUTER_TENANTS,
        **loadgen_kwargs,
    )
    await router.wait_closed()
    for waiter in waiters:
        await waiter
    return client


def _bench_router(
    report: "BenchReport", ordered, quick: bool, repeats: int, sel: "_Selector"
) -> None:
    """Router-loopback cells, interleaved with their direct baseline.

    The direct (router-less) lap runs inside the same repeat loop as the
    router laps, so machine drift between distant measurements cannot
    masquerade as router overhead — the ratio the rows exist to expose.
    All cells run the binary pipelined fast path with the same tenant
    keying, so the only variable is the router hop (and, above one
    shard, its fan-out bookkeeping on this single CPU).
    """
    shard_counts = SERVICE_ROUTER_QUICK_SHARDS if quick else SERVICE_ROUTER_SHARDS
    if not sel.any(
        [f"service/n{len(ordered)}/router-loopback-direct"]
        + [f"service/n{len(ordered)}/router-loopback-{s}shard" for s in shard_counts]
    ):
        return
    kwargs = {
        "protocol": "binary",
        "batch": SERVICE_LOOPBACK_BATCH,
        "pipeline": SERVICE_LOOPBACK_PIPELINE,
        "tenants": SERVICE_ROUTER_TENANTS,
    }
    best: dict[Any, Any] = {"direct": None, **{s: None for s in shard_counts}}
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            laps = {"direct": asyncio.run(_loopback_replay(ordered, **kwargs))}
            for shards in shard_counts:
                laps[shards] = asyncio.run(
                    _router_loopback_replay(ordered, shards, **{
                        k: v for k, v in kwargs.items() if k != "tenants"
                    })
                )
            for key, client in laps.items():
                if best[key] is None or client.wall_seconds < best[key].wall_seconds:
                    best[key] = client
    finally:
        if enabled:
            gc.enable()
    rows = [("router-loopback-direct", best["direct"])] + [
        (f"router-loopback-{s}shard", best[s]) for s in shard_counts
    ]
    for mode, client in rows:
        report.service.append(
            {
                "instance": f"n{len(ordered)}",
                "n_items": len(ordered),
                "arrival_rate": 4.0,
                "mode": mode,
                "seconds": round(client.wall_seconds, 6),
                "events_per_sec": round(client.requests_per_sec),
            }
        )


def _interleaved_best(repeats: int, cells: dict[str, Any]) -> dict[str, float]:
    """Best-of-``repeats`` per cell, all cells timed inside each lap.

    Same rationale as :func:`_bench_router`: when two rows exist to be
    *compared*, measuring them in distant loops lets machine drift
    masquerade as a real difference.  Interleaving the laps (and pausing
    the cyclic GC, as :func:`_best_of` does) makes the ratio honest.
    """
    best = {key: float("inf") for key in cells}
    gc.collect()
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            for key, fn in cells.items():
                t0 = time.perf_counter()
                fn()
                best[key] = min(best[key], time.perf_counter() - t0)
    finally:
        if enabled:
            gc.enable()
    return best


def _bench_traces(
    report: "BenchReport", quick: bool, repeats: int, sel: "_Selector"
) -> None:
    """Trace-replay packing cells (scalar + vector) vs Poisson baselines.

    The trace file is generated, parsed, and normalized *once* outside
    the timed region — these cells measure packing on trace-shaped
    demand, not the ingestion pipeline (the CLI smoke and golden tests
    own that).
    """
    n = TRACE_BENCH_QUICK_JOBS if quick else TRACE_BENCH_JOBS
    if not sel.any(
        f"throughput/trace-azure-n{n}/{algo}/{mode}{suffix}"
        for algo, suffix in (("first-fit", ""), ("vector-first-fit", "-vector"))
        for mode in ("trace-replay", "poisson-baseline")
    ):
        return
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
        path = os.path.join(tmp, f"azure-{n}.csv")
        generate_azure_trace(path, n, seed=WORKLOAD_SEED)
        scalar, _ = load_items(path, schema="azure")
        scalar, _ = normalize_items(scalar)
        vector, _ = load_items(path, schema="azure", vector=True)
        vector, _ = normalize_items(vector)
    base_scalar = poisson_workload(
        len(scalar), seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU, arrival_rate=4.0
    )
    base_vector = vector_workload(
        len(vector), seed=WORKLOAD_SEED, dimensions=VECTOR_DIMENSIONS,
        arrival_rate=4.0,
    )
    ff = lambda items: run_packing(items, make_algorithm("first-fit"))
    vff = lambda items: run_vector_packing(
        items, make_vector_algorithm("vector-first-fit")
    )
    best = _interleaved_best(
        repeats,
        {
            "trace-replay": lambda: ff(scalar),
            "poisson-baseline": lambda: ff(base_scalar),
            "trace-replay-vector": lambda: vff(vector),
            "poisson-baseline-vector": lambda: vff(base_vector),
        },
    )
    for algo, suffix in (("first-fit", ""), ("vector-first-fit", "-vector")):
        for mode in (f"trace-replay{suffix}", f"poisson-baseline{suffix}"):
            secs = best[mode]
            report.throughput.append(
                {
                    "instance": f"trace-azure-n{n}",
                    "n_items": len(scalar),
                    "arrival_rate": 200.0,
                    "algorithm": algo,
                    "path": mode,
                    "seconds": round(secs, 6),
                    "events_per_sec": round(2 * len(scalar) / secs),
                }
            )


def _bench_service(
    report: "BenchReport", quick: bool, repeats: int, sel: "_Selector"
) -> None:
    grid = SERVICE_QUICK_GRID if quick else SERVICE_GRID
    for label, n, rate in grid:
        items = poisson_workload(
            n, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU, arrival_rate=rate
        )
        ordered = sorted(items, key=lambda it: it.arrival)
        events = 2 * len(items)
        for mode, with_metrics in (("stream", False), ("stream+metrics", True)):
            if not sel(f"service/{label}/{mode}"):
                continue
            secs = _best_of(repeats, lambda: _stream_replay(ordered, with_metrics))
            report.service.append(
                {
                    "instance": label,
                    "n_items": n,
                    "arrival_rate": rate,
                    "mode": mode,
                    "seconds": round(secs, 6),
                    "events_per_sec": round(events / secs),
                }
            )
    # Migration-churn cell: the first grid instance replayed through the
    # streaming path under repack-ff with a nonzero move budget — prices
    # the per-event planner plus the migrate (remove + reinsert) index
    # lanes against the plain ``stream`` row on the same instance.  The
    # low-load instance is deliberate: the planner is a linear scan of
    # the open set per event, and this cell exists to watch *that*
    # constant, not to stress hundreds of open bins.
    mig_label, mig_n, mig_rate = grid[0]
    if sel(f"service/{mig_label}/stream+migration"):
        mig_items = poisson_workload(
            mig_n, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU,
            arrival_rate=mig_rate,
        )
        mig_ordered = sorted(mig_items, key=lambda it: it.arrival)
        secs = _best_of(
            repeats,
            lambda: _stream_migration_replay(mig_ordered, STREAM_MIGRATION_BUDGET),
        )
        report.service.append(
            {
                "instance": mig_label,
                "n_items": mig_n,
                "arrival_rate": mig_rate,
                "mode": "stream+migration",
                "seconds": round(secs, 6),
                "events_per_sec": round(2 * mig_n / secs),
            }
        )
    # WAL-in-the-loop cells: the first grid instance replayed through the
    # durable engine under each fsync policy ("always" on its own smaller
    # instance — one flush per record dominates, events/sec stays
    # comparable).  The bare-stream baseline is re-measured *interleaved*
    # with these cells, lap by lap — machine drift between distant
    # measurements otherwise dominates the durability-overhead ratio the
    # rows imply — and the stream row keeps the best of both passes.
    wal_label, wal_n, wal_rate = grid[0]
    always_n = min(wal_n, SERVICE_WAL_ALWAYS_JOBS)
    fsyncs = ("never", "interval", "always")
    wal_keys = {
        fsync: "service/{}/stream+wal({})".format(
            wal_label if fsync != "always" or always_n == wal_n
            else f"n{always_n}",
            fsync,
        )
        for fsync in fsyncs
    }
    if sel.any(wal_keys.values()):
        wal_items = poisson_workload(
            wal_n, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU, arrival_rate=wal_rate
        )
        wal_ordered = sorted(wal_items, key=lambda it: it.arrival)
        laps = {mode: float("inf") for mode in ("stream",) + fsyncs}
        for _ in range(repeats):
            laps["stream"] = min(
                laps["stream"], _best_of(1, lambda: _stream_replay(wal_ordered, False))
            )
            for fsync in fsyncs:
                cell = wal_ordered if fsync != "always" else wal_ordered[:always_n]
                # the WAL cells sit on the disk, and I/O latency swings far
                # more lap-to-lap than CPU time does (observed ~60% vs ~5%
                # on the container) — double their laps so the best-of
                # estimate actually reaches each cell's floor
                laps[fsync] = min(
                    laps[fsync],
                    _best_of(2, lambda f=fsync, c=cell: _wal_stream_replay(c, f)),
                )
        stream_row = next(
            (
                r for r in report.service
                if r["mode"] == "stream" and r["instance"] == wal_label
            ),
            None,  # the stream cell may have been filtered out by --only
        )
        if stream_row is not None and laps["stream"] < stream_row["seconds"]:
            stream_row["seconds"] = round(laps["stream"], 6)
            stream_row["events_per_sec"] = round(2 * wal_n / laps["stream"])
        for fsync in fsyncs:
            cell_n = wal_n if fsync != "always" else always_n
            secs = laps[fsync]
            report.service.append(
                {
                    "instance": wal_label if cell_n == wal_n else f"n{cell_n}",
                    "n_items": cell_n,
                    "arrival_rate": wal_rate,
                    "mode": f"stream+wal({fsync})",
                    "seconds": round(secs, 6),
                    "events_per_sec": round(2 * cell_n / secs),
                }
            )
    # Loopback cells: a real asyncio server driven by the closed-loop
    # load generator.  The JSON cells measure the debug/compat wire; the
    # binary cells measure the negotiated fast path, first one request
    # per frame window (batch only), then with eight frames in flight
    # (pipelining).  All four run the same seeded instances, so the
    # rows' ratio is the protocol cost and nothing else.
    loop_items = poisson_workload(
        SERVICE_LOOPBACK_JOBS, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU,
        arrival_rate=4.0,
    )
    ordered = sorted(loop_items, key=lambda it: it.arrival)
    high_items = poisson_workload(
        SERVICE_LOOPBACK_JOBS, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU,
        arrival_rate=SERVICE_LOOPBACK_HIGHLOAD_RATE,
    )
    high_ordered = sorted(high_items, key=lambda it: it.arrival)
    binary = {
        "protocol": "binary",
        "batch": SERVICE_LOOPBACK_BATCH,
        "pipeline": 1,
    }
    pipelined = dict(binary, pipeline=SERVICE_LOOPBACK_PIPELINE)
    loop_cells = (
        ("server-loopback", ordered, 4.0, {}),
        (
            "server-loopback-highload",
            high_ordered,
            SERVICE_LOOPBACK_HIGHLOAD_RATE,
            {},
        ),
        ("server-loopback-binary", ordered, 4.0, binary),
        ("server-loopback-pipelined", ordered, 4.0, pipelined),
    )
    for mode, cell_ordered, rate, loadgen_kwargs in loop_cells:
        if not sel(f"service/n{SERVICE_LOOPBACK_JOBS}/{mode}"):
            continue
        best = _loopback_cell(cell_ordered, repeats, **loadgen_kwargs)
        report.service.append(
            {
                "instance": f"n{SERVICE_LOOPBACK_JOBS}",
                "n_items": SERVICE_LOOPBACK_JOBS,
                "arrival_rate": rate,
                "mode": mode,
                "seconds": round(best.wall_seconds, 6),
                "events_per_sec": round(best.requests_per_sec),
            }
        )
    _bench_router(report, ordered, quick, repeats, sel)


def run_bench(
    quick: bool = False,
    repeats: int = 3,
    json_path: Optional[str] = None,
    montecarlo: bool = True,
    only: Optional[str] = None,
) -> BenchReport:
    """Measure the throughput grid and (optionally) write the report.

    ``only`` restricts the run to cells whose composite key matches the
    fnmatch pattern (see the module docstring for the key grammar); with
    ``json_path`` pointing at an existing report, the cells that did not
    run are carried over from it so the written file stays complete.
    """
    sel = _Selector(only)
    report = BenchReport(
        meta={
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "seed": WORKLOAD_SEED,
            "mu": WORKLOAD_MU,
            "repeats": repeats,
            "quick": quick,
        }
    )
    grid = QUICK_GRID if quick else THROUGHPUT_GRID
    for label, n, rate in grid:
        items = poisson_workload(
            n, seed=WORKLOAD_SEED, mu_target=WORKLOAD_MU, arrival_rate=rate
        )
        events = 2 * len(items)
        for algo in ALGORITHMS:
            for path, indexed in (("default", True), ("reference", False)):
                if not sel(f"throughput/{label}/{algo}/{path}"):
                    continue
                secs = _best_of(
                    repeats,
                    lambda: run_packing(items, make_algorithm(algo), indexed=indexed),
                )
                report.throughput.append(
                    {
                        "instance": label,
                        "n_items": n,
                        "arrival_rate": rate,
                        "algorithm": algo,
                        "path": path,
                        "seconds": round(secs, 6),
                        "events_per_sec": round(events / secs),
                    }
                )
    vector_grid = VECTOR_QUICK_GRID if quick else VECTOR_GRID
    for label, n, rate in vector_grid:
        vitems = vector_workload(
            n, seed=WORKLOAD_SEED, dimensions=VECTOR_DIMENSIONS, arrival_rate=rate
        )
        events = 2 * len(vitems)
        for algo in VECTOR_ALGORITHMS:
            for path, indexed in (("default", True), ("reference", False)):
                if not sel(f"throughput/{label}/{algo}/{path}"):
                    continue
                secs = _best_of(
                    repeats,
                    lambda: run_vector_packing(
                        vitems, make_vector_algorithm(algo), indexed=indexed
                    ),
                )
                report.throughput.append(
                    {
                        "instance": label,
                        "n_items": n,
                        "arrival_rate": rate,
                        "algorithm": algo,
                        "path": path,
                        "seconds": round(secs, 6),
                        "events_per_sec": round(events / secs),
                    }
                )
    _bench_traces(report, quick, repeats, sel)
    _bench_service(report, quick, repeats, sel)
    if montecarlo and sel("montecarlo"):
        # heavy enough that process startup amortises on multi-core
        # machines; on a single-CPU host workers=-1 degrades to serial
        # and the speedup honestly reads ~1.0
        config = dict(
            n=70, replications=24, loads=(2.0, 6.0), mus=(8.0,), node_budget=60_000
        )
        t_serial = time.perf_counter()
        serial = run_expected_ratio(**config, workers=None)
        t_serial = time.perf_counter() - t_serial
        t_par = time.perf_counter()
        parallel = run_expected_ratio(**config, workers=-1)
        t_par = time.perf_counter() - t_par
        report.montecarlo = {
            "config": config,
            "serial_seconds": round(t_serial, 3),
            "parallel_seconds": round(t_par, 3),
            "workers": -1,
            "speedup": round(t_serial / t_par, 3),
            "identical": serial.rows == parallel.rows,
        }
    if only is not None and json_path and os.path.exists(json_path):
        # partial regeneration onto an existing report: carry the cells
        # that did not run over from the file, so the written JSON stays
        # a complete baseline with only the matched rows re-measured
        with open(json_path) as f:
            previous = json.load(f)
        report.throughput = _merge_rows(
            previous.get("throughput", []), report.throughput,
            ("instance", "algorithm", "path"),
        )
        report.service = _merge_rows(
            previous.get("service", []), report.service, ("instance", "mode")
        )
        if not report.montecarlo:
            report.montecarlo = previous.get("montecarlo", {})
    if json_path:
        with open(json_path, "w") as f:
            json.dump(report.to_json(), f, indent=2, sort_keys=True)
            f.write("\n")
    return report
