"""The allocation service's network face: a JSON-lines protocol over TCP.

``repro serve`` binds a :class:`~repro.service.engine.StreamingEngine`
(optionally wrapped in a :class:`~repro.service.recovery.DurableEngine`
for WAL durability) to a socket.  One request per line, one JSON
response per line — the simplest protocol that a load generator, a
sidecar, or ``nc`` can speak.  All engine operations run on the event
loop thread, so concurrent connections are serialised naturally; the
engine itself never needs a lock.

Hardening contract (pinned by ``tests/service/test_protocol_fuzz.py``):
malformed JSON, oversized lines, unknown ops, bad field types, protocol
violations, and client disconnects at any byte **never crash the
server** — they produce one structured error reply
(``{"ok": false, "error": ..., "error_type": ...}``) or a clean close,
and a metrics counter.  Only an injected
:class:`~repro.service.faults.KillPoint` (which subclasses
``BaseException`` precisely so these handlers cannot swallow it) tears
the service down.

Operations
----------
``{"op": "submit", "job": {"id", "size" | "sizes", "arrival", "departure"},
   "request_id": ...}``
    Place a job (through admission control).  Response carries the
    placement: action, bin, whether a new server was opened.  With a
    client-supplied ``request_id`` the submit is idempotent: a retry of
    an acknowledged id returns the cached placement (exactly-once under
    the load generator's retry policy).
``{"op": "depart", "id": ..., "now": ...}``
    Explicit departure (``now`` optional — defaults to the job's
    recorded departure time).
``{"op": "advance", "now": ...}``
    Move the service clock, applying scheduled departures.
``{"op": "drain"}``
    Apply *all* scheduled departures (end of stream) and report the
    final packing summary.
``{"op": "stats"}`` / ``{"op": "metrics"}``
    Engine status dict / Prometheus text exposition.
``{"op": "checkpoint", "path": ...}``
    Snapshot the engine atomically; inline in the response, or to
    ``path``.  On a durable engine this cuts a real WAL checkpoint.
``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness / stop the server (used by tests and ``repro loadgen
    --shutdown``).
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Optional

from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..core.items import Item
from .admission import AdmissionPolicy
from .engine import StreamingEngine
from .faults import FaultInjector, KillPoint
from .metrics import DecisionLog, MetricsRegistry
from .recovery import DedupWindow, DurableEngine
from .snapshot import snapshot_engine, write_checkpoint

__all__ = ["AllocationService", "ProtocolError", "build_engine", "serve"]

#: Default cap on one request line.  A line beyond it is a protocol
#: violation (the connection is closed after the error reply, since the
#: stream cannot be resynchronised mid-line).
DEFAULT_MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A structurally invalid request (reported, never fatal)."""


def build_engine(
    algorithm: str = "first-fit",
    capacity: float = 1.0,
    indexed: bool = True,
    admission: Optional[AdmissionPolicy] = None,
    with_metrics: bool = True,
    decision_log: Optional[DecisionLog] = None,
) -> StreamingEngine:
    """The standard scalar service engine (metrics on by default)."""
    if algorithm not in ALGORITHM_REGISTRY:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        )
    return StreamingEngine.scalar(
        make_algorithm(algorithm),
        capacity=capacity,
        indexed=indexed,
        admission=admission,
        metrics=MetricsRegistry() if with_metrics else None,
        decision_log=decision_log,
    )


def _finite(value, name: str) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"job field {name!r} is not a number: {value!r}") from None
    if not math.isfinite(out):
        raise ProtocolError(f"job field {name!r} must be finite, got {out!r}")
    return out


def _job_from_request(job) -> Item:
    if not isinstance(job, dict):
        raise ProtocolError(f"'job' must be an object, got {type(job).__name__}")
    missing = [k for k in ("id", "size", "arrival", "departure") if k not in job]
    if missing:
        raise ProtocolError(f"job record is missing field {missing[0]!r}")
    try:
        item_id = int(job["id"])
    except (TypeError, ValueError):
        raise ProtocolError(f"job id must be an integer, got {job['id']!r}") from None
    size = _finite(job["size"], "size")
    arrival = _finite(job["arrival"], "arrival")
    departure = _finite(job["departure"], "departure")
    if size <= 0:
        raise ProtocolError(f"job size must be positive, got {size}")
    if departure <= arrival:
        raise ProtocolError(
            f"job departure ({departure}) must be after arrival ({arrival})"
        )
    return Item(item_id, size, arrival, departure)


class AllocationService:
    """One engine behind an asyncio JSON-lines endpoint.

    ``request_timeout`` bounds each read-dispatch-write cycle once a
    request has started arriving (and every write); ``idle_timeout``
    optionally reaps connections that go silent between requests.
    """

    def __init__(
        self,
        engine: StreamingEngine | DurableEngine,
        quiet: bool = True,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        request_timeout: float = 30.0,
        idle_timeout: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
    ):
        self.engine = engine
        self.quiet = quiet
        self.max_line_bytes = int(max_line_bytes)
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.injector = injector
        self._durable = isinstance(engine, DurableEngine)
        #: idempotency window for non-durable engines (a durable engine
        #: owns its own, rebuilt by recovery)
        self._dedup = engine.dedup if self._durable else DedupWindow()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._fatal: Optional[BaseException] = None
        self.requests_served = 0
        if engine.metrics is not None:
            self._declare_metrics(engine.metrics)

    # -- lifecycle ------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the actual port (for port 0)."""
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self.max_line_bytes
        )
        bound = self._server.sockets[0].getsockname()[1]
        if not self.quiet:
            print(f"repro service listening on {host}:{bound}")
        return bound

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op arrives, then close the socket.

        Re-raises an injected :class:`KillPoint` after closing: the kill
        fires inside a per-connection handler task, where asyncio would
        otherwise log it and keep the server alive.
        """
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        if self._fatal is not None:
            raise self._fatal

    async def serve_until_shutdown(self, host: str = "127.0.0.1", port: int = 0) -> int:
        await self.start(host, port)
        await self.wait_closed()
        return 0

    # -- protocol -------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while not reader.at_eof():
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    self._count("repro_service_request_timeouts_total")
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # the line outgrew the buffer limit: report and close —
                    # there is no way to resynchronise mid-line
                    self._count("repro_service_malformed_requests_total")
                    await self._reply(
                        writer,
                        {
                            "ok": False,
                            "error": f"request line exceeds {self.max_line_bytes} bytes",
                            "error_type": "line_too_long",
                        },
                    )
                    break
                if not line:
                    break
                if not line.endswith(b"\n") and reader.at_eof():
                    # a torn final request: the client died mid-line
                    self._count("repro_service_disconnects_total")
                    break
                response = self._dispatch_line(line)
                if self.injector is not None:
                    fate, delay = self.injector.reply_fate()
                    if delay:
                        await asyncio.sleep(delay)
                    if fate == "drop":
                        self._count("repro_service_dropped_replies_total")
                        break
                sent = await self._reply(writer, response)
                if not sent:
                    break
                if response.get("bye"):
                    self._shutdown.set()
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # the client vanished mid-request: count it, close cleanly —
            # never let it surface as an unhandled task exception
            self._count("repro_service_disconnects_total")
        except KillPoint as exc:
            # an injected crash must take the whole process down, but it
            # fires inside this connection's task — asyncio would log it
            # and carry on.  Escalate through the shutdown path instead.
            self._fatal = exc
            self._shutdown.set()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reply(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        """Send one response line; False when the client is gone."""
        try:
            writer.write((json.dumps(response) + "\n").encode())
            await asyncio.wait_for(writer.drain(), self.request_timeout)
            return True
        except (ConnectionError, asyncio.TimeoutError, OSError):
            self._count("repro_service_disconnects_total")
            return False

    def _dispatch_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            self._count("repro_service_malformed_requests_total")
            return {
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }
        if not isinstance(request, dict):
            self._count("repro_service_malformed_requests_total")
            return {
                "ok": False,
                "error": f"request must be a JSON object, got {type(request).__name__}",
                "error_type": "protocol",
            }
        try:
            return self._dispatch(request)
        except ProtocolError as exc:
            self._count("repro_service_protocol_errors_total")
            return {"ok": False, "error": str(exc), "error_type": "protocol"}
        except (ValueError, KeyError) as exc:
            # engine-level refusals (time-ordering, unknown ids, ...)
            self._count("repro_service_protocol_errors_total")
            detail = exc.args[0] if exc.args else str(exc)
            return {"ok": False, "error": str(detail), "error_type": "rejected"}
        except OSError as exc:
            # WAL I/O failure: the operation was refused, state is intact
            return {
                "ok": False,
                "error": f"durability failure: {exc}",
                "error_type": "wal_unavailable",
            }
        except Exception as exc:  # protocol boundary: report, don't crash
            self._count("repro_service_internal_errors_total")
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            }

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        engine = self.engine
        injector = self.injector
        if op == "submit":
            if "job" not in request:
                raise ProtocolError("submit needs a 'job' object")
            item = _job_from_request(request["job"])
            if injector is not None and injector.plan.clock_skew:
                item = Item(
                    item.item_id,
                    item.size,
                    injector.skew(item.arrival),
                    item.departure,
                )
            rid = request.get("request_id")
            if rid is not None:
                rid = str(rid)
            if self._durable:
                placement = engine.submit(item, request_id=rid)
            else:
                if rid is not None:
                    cached = self._dedup.get(rid)
                    if cached is not None:
                        self._count("repro_service_duplicate_requests_total")
                        return {"ok": True, "placement": cached, "duplicate": True}
                placement = engine.submit(item)
                if rid is not None:
                    self._dedup.put(rid, placement.to_dict())
            return {"ok": True, "placement": placement.to_dict()}
        if op == "depart":
            if "id" not in request:
                raise ProtocolError("depart needs an 'id'")
            engine.depart(int(request["id"]), request.get("now"))
            return {"ok": True, "clock": engine.clock}
        if op == "advance":
            if "now" not in request:
                raise ProtocolError("advance needs a 'now'")
            applied = engine.advance(_finite(request["now"], "now"))
            return {"ok": True, "departed": applied, "clock": engine.clock}
        if op == "drain":
            result = engine.finish()
            return {
                "ok": True,
                "bins": result.num_bins,
                "total_usage_time": result.total_usage_time,
                "algorithm": result.algorithm_name,
            }
        if op == "stats":
            return {"ok": True, "stats": engine.stats()}
        if op == "metrics":
            if engine.metrics is None:
                return {
                    "ok": False,
                    "error": "service was started without metrics",
                    "error_type": "protocol",
                }
            return {"ok": True, "text": engine.metrics.expose_text()}
        if op == "checkpoint":
            if self._durable and not request.get("path"):
                path = engine.checkpoint_now()
                return {"ok": True, "path": path}
            doc = snapshot_engine(engine.engine if self._durable else engine)
            path = request.get("path")
            if path:
                write_checkpoint(str(path), doc)
                return {"ok": True, "path": path}
            return {"ok": True, "snapshot": doc}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        raise ProtocolError(f"unknown op {op!r}")

    # -- metrics plumbing -----------------------------------------------------
    def _declare_metrics(self, reg: MetricsRegistry) -> None:
        for name, help_text in (
            ("repro_service_malformed_requests_total",
             "requests that were not valid JSON"),
            ("repro_service_protocol_errors_total",
             "structurally invalid or refused requests"),
            ("repro_service_internal_errors_total",
             "requests that hit an unexpected server error"),
            ("repro_service_disconnects_total",
             "client connections lost mid-request"),
            ("repro_service_request_timeouts_total",
             "connections reaped by the idle timeout"),
            ("repro_service_dropped_replies_total",
             "replies dropped by fault injection"),
            ("repro_service_duplicate_requests_total",
             "submits answered from the idempotency window"),
        ):
            if name not in reg:
                reg.counter(name, help_text)

    def _count(self, name: str, amount: float = 1.0) -> None:
        metrics = self.engine.metrics
        if metrics is not None and name in metrics:
            metrics.get(name).inc(amount)


async def serve(
    engine: StreamingEngine | DurableEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
    port_file: Optional[str] = None,
    **service_kwargs,
) -> int:
    """Run the service until a ``shutdown`` op arrives.

    ``port_file`` (when given) receives the bound port as text — how
    tests and scripts discover a ``--port 0`` ephemeral binding.  Extra
    keyword arguments reach :class:`AllocationService` (timeouts, line
    limits, fault injector).
    """
    service = AllocationService(engine, quiet=quiet, **service_kwargs)
    bound = await service.start(host, port)
    if port_file:
        with open(port_file, "w") as f:
            f.write(str(bound))
    await service.wait_closed()
    if not quiet:
        print(
            f"service stopped after {service.requests_served} requests; "
            f"{engine.state.num_bins_used} servers used"
        )
    return 0
