"""The allocation service's network face: a JSON-lines protocol over TCP.

``repro serve`` binds a :class:`~repro.service.engine.StreamingEngine`
to a socket.  One request per line, one JSON response per line — the
simplest protocol that a load generator, a sidecar, or ``nc`` can speak.
All engine operations run on the event loop thread, so concurrent
connections are serialised naturally; the engine itself never needs a
lock.

Operations
----------
``{"op": "submit", "job": {"id", "size" | "sizes", "arrival", "departure"}}``
    Place a job (through admission control).  Response carries the
    placement: action, bin, whether a new server was opened.
``{"op": "depart", "id": ..., "now": ...}``
    Explicit departure (``now`` optional — defaults to the job's
    recorded departure time).
``{"op": "advance", "now": ...}``
    Move the service clock, applying scheduled departures.
``{"op": "drain"}``
    Apply *all* scheduled departures (end of stream) and report the
    final packing summary.
``{"op": "stats"}`` / ``{"op": "metrics"}``
    Engine status dict / Prometheus text exposition.
``{"op": "checkpoint", "path": ...}``
    Snapshot the engine; inline in the response, or to ``path``.
``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness / stop the server (used by tests and ``repro loadgen
    --shutdown``).
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional

from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..core.items import Item
from .admission import AdmissionPolicy
from .engine import StreamingEngine
from .metrics import DecisionLog, MetricsRegistry
from .snapshot import snapshot_engine

__all__ = ["AllocationService", "build_engine", "serve"]


def build_engine(
    algorithm: str = "first-fit",
    capacity: float = 1.0,
    indexed: bool = True,
    admission: Optional[AdmissionPolicy] = None,
    with_metrics: bool = True,
    decision_log: Optional[DecisionLog] = None,
) -> StreamingEngine:
    """The standard scalar service engine (metrics on by default)."""
    if algorithm not in ALGORITHM_REGISTRY:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        )
    return StreamingEngine.scalar(
        make_algorithm(algorithm),
        capacity=capacity,
        indexed=indexed,
        admission=admission,
        metrics=MetricsRegistry() if with_metrics else None,
        decision_log=decision_log,
    )


def _job_from_request(job: dict) -> Item:
    try:
        return Item(
            int(job["id"]),
            float(job["size"]),
            float(job["arrival"]),
            float(job["departure"]),
        )
    except KeyError as exc:
        raise ValueError(f"job record is missing field {exc.args[0]!r}") from None


class AllocationService:
    """One engine behind an asyncio JSON-lines endpoint."""

    def __init__(self, engine: StreamingEngine, quiet: bool = True):
        self.engine = engine
        self.quiet = quiet
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self.requests_served = 0

    # -- lifecycle ------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the actual port (for port 0)."""
        self._server = await asyncio.start_server(self._handle, host, port)
        bound = self._server.sockets[0].getsockname()[1]
        if not self.quiet:
            print(f"repro service listening on {host}:{bound}")
        return bound

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op arrives, then close the socket."""
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

    async def serve_until_shutdown(self, host: str = "127.0.0.1", port: int = 0) -> int:
        await self.start(host, port)
        await self.wait_closed()
        return 0

    # -- protocol -------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while not reader.at_eof():
                line = await reader.readline()
                if not line:
                    break
                response = self._dispatch_line(line)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
                if response.get("bye"):
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    def _dispatch_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
            return self._dispatch(request)
        except Exception as exc:  # protocol boundary: report, don't crash
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        engine = self.engine
        if op == "submit":
            placement = engine.submit(_job_from_request(request["job"]))
            return {"ok": True, "placement": placement.to_dict()}
        if op == "depart":
            engine.depart(int(request["id"]), request.get("now"))
            return {"ok": True, "clock": engine.clock}
        if op == "advance":
            applied = engine.advance(float(request["now"]))
            return {"ok": True, "departed": applied, "clock": engine.clock}
        if op == "drain":
            result = engine.finish()
            return {
                "ok": True,
                "bins": result.num_bins,
                "total_usage_time": result.total_usage_time,
                "algorithm": result.algorithm_name,
            }
        if op == "stats":
            return {"ok": True, "stats": engine.stats()}
        if op == "metrics":
            if engine.metrics is None:
                return {"ok": False, "error": "service was started without metrics"}
            return {"ok": True, "text": engine.metrics.expose_text()}
        if op == "checkpoint":
            doc = snapshot_engine(engine)
            path = request.get("path")
            if path:
                with open(path, "w") as f:
                    json.dump(doc, f, sort_keys=True)
                return {"ok": True, "path": path}
            return {"ok": True, "snapshot": doc}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"unknown op {op!r}"}


async def serve(
    engine: StreamingEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
    port_file: Optional[str] = None,
) -> int:
    """Run the service until a ``shutdown`` op arrives.

    ``port_file`` (when given) receives the bound port as text — how
    tests and scripts discover a ``--port 0`` ephemeral binding.
    """
    service = AllocationService(engine, quiet=quiet)
    bound = await service.start(host, port)
    if port_file:
        with open(port_file, "w") as f:
            f.write(str(bound))
    await service.wait_closed()
    if not quiet:
        print(
            f"service stopped after {service.requests_served} requests; "
            f"{engine.state.num_bins_used} servers used"
        )
    return 0
