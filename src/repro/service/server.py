"""The allocation service's network face: a JSON-lines protocol over TCP.

``repro serve`` binds a :class:`~repro.service.engine.StreamingEngine`
(optionally wrapped in a :class:`~repro.service.recovery.DurableEngine`
for WAL durability) to a socket.  One request per line, one JSON
response per line — the simplest protocol that a load generator, a
sidecar, or ``nc`` can speak.  All engine operations run on the event
loop thread, so concurrent connections are serialised naturally; the
engine itself never needs a lock.

Hardening contract (pinned by ``tests/service/test_protocol_fuzz.py``):
malformed JSON, oversized lines, unknown ops, bad field types, protocol
violations, and client disconnects at any byte **never crash the
server** — they produce one structured error reply
(``{"ok": false, "error": ..., "error_type": ...}``) or a clean close,
and a metrics counter.  Only an injected
:class:`~repro.service.faults.KillPoint` (which subclasses
``BaseException`` precisely so these handlers cannot swallow it) tears
the service down.

Operations
----------
``{"op": "submit", "job": {"id", "size" | "sizes", "arrival", "departure"},
   "request_id": ...}``
    Place a job (through admission control).  Response carries the
    placement: action, bin, whether a new server was opened.  With a
    client-supplied ``request_id`` the submit is idempotent: a retry of
    an acknowledged id returns the cached placement (exactly-once under
    the load generator's retry policy).
``{"op": "depart", "id": ..., "now": ...}``
    Explicit departure (``now`` optional — defaults to the job's
    recorded departure time).
``{"op": "advance", "now": ...}``
    Move the service clock, applying scheduled departures.
``{"op": "drain"}``
    Apply *all* scheduled departures (end of stream) and report the
    final packing summary.
``{"op": "stats"}`` / ``{"op": "metrics"}``
    Engine status dict / Prometheus text exposition.
``{"op": "checkpoint", "path": ...}``
    Snapshot the engine atomically; inline in the response, or to
    ``path``.  On a durable engine this cuts a real WAL checkpoint.
``{"op": "ping"}`` / ``{"op": "shutdown"}``
    Liveness / stop the server (used by tests and ``repro loadgen
    --shutdown``).
``{"op": "health"}``
    Cheap liveness-plus-progress probe for the fleet supervisor: engine
    clock, admission queue depth, WAL seq and records since the last
    checkpoint (durable engines), requests served.  Unlike ``ping`` it
    reads real engine state, so a wedged event loop or a hung handler
    cannot answer it — which is exactly what makes it a hang detector.
``{"op": "hello", "protocol": "json" | "binary", "version": 2}``
    Protocol negotiation.  Acknowledging a ``"binary"`` hello switches
    the connection to the length-prefixed binary framing of
    :mod:`repro.service.protocol` — same op set, same error taxonomy,
    ~10x the throughput once the client batches and pipelines.  The ack
    carries ``min(client, server)`` — the newest dialect both ends
    speak — so old peers interoperate.  The JSON-lines protocol stays
    the debug/compat surface; the two are differential-tested
    bit-identical (``tests/service/test_protocol_differential.py``).

Deadlines: any request (JSON field ``deadline_ms``, or the binary
``0x05`` DEADLINE wrapper) may carry its remaining deadline budget in
milliseconds.  A request whose budget is already spent is refused with
``error_type: deadline_exceeded`` *without touching the engine* — the
client has stopped waiting, so applying the operation would place a job
nobody acknowledges.
"""

from __future__ import annotations

import asyncio
import json
import math
from dataclasses import replace
from time import perf_counter
from typing import Optional

from ..algorithms import ALGORITHM_REGISTRY, make_algorithm
from ..core.items import Item
from ..core.state import PackingState
from ..multidim.items import VectorItem
from . import protocol as wire
from .admission import AdmissionPolicy
from .engine import StreamingEngine
from .faults import FaultInjector, KillPoint
from .metrics import DEFAULT_LATENCY_BUCKETS, DecisionLog, MetricsRegistry
from .recovery import DedupWindow, DurableEngine
from .shard import ShardSpec
from .snapshot import snapshot_engine, write_checkpoint

# bound once for the binary submit hot path (see _binary_item)
_ITEM_NEW = Item.__new__
_FROZEN_SET = object.__setattr__

__all__ = ["AllocationService", "ProtocolError", "build_engine", "serve"]

#: Default cap on one request line.  A line beyond it is a protocol
#: violation (the connection is closed after the error reply, since the
#: stream cannot be resynchronised mid-line).
DEFAULT_MAX_LINE_BYTES = 1 << 20


class ProtocolError(ValueError):
    """A structurally invalid request (reported, never fatal)."""


def build_engine(
    algorithm: str = "first-fit",
    capacity: float = 1.0,
    indexed: bool = True,
    admission: Optional[AdmissionPolicy] = None,
    with_metrics: bool = True,
    decision_log: Optional[DecisionLog] = None,
) -> StreamingEngine:
    """The standard scalar service engine (metrics on by default)."""
    if algorithm not in ALGORITHM_REGISTRY:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(ALGORITHM_REGISTRY)}"
        )
    return StreamingEngine.scalar(
        make_algorithm(algorithm),
        capacity=capacity,
        indexed=indexed,
        admission=admission,
        metrics=MetricsRegistry() if with_metrics else None,
        decision_log=decision_log,
    )


def _finite(value, name: str) -> float:
    try:
        out = float(value)
    except (TypeError, ValueError):
        raise ProtocolError(f"job field {name!r} is not a number: {value!r}") from None
    if not math.isfinite(out):
        raise ProtocolError(f"job field {name!r} must be finite, got {out!r}")
    return out


def _job_from_request(job, scalar: bool = True):
    if not isinstance(job, dict):
        raise ProtocolError(f"'job' must be an object, got {type(job).__name__}")
    size_field = "size" if scalar else "sizes"
    missing = [k for k in ("id", size_field, "arrival", "departure") if k not in job]
    if missing:
        raise ProtocolError(f"job record is missing field {missing[0]!r}")
    try:
        item_id = int(job["id"])
    except (TypeError, ValueError):
        raise ProtocolError(f"job id must be an integer, got {job['id']!r}") from None
    arrival = _finite(job["arrival"], "arrival")
    departure = _finite(job["departure"], "departure")
    if departure <= arrival:
        raise ProtocolError(
            f"job departure ({departure}) must be after arrival ({arrival})"
        )
    if scalar:
        size = _finite(job["size"], "size")
        if size <= 0:
            raise ProtocolError(f"job size must be positive, got {size}")
        return Item(item_id, size, arrival, departure)
    raw = job["sizes"]
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ProtocolError(
            f"job field 'sizes' must be a non-empty array, got {raw!r}"
        )
    sizes = tuple(_finite(s, "sizes") for s in raw)
    try:
        return VectorItem(item_id, sizes, arrival, departure)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None


class AllocationService:
    """One engine behind an asyncio JSON-lines endpoint.

    ``request_timeout`` bounds each read-dispatch-write cycle once a
    request has started arriving (and every write); ``idle_timeout``
    optionally reaps connections that go silent between requests.
    """

    def __init__(
        self,
        engine: StreamingEngine | DurableEngine,
        quiet: bool = True,
        *,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        request_timeout: float = 30.0,
        idle_timeout: Optional[float] = None,
        injector: Optional[FaultInjector] = None,
        shard: Optional["ShardSpec"] = None,
        defrag_budget: int = 0,
        defrag_interval: float = 0.5,
    ):
        self.engine = engine
        self.quiet = quiet
        #: fleet identity; None = standalone service (stats unchanged)
        self.shard = shard
        self.max_line_bytes = int(max_line_bytes)
        self.request_timeout = request_timeout
        self.idle_timeout = idle_timeout
        self.injector = injector
        #: background defragmenter: every ``defrag_interval`` wall-clock
        #: seconds, migrate up to ``defrag_budget`` items (0 = off)
        self.defrag_budget = int(defrag_budget)
        self.defrag_interval = float(defrag_interval)
        self._defrag_task: Optional[asyncio.Task] = None
        self._durable = isinstance(engine, DurableEngine)
        #: idempotency window for non-durable engines (a durable engine
        #: owns its own, rebuilt by recovery)
        self._dedup = engine.dedup if self._durable else DedupWindow()
        base = engine.engine if self._durable else engine
        self._scalar = isinstance(base.state, PackingState)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._fatal: Optional[BaseException] = None
        self.requests_served = 0
        #: service-owned observables (request latency): kept *out* of the
        #: engine registry on purpose — engine metrics are checkpointed
        #: and differential-compared, and wall-clock latency is neither
        #: replayable nor deterministic
        self.service_metrics = MetricsRegistry()
        self._latency = self.service_metrics.histogram(
            "repro_service_request_latency_seconds",
            "server-side request handling latency, dispatch to reply written",
            DEFAULT_LATENCY_BUCKETS,
        )
        if engine.metrics is not None:
            self._declare_metrics(engine.metrics)

    # -- lifecycle ------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Bind and start serving; returns the actual port (for port 0)."""
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self.max_line_bytes
        )
        bound = self._server.sockets[0].getsockname()[1]
        if self.defrag_budget > 0:
            self._defrag_task = asyncio.get_running_loop().create_task(
                self._defrag_loop()
            )
        if not self.quiet:
            print(f"repro service listening on {host}:{bound}")
        return bound

    async def _defrag_loop(self) -> None:
        """The background defragmenter: one bounded pass per interval.

        Runs on the connection handlers' event loop, so each pass is
        serialised against request dispatch — the engine never sees a
        migration interleaved inside an event.  An injected
        :class:`KillPoint` (chaos testing kills a pass mid-migration)
        escalates through the same fatal-shutdown path a connection
        handler uses.
        """
        try:
            while True:
                await asyncio.sleep(self.defrag_interval)
                self.engine.defrag(self.defrag_budget)
        except asyncio.CancelledError:
            raise
        except KillPoint as exc:
            self._fatal = exc
            self._shutdown.set()

    async def wait_closed(self) -> None:
        """Block until a ``shutdown`` op arrives, then close the socket.

        Re-raises an injected :class:`KillPoint` after closing: the kill
        fires inside a per-connection handler task, where asyncio would
        otherwise log it and keep the server alive.
        """
        await self._shutdown.wait()
        if self._defrag_task is not None:
            self._defrag_task.cancel()
            try:
                await self._defrag_task
            except asyncio.CancelledError:
                pass
            self._defrag_task = None
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        if self._fatal is not None:
            raise self._fatal

    async def serve_until_shutdown(self, host: str = "127.0.0.1", port: int = 0) -> int:
        await self.start(host, port)
        await self.wait_closed()
        return 0

    # -- protocol -------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while not reader.at_eof():
                try:
                    line = await asyncio.wait_for(
                        reader.readline(), self.idle_timeout
                    )
                except asyncio.TimeoutError:
                    self._count("repro_service_request_timeouts_total")
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    # the line outgrew the buffer limit: report and close —
                    # there is no way to resynchronise mid-line
                    self._count("repro_service_malformed_requests_total")
                    await self._reply(
                        writer,
                        {
                            "ok": False,
                            "error": f"request line exceeds {self.max_line_bytes} bytes",
                            "error_type": "line_too_long",
                        },
                    )
                    break
                if not line:
                    break
                if not line.endswith(b"\n") and reader.at_eof():
                    # a torn final request: the client died mid-line
                    self._count("repro_service_disconnects_total")
                    break
                if self.injector is not None and self.injector.hang_point("request"):
                    # injected hang: the process stays alive but never
                    # answers again — only the supervisor's health
                    # prober (missed-probe restart) can clear this
                    await asyncio.Event().wait()
                started = perf_counter()
                response = self._dispatch_line(line)
                if self.injector is not None:
                    fate, delay = self.injector.reply_fate()
                    if delay:
                        await asyncio.sleep(delay)
                    if fate == "drop":
                        self._count("repro_service_dropped_replies_total")
                        break
                sent = await self._reply(writer, response)
                if not sent:
                    break
                self._latency.observe(perf_counter() - started)
                if response.get("bye"):
                    self._shutdown.set()
                    break
                if response.get("ok") and response.get("protocol") == "binary":
                    # the hello ack is on the wire; from the next byte
                    # both directions speak length-prefixed binary frames
                    await self._handle_binary(reader, writer)
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            # the client vanished mid-request: count it, close cleanly —
            # never let it surface as an unhandled task exception
            self._count("repro_service_disconnects_total")
        except KillPoint as exc:
            # an injected crash must take the whole process down, but it
            # fires inside this connection's task — asyncio would log it
            # and carry on.  Escalate through the shutdown path instead.
            self._fatal = exc
            self._shutdown.set()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reply(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        """Send one response line; False when the client is gone."""
        return await self._write_reply(
            writer, (json.dumps(response) + "\n").encode()
        )

    async def _write_reply(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        """Write one encoded reply (line or frame), torn-kill seam included."""
        injector = self.injector
        try:
            if injector is not None and injector.reply_kill() == "tear":
                # crash mid-reply: half the bytes reach the client, then
                # the process dies (reply_torn raises the KillPoint)
                writer.write(data[: max(1, len(data) // 2)])
                await asyncio.wait_for(writer.drain(), self.request_timeout)
                injector.reply_torn()
            writer.write(data)
            await asyncio.wait_for(writer.drain(), self.request_timeout)
            return True
        except (ConnectionError, asyncio.TimeoutError, OSError):
            self._count("repro_service_disconnects_total")
            return False

    def _dispatch_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            self._count("repro_service_malformed_requests_total")
            return {
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }
        if not isinstance(request, dict):
            self._count("repro_service_malformed_requests_total")
            return {
                "ok": False,
                "error": f"request must be a JSON object, got {type(request).__name__}",
                "error_type": "protocol",
            }
        return self._dispatch_safely(request)

    def _deadline_expired(self, budget_ms) -> Optional[dict]:
        """The refusal doc when a request's deadline budget is spent."""
        try:
            budget = float(budget_ms)
        except (TypeError, ValueError):
            self._count("repro_service_protocol_errors_total")
            return {
                "ok": False,
                "error": f"deadline_ms must be a number, got {budget_ms!r}",
                "error_type": "protocol",
            }
        if budget > 0:
            return None
        self._count("repro_service_deadline_exceeded_total")
        return {
            "ok": False,
            "error": f"deadline budget exhausted ({budget:.3f} ms remaining)",
            "error_type": "deadline_exceeded",
        }

    def _dispatch_safely(self, request: dict) -> dict:
        """Dispatch one parsed request under the full error taxonomy."""
        budget_ms = request.get("deadline_ms")
        if budget_ms is not None:
            expired = self._deadline_expired(budget_ms)
            if expired is not None:
                return expired
        try:
            return self._dispatch(request)
        except ProtocolError as exc:
            self._count("repro_service_protocol_errors_total")
            return {"ok": False, "error": str(exc), "error_type": "protocol"}
        except (ValueError, KeyError) as exc:
            # engine-level refusals (time-ordering, unknown ids, ...)
            self._count("repro_service_protocol_errors_total")
            detail = exc.args[0] if exc.args else str(exc)
            return {"ok": False, "error": str(detail), "error_type": "rejected"}
        except OSError as exc:
            # WAL I/O failure: the operation was refused, state is intact
            return {
                "ok": False,
                "error": f"durability failure: {exc}",
                "error_type": "wal_unavailable",
            }
        except Exception as exc:  # protocol boundary: report, don't crash
            self._count("repro_service_internal_errors_total")
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            }

    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        engine = self.engine
        injector = self.injector
        if op == "submit":
            if "job" not in request:
                raise ProtocolError("submit needs a 'job' object")
            item = _job_from_request(request["job"], self._scalar)
            if injector is not None and injector.plan.clock_skew:
                item = replace(item, arrival=injector.skew(item.arrival))
            rid = request.get("request_id")
            if rid is not None:
                rid = str(rid)
            if self._durable:
                placement = engine.submit(item, request_id=rid)
            else:
                if rid is not None:
                    cached = self._dedup.get(rid)
                    if cached is not None:
                        self._count("repro_service_duplicate_requests_total")
                        return {"ok": True, "placement": cached, "duplicate": True}
                placement = engine.submit(item)
                if rid is not None:
                    self._dedup.put(rid, placement.to_dict())
            return {"ok": True, "placement": placement.to_dict()}
        if op == "depart":
            if "id" not in request:
                raise ProtocolError("depart needs an 'id'")
            engine.depart(int(request["id"]), request.get("now"))
            return {"ok": True, "clock": engine.clock}
        if op == "advance":
            if "now" not in request:
                raise ProtocolError("advance needs a 'now'")
            applied = engine.advance(_finite(request["now"], "now"))
            return {"ok": True, "departed": applied, "clock": engine.clock}
        if op == "drain":
            result = engine.finish()
            return {
                "ok": True,
                "bins": result.num_bins,
                "total_usage_time": result.total_usage_time,
                "algorithm": result.algorithm_name,
            }
        if op == "defrag":
            budget = request.get("budget", self.defrag_budget)
            try:
                budget = int(budget)
            except (TypeError, ValueError):
                raise ProtocolError(
                    f"defrag budget must be an integer, got {budget!r}"
                ) from None
            if budget < 0:
                raise ProtocolError(f"defrag budget must be >= 0, got {budget}")
            moved = engine.defrag(budget)
            return {"ok": True, "moved": moved, "migrations": engine.migrations}
        if op == "stats":
            stats = engine.stats()
            if self.shard is not None:
                stats = dict(stats)
                stats["shard"] = {
                    "id": self.shard.shard_id,
                    "of": self.shard.num_shards,
                }
            return {"ok": True, "stats": stats}
        if op == "metrics":
            if engine.metrics is None:
                return {
                    "ok": False,
                    "error": "service was started without metrics",
                    "error_type": "protocol",
                }
            return {
                "ok": True,
                "text": engine.metrics.expose_text()
                + self.service_metrics.expose_text(),
            }
        if op == "checkpoint":
            if self._durable and not request.get("path"):
                path = engine.checkpoint_now()
                return {"ok": True, "path": path}
            doc = snapshot_engine(engine.engine if self._durable else engine)
            path = request.get("path")
            if path:
                write_checkpoint(str(path), doc)
                return {"ok": True, "path": path}
            return {"ok": True, "snapshot": doc}
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "health":
            health = {
                "clock": engine.clock,
                "queue_depth": getattr(engine, "queue_depth", 0),
                "requests": self.requests_served,
            }
            if self._durable:
                health["wal_seq"] = engine.wal.last_seq
                health["since_checkpoint"] = engine._since_checkpoint
            if self.shard is not None:
                health["shard"] = self.shard.shard_id
            return {"ok": True, "health": health}
        if op == "shutdown":
            return {"ok": True, "bye": True}
        if op == "hello":
            proto = request.get("protocol", "json")
            if proto not in wire.PROTOCOLS:
                raise ProtocolError(
                    f"unknown protocol {proto!r}; known: {list(wire.PROTOCOLS)}"
                )
            version = request.get("version", wire.PROTOCOL_VERSION)
            if not isinstance(version, int):
                raise ProtocolError(
                    f"protocol version must be an integer, got {version!r}"
                )
            agreed = wire.negotiate_version(version)
            if agreed is None:
                raise ProtocolError(
                    f"unsupported protocol version {version!r} (this server "
                    f"speaks {wire.MIN_PROTOCOL_VERSION}.."
                    f"{wire.PROTOCOL_VERSION})"
                )
            return {"ok": True, "protocol": proto, "version": agreed}
        raise ProtocolError(f"unknown op {op!r}")

    # -- binary protocol ------------------------------------------------------
    async def _handle_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """The post-hello frame loop: same ops, same taxonomy, no JSON.

        Framing keeps the stream in sync, so a malformed payload inside
        a well-formed frame is answered and the connection survives.
        Only two defects force a close: a declared length beyond
        ``max_line_bytes`` (``frame_too_long`` — reading it out would be
        unbounded) and a frame torn by a disconnect.
        """
        header_size = wire.HEADER.size
        unpack_header = wire.HEADER.unpack
        while True:
            try:
                head = await asyncio.wait_for(
                    reader.readexactly(header_size), self.idle_timeout
                )
            except asyncio.TimeoutError:
                self._count("repro_service_request_timeouts_total")
                return
            except asyncio.IncompleteReadError as exc:
                if exc.partial:  # torn header: the client died mid-frame
                    self._count("repro_service_disconnects_total")
                return
            (length,) = unpack_header(head)
            if length == 0:
                self.requests_served += 1
                self._count("repro_service_malformed_requests_total")
                out = wire.encode_json_response({
                    "ok": False,
                    "error": "zero-length frame",
                    "error_type": "malformed_frame",
                })
                if not await self._write_reply(writer, wire.frame(out)):
                    return
                continue
            if length > self.max_line_bytes:
                self.requests_served += 1
                self._count("repro_service_malformed_requests_total")
                out = wire.encode_json_response({
                    "ok": False,
                    "error": (
                        f"frame declares {length} bytes, "
                        f"limit is {self.max_line_bytes}"
                    ),
                    "error_type": "frame_too_long",
                })
                await self._write_reply(writer, wire.frame(out))
                return
            try:
                payload = await asyncio.wait_for(
                    reader.readexactly(length), self.request_timeout
                )
            except asyncio.TimeoutError:
                self._count("repro_service_request_timeouts_total")
                return
            except asyncio.IncompleteReadError:
                self._count("repro_service_disconnects_total")
                return
            if self.injector is not None and self.injector.hang_point("request"):
                # injected hang: alive but silent (see the JSON loop)
                await asyncio.Event().wait()
            started = perf_counter()
            out, bye = self._dispatch_frame(payload)
            if self.injector is not None:
                fate, delay = self.injector.reply_fate()
                if delay:
                    await asyncio.sleep(delay)
                if fate == "drop":
                    self._count("repro_service_dropped_replies_total")
                    return
            if not await self._write_reply(writer, wire.frame(out)):
                return
            self._latency.observe(perf_counter() - started)
            if bye:
                self._shutdown.set()
                return

    def _dispatch_frame(self, payload) -> tuple[bytes, bool]:
        """One frame payload -> ``(response payload, shutdown?)``.

        A v2 DEADLINE wrapper is stripped here, at the top level only —
        one budget covers a whole batch, and sub-requests cannot carry
        their own.
        """
        try:
            payload, budget_ms = wire.unwrap_deadline(payload)
        except wire.FrameError as exc:
            self.requests_served += 1
            return self._frame_error(exc), False
        if budget_ms is not None and budget_ms <= 0:
            self.requests_served += 1
            self._count("repro_service_deadline_exceeded_total")
            return wire.encode_json_response({
                "ok": False,
                "error": (
                    f"deadline budget exhausted ({budget_ms:.3f} ms remaining)"
                ),
                "error_type": "deadline_exceeded",
            }), False
        if payload[0] == wire.OP_BATCH:
            return self._dispatch_batch(payload)
        return self._dispatch_binary_one(payload)

    def _dispatch_binary_one(self, sub) -> tuple[bytes, bool]:
        """One non-batch sub-request (top-level or inside a batch)."""
        self.requests_served += 1
        op = sub[0]
        if op == wire.OP_SUBMIT:
            return self._binary_submit(sub), False
        if op == wire.OP_DEPART:
            try:
                item_id, now = wire.decode_depart(sub)
            except wire.FrameError as exc:
                return self._frame_error(exc), False
            request: dict = {"op": "depart", "id": item_id}
            if now is not None:
                request["now"] = now
            return self._encode_response(self._dispatch_safely(request)), False
        if op == wire.OP_ADVANCE:
            try:
                now = wire.decode_advance(sub)
            except wire.FrameError as exc:
                return self._frame_error(exc), False
            response = self._dispatch_safely({"op": "advance", "now": now})
            return self._encode_response(response), False
        if op == wire.OP_JSON:
            try:
                request = json.loads(bytes(sub[1:]))
            except (ValueError, UnicodeDecodeError) as exc:
                self._count("repro_service_malformed_requests_total")
                return wire.encode_json_response({
                    "ok": False,
                    "error": f"malformed JSON: {exc}",
                    "error_type": "malformed_json",
                }), False
            if not isinstance(request, dict):
                self._count("repro_service_malformed_requests_total")
                return wire.encode_json_response({
                    "ok": False,
                    "error": (
                        "request must be a JSON object, "
                        f"got {type(request).__name__}"
                    ),
                    "error_type": "protocol",
                }), False
            response = self._dispatch_safely(request)
            return self._encode_response(response), bool(response.get("bye"))
        if op == wire.OP_BATCH:
            return self._frame_error(
                wire.FrameError("batch frames cannot nest")
            ), False
        self._count("repro_service_protocol_errors_total")
        return wire.encode_json_response({
            "ok": False,
            "error": f"unknown opcode 0x{op:02x}",
            "error_type": "protocol",
        }), False

    def _binary_submit(self, sub) -> bytes:
        try:
            item_id, size, arrival, departure, vector, rid = wire.decode_submit(sub)
        except wire.FrameError as exc:
            return self._frame_error(exc)
        try:
            item = self._binary_item(item_id, size, arrival, departure, vector)
        except ProtocolError as exc:
            self._count("repro_service_protocol_errors_total")
            return wire.encode_json_response(
                {"ok": False, "error": str(exc), "error_type": "protocol"}
            )
        injector = self.injector
        if injector is not None and injector.plan.clock_skew:
            item = replace(item, arrival=injector.skew(item.arrival))
        return self._submit_one(item, rid)

    def _binary_item(self, item_id, size, arrival, departure, vector: bool):
        """Decoded submit fields -> an item, validated like the JSON path."""
        if vector == self._scalar:
            kind = "vector" if vector else "scalar"
            want = "scalar" if self._scalar else "vector"
            raise ProtocolError(f"{kind} submit against a {want} engine")
        if not (math.isfinite(arrival) and math.isfinite(departure)):
            raise ProtocolError("job times must be finite")
        if departure <= arrival:
            raise ProtocolError(
                f"job departure ({departure}) must be after arrival ({arrival})"
            )
        if vector:
            for s in size:
                if not math.isfinite(s):
                    raise ProtocolError(f"job field 'sizes' must be finite, got {s!r}")
            try:
                return VectorItem(item_id, size, arrival, departure)
            except ValueError as exc:
                raise ProtocolError(str(exc)) from None
        if not math.isfinite(size):
            raise ProtocolError(f"job field 'size' must be finite, got {size!r}")
        if size <= 0:
            raise ProtocolError(f"job size must be positive, got {size}")
        # the checks above are a strict superset of Item.__post_init__'s
        # (isfinite implies not-NaN), so build the frozen instance
        # directly instead of paying the dataclass __init__ plus a
        # second validation pass on every submit
        item = _ITEM_NEW(Item)
        _FROZEN_SET(item, "item_id", item_id)
        _FROZEN_SET(item, "size", size)
        _FROZEN_SET(item, "arrival", arrival)
        _FROZEN_SET(item, "departure", departure)
        return item

    def _submit_one(self, item, rid: Optional[str]) -> bytes:
        """The binary submit hot path; same taxonomy as the JSON path."""
        engine = self.engine
        try:
            if self._durable:
                placement = engine.submit(item, request_id=rid)
                return wire.encode_placement(
                    placement.item_id, placement.action, placement.bin_index,
                    placement.new_bin, placement.time,
                )
            if rid is not None:
                cached = self._dedup.get(rid)
                if cached is not None:
                    self._count("repro_service_duplicate_requests_total")
                    return wire.encode_placement(
                        cached["item_id"], cached["action"], cached["bin"],
                        cached["new_bin"], cached["time"], duplicate=True,
                    )
            placement = engine.submit(item)
            if rid is not None:
                self._dedup.put(rid, placement.to_dict())
            return wire.encode_placement(
                placement.item_id, placement.action, placement.bin_index,
                placement.new_bin, placement.time,
            )
        except (ValueError, KeyError) as exc:
            self._count("repro_service_protocol_errors_total")
            detail = exc.args[0] if exc.args else str(exc)
            return wire.encode_json_response(
                {"ok": False, "error": str(detail), "error_type": "rejected"}
            )
        except OSError as exc:
            return wire.encode_json_response({
                "ok": False,
                "error": f"durability failure: {exc}",
                "error_type": "wal_unavailable",
            })
        except Exception as exc:
            self._count("repro_service_internal_errors_total")
            return wire.encode_json_response({
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            })

    def _dispatch_batch(self, payload) -> tuple[bytes, bool]:
        try:
            subs = wire.split_batch(payload)
        except wire.FrameError as exc:
            self.requests_served += 1
            return self._frame_error(exc), False
        op_submit = wire.OP_SUBMIT
        if all(sub[0] == op_submit for sub in subs):
            return self._dispatch_submit_batch(subs), False
        parts: list[bytes] = []
        bye = False
        for sub in subs:
            out, sub_bye = self._dispatch_binary_one(sub)
            bye = bye or sub_bye
            parts.append(out)
        return wire.encode_batch(parts), bye

    def _dispatch_submit_batch(self, subs) -> bytes:
        """An all-submit batch: decode everything, then one engine pass.

        On a durable engine the whole batch goes through
        :meth:`~repro.service.recovery.DurableEngine.submit_many` — one
        WAL group-commit window (one fsync under ``fsync="always"``)
        instead of one per job.
        """
        self.requests_served += len(subs)
        parts: list = [None] * len(subs)
        decode = wire.decode_submit
        injector = self.injector
        skewing = injector is not None and injector.plan.clock_skew
        if self._durable:
            # two-phase: decode the whole batch, then one group-commit
            # window through submit_many
            requests: list = []
            indices: list[int] = []
            for i, sub in enumerate(subs):
                try:
                    item_id, size, arrival, departure, vector, rid = decode(sub)
                    item = self._binary_item(item_id, size, arrival, departure, vector)
                except wire.FrameError as exc:
                    parts[i] = self._frame_error(exc)
                    continue
                except ProtocolError as exc:
                    self._count("repro_service_protocol_errors_total")
                    parts[i] = wire.encode_json_response(
                        {"ok": False, "error": str(exc), "error_type": "protocol"}
                    )
                    continue
                if skewing:
                    item = replace(item, arrival=injector.skew(item.arrival))
                indices.append(i)
                requests.append((item, rid))
            if requests:
                outcomes = self.engine.submit_many(requests)
                for i, outcome in zip(indices, outcomes):
                    parts[i] = self._encode_outcome(outcome)
            return wire.encode_batch(parts)
        # non-durable: single fused pass (this loop IS the loopback hot
        # path — every call it avoids per job is measurable in bench)
        engine = self.engine
        binary_item = self._binary_item
        encode_placement = wire.encode_placement
        for i, sub in enumerate(subs):
            try:
                item_id, size, arrival, departure, vector, rid = decode(sub)
                item = binary_item(item_id, size, arrival, departure, vector)
            except wire.FrameError as exc:
                parts[i] = self._frame_error(exc)
                continue
            except ProtocolError as exc:
                self._count("repro_service_protocol_errors_total")
                parts[i] = wire.encode_json_response(
                    {"ok": False, "error": str(exc), "error_type": "protocol"}
                )
                continue
            if skewing:
                item = replace(item, arrival=injector.skew(item.arrival))
            if rid is not None:
                parts[i] = self._submit_one(item, rid)
                continue
            try:
                p = engine.submit(item)
            except (ValueError, KeyError) as exc:
                self._count("repro_service_protocol_errors_total")
                detail = exc.args[0] if exc.args else str(exc)
                parts[i] = wire.encode_json_response(
                    {"ok": False, "error": str(detail), "error_type": "rejected"}
                )
                continue
            except Exception as exc:
                self._count("repro_service_internal_errors_total")
                parts[i] = wire.encode_json_response({
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "error_type": "internal",
                })
                continue
            parts[i] = encode_placement(
                p.item_id, p.action, p.bin_index, p.new_bin, p.time
            )
        return wire.encode_batch(parts)

    def _encode_outcome(self, outcome) -> bytes:
        """One :meth:`submit_many` outcome as a binary sub-response."""
        kind, value = outcome
        if kind == "placed":
            return wire.encode_placement(
                value.item_id, value.action, value.bin_index,
                value.new_bin, value.time,
            )
        if kind == "cached":
            # the durable dedup window answers with the original
            # placement, unflagged — exactly what the JSON path sends
            return wire.encode_placement(
                value["item_id"], value["action"], value["bin"],
                value["new_bin"], value["time"],
            )
        exc = value
        if isinstance(exc, OSError):
            return wire.encode_json_response({
                "ok": False,
                "error": f"durability failure: {exc}",
                "error_type": "wal_unavailable",
            })
        self._count("repro_service_protocol_errors_total")
        detail = exc.args[0] if exc.args else str(exc)
        return wire.encode_json_response(
            {"ok": False, "error": str(detail), "error_type": "rejected"}
        )

    def _frame_error(self, exc: Exception) -> bytes:
        self._count("repro_service_malformed_requests_total")
        return wire.encode_json_response(
            {"ok": False, "error": str(exc), "error_type": "malformed_frame"}
        )

    def _encode_response(self, response: dict) -> bytes:
        """A dispatch result re-encoded in the binary response scheme."""
        if response.get("ok"):
            placement = response.get("placement")
            if placement is not None:
                return wire.encode_placement(
                    placement["item_id"], placement["action"], placement["bin"],
                    placement["new_bin"], placement["time"],
                    duplicate=bool(response.get("duplicate")),
                )
            if "clock" in response:
                if "departed" in response:
                    return wire.encode_clock(
                        response["clock"], response["departed"]
                    )
                if len(response) == 2:
                    return wire.encode_clock(response["clock"])
        return wire.encode_json_response(response)

    # -- metrics plumbing -----------------------------------------------------
    def _declare_metrics(self, reg: MetricsRegistry) -> None:
        for name, help_text in (
            ("repro_service_malformed_requests_total",
             "requests that were not valid JSON"),
            ("repro_service_protocol_errors_total",
             "structurally invalid or refused requests"),
            ("repro_service_internal_errors_total",
             "requests that hit an unexpected server error"),
            ("repro_service_disconnects_total",
             "client connections lost mid-request"),
            ("repro_service_request_timeouts_total",
             "connections reaped by the idle timeout"),
            ("repro_service_dropped_replies_total",
             "replies dropped by fault injection"),
            ("repro_service_duplicate_requests_total",
             "submits answered from the idempotency window"),
            ("repro_service_deadline_exceeded_total",
             "requests refused because their deadline budget was spent"),
        ):
            if name not in reg:
                reg.counter(name, help_text)

    def _count(self, name: str, amount: float = 1.0) -> None:
        metrics = self.engine.metrics
        if metrics is not None and name in metrics:
            metrics.get(name).inc(amount)


async def serve(
    engine: StreamingEngine | DurableEngine,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = False,
    port_file: Optional[str] = None,
    **service_kwargs,
) -> int:
    """Run the service until a ``shutdown`` op arrives.

    ``port_file`` (when given) receives the bound port as text — how
    tests and scripts discover a ``--port 0`` ephemeral binding.  Extra
    keyword arguments reach :class:`AllocationService` (timeouts, line
    limits, fault injector).
    """
    service = AllocationService(engine, quiet=quiet, **service_kwargs)
    bound = await service.start(host, port)
    if port_file:
        with open(port_file, "w") as f:
            f.write(str(bound))
    await service.wait_closed()
    if not quiet:
        print(
            f"service stopped after {service.requests_served} requests; "
            f"{engine.state.num_bins_used} servers used"
        )
    return 0
