"""Shard-scoped service context: one engine, one WAL dir, one registry.

The fleet architecture (``repro fleet`` + :mod:`repro.service.router`)
runs N identical workers, each owning one consistent-hash shard of the
keyspace.  Everything a worker owns — streaming engine, WAL/checkpoint
directory, metrics registry, decision log — is bundled here as a
:class:`ShardContext`, so nothing in the service stack is process-global:
``repro serve`` is simply the degenerate 1-shard case of the same boot
path the fleet supervisor uses per worker.

The context also owns the WAL directory's *identity*: on first boot with
a ``wal_dir`` it writes a ``MANIFEST`` file recording the shard id,
shard count, and a fingerprint of the engine configuration
(:func:`repro.service.snapshot.config_fingerprint`).  Every later boot
must present the same identity or the directory is refused — replaying
shard 3's log into shard 1's engine, or a first-fit log into a best-fit
engine, would silently corrupt placements that are already billed.
Shard identity lives **only** in the MANIFEST, never inside WAL records
or checkpoints: a shard's durable byte stream stays bit-identical to a
standalone single-shard run over the same key-partitioned subsequence
(pinned by ``tests/service/test_router.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .admission import AdmissionPolicy
from .engine import StreamingEngine
from .faults import FaultInjector
from .metrics import DecisionLog, MetricsRegistry
from .recovery import DurableEngine, RecoveryReport, recover
from .snapshot import config_fingerprint

__all__ = ["MANIFEST_VERSION", "ShardContext", "ShardSpec", "shard_manifest"]

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """Which slice of the fleet a context serves.

    The default ``(0, 1)`` is the standalone single-process service —
    one shard owning the whole keyspace.
    """

    shard_id: int = 0
    num_shards: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if not 0 <= self.shard_id < self.num_shards:
            raise ValueError(
                f"shard_id must be in [0, {self.num_shards}), got {self.shard_id}"
            )


def shard_manifest(spec: ShardSpec, engine_config: dict) -> dict:
    """The MANIFEST document binding a WAL dir to a shard + engine config."""
    return {
        "version": MANIFEST_VERSION,
        "shard_id": spec.shard_id,
        "num_shards": spec.num_shards,
        "engine": engine_config,
        "fingerprint": config_fingerprint(engine_config),
    }


class ShardContext:
    """Everything one shard owns, built through one boot path.

    Use :meth:`create`: it builds a fresh engine, or — with ``wal_dir``
    — recovers the durable engine from the directory after validating
    (or writing) its MANIFEST.  The context is what ``repro serve``
    binds to a socket and what each fleet worker process is.
    """

    def __init__(
        self,
        spec: ShardSpec,
        engine: "StreamingEngine | DurableEngine",
        *,
        wal_dir: Optional[str] = None,
        recovery_report: Optional[RecoveryReport] = None,
    ):
        self.spec = spec
        self.engine = engine
        self.wal_dir = wal_dir
        self.recovery_report = recovery_report

    @property
    def durable(self) -> bool:
        return isinstance(self.engine, DurableEngine)

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        return self.engine.metrics

    @classmethod
    def create(
        cls,
        spec: ShardSpec = ShardSpec(),
        *,
        algorithm: str = "first-fit",
        capacity: float = 1.0,
        indexed: bool = True,
        admission: Optional[AdmissionPolicy] = None,
        with_metrics: bool = True,
        decision_log: Optional[DecisionLog] = None,
        wal_dir: Optional[str] = None,
        fsync: str = "interval",
        fsync_every: int = 512,
        segment_bytes: Optional[int] = None,
        checkpoint_every: int = 1000,
        checkpoint_bytes: Optional[int] = None,
        dedup_limit: int = 4096,
        injector: Optional[FaultInjector] = None,
    ) -> "ShardContext":
        """Boot one shard: fresh engine, or recover + manifest-check."""
        from .server import build_engine  # late: server imports this module's peers

        def fresh() -> StreamingEngine:
            return build_engine(
                algorithm=algorithm,
                capacity=capacity,
                indexed=indexed,
                admission=admission,
                with_metrics=with_metrics,
                decision_log=decision_log,
            )

        if wal_dir is None:
            return cls(spec, fresh())
        # the manifest fingerprints the would-be fresh config; a probe
        # engine is the one source of truth for what that config is
        probe = build_engine(
            algorithm=algorithm,
            capacity=capacity,
            indexed=indexed,
            admission=admission,
            with_metrics=False,
        )
        manifest = shard_manifest(spec, probe.config())
        engine, report = recover(
            wal_dir,
            engine_builder=fresh,
            admission=admission,
            metrics=MetricsRegistry() if with_metrics else None,
            decision_log=decision_log,
            fsync=fsync,
            fsync_every=fsync_every,
            segment_bytes=segment_bytes,
            checkpoint_every=checkpoint_every,
            checkpoint_bytes=checkpoint_bytes,
            dedup_limit=dedup_limit,
            injector=injector,
            manifest=manifest,
        )
        return cls(spec, engine, wal_dir=wal_dir, recovery_report=report)

    def close(self) -> None:
        engine = self.engine
        if hasattr(engine, "close"):
            engine.close()
