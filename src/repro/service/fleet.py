"""Fleet supervisor: N shard workers + one router, restart on crash.

``repro fleet --shards N`` turns the single-process service into a
horizontally sharded one without changing a line of engine code: the
supervisor spawns N ``repro serve`` worker processes (each a
:class:`~repro.service.shard.ShardContext` bound to its own
``<wal-root>/shard-XX`` directory), fronts them with a
:class:`~repro.service.router.ShardRouter`, and babysits the processes:

- **Crash restart.**  A worker that dies mid-stream is respawned on the
  same WAL directory — ``repro serve --wal-dir`` *is* ``repro recover``
  followed by listening, so the restarted worker comes back with the
  exact engine state, dedup window, and metrics it crashed with.  The
  router's backend link holds the unacknowledged window meanwhile and
  resends it after the redirect; the dedup window turns the resends
  into cached replies.  Clients see a latency blip, not an error.
- **Live handoff.**  ``{"op": "handoff", "shard": k}`` (or
  :meth:`FleetSupervisor.handoff`) drains shard *k*'s in-flight window,
  checkpoints it, stops the worker, boots a replacement on the same
  directory, and repoints the link — the drain/checkpoint/restore move
  behind one pause gate, losing no accepted request.
- **Health probing.**  With ``probe_interval > 0`` the supervisor sends
  a cheap ``health`` op down each shard's control lane every interval.
  A worker that misses ``probe_misses`` consecutive probes (each bounded
  by ``probe_timeout``) is declared *hung* — alive as a process but not
  answering — and is killed and respawned on its WAL directory through
  the same redirect machinery the crash path uses.  The control lane
  bypasses the circuit breaker on purpose: a shard the breaker has
  written off is exactly the one that needs probing.

Worker stdout/stderr are inherited, so ``--fault-plan`` kill messages
and recovery reports land in the fleet's own log stream.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from typing import Optional, Sequence

from .router import ShardRouter

__all__ = ["FleetSupervisor"]

PORT_FILE_NAME = "PORT"


class FleetSupervisor:
    """Owns the worker processes and the router that fronts them.

    ``serve_args`` is passed through to every ``repro serve`` worker
    verbatim (engine and durability flags: ``--algorithm``, ``--fsync``,
    ...).  ``fault_plans`` maps shard index → fault-plan path, applied
    only to the *first* boot of that worker — the respawn after the
    planned crash must come up clean, which is exactly the scenario the
    chaos suite drives.
    """

    def __init__(
        self,
        shards: int,
        wal_root: str,
        *,
        host: str = "127.0.0.1",
        tenants: int = 0,
        serve_args: Optional[Sequence[str]] = None,
        fault_plans: Optional[dict[int, str]] = None,
        quiet: bool = True,
        spawn_deadline: float = 20.0,
        reconnect_wait: float = 30.0,
        probe_interval: float = 0.0,
        probe_timeout: float = 1.0,
        probe_misses: int = 3,
        router_kwargs: Optional[dict] = None,
    ):
        if shards < 1:
            raise ValueError(f"fleet needs at least one shard, got {shards}")
        if probe_interval < 0:
            raise ValueError(f"probe_interval must be >= 0, got {probe_interval}")
        if probe_timeout <= 0:
            raise ValueError(f"probe_timeout must be > 0, got {probe_timeout}")
        if probe_misses < 1:
            raise ValueError(f"probe_misses must be >= 1, got {probe_misses}")
        self.num_shards = shards
        self.wal_root = wal_root
        self.host = host
        self.quiet = quiet
        self.serve_args = list(serve_args or ())
        self.fault_plans = dict(fault_plans or {})
        self.spawn_deadline = spawn_deadline
        self.reconnect_wait = reconnect_wait
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.probe_misses = probe_misses
        self.router_kwargs = dict(router_kwargs or {})
        self.procs: list[Optional[subprocess.Popen]] = [None] * shards
        self.ports: list[int] = [0] * shards
        self.restarts: list[int] = [0] * shards
        self.probe_missed: list[int] = [0] * shards
        self.probe_restarts: list[int] = [0] * shards
        self.last_health: list[Optional[dict]] = [None] * shards
        self.router: Optional[ShardRouter] = None
        self._moving = [False] * shards  # handoff in progress: monitor, hands off
        self._stopping = False
        self._tenants = tenants

    # -- worker processes -----------------------------------------------------
    def shard_dir(self, index: int) -> str:
        return os.path.join(self.wal_root, f"shard-{index:02d}")

    def _port_file(self, index: int) -> str:
        return os.path.join(self.shard_dir(index), PORT_FILE_NAME)

    def worker_command(self, index: int, *, first_boot: bool) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--port-file", self._port_file(index),
            "--wal-dir", self.shard_dir(index),
            "--shard-id", str(index),
            "--num-shards", str(self.num_shards),
        ]
        if self.quiet:
            cmd.append("--quiet")
        cmd.extend(self.serve_args)
        if first_boot and index in self.fault_plans:
            cmd.extend(["--fault-plan", self.fault_plans[index]])
        return cmd

    def spawn(self, index: int, *, first_boot: bool = False) -> int:
        """Start worker ``index`` and wait for its bound port."""
        os.makedirs(self.shard_dir(index), exist_ok=True)
        port_file = self._port_file(index)
        try:
            os.remove(port_file)
        except FileNotFoundError:
            pass
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        paths = [p for p in (src_root, env.get("PYTHONPATH")) if p]
        env["PYTHONPATH"] = os.pathsep.join(paths)
        proc = subprocess.Popen(
            self.worker_command(index, first_boot=first_boot), env=env
        )
        self.procs[index] = proc
        deadline = time.monotonic() + self.spawn_deadline
        while time.monotonic() < deadline:
            try:
                with open(port_file) as f:
                    text = f.read().strip()
                if text:
                    self.ports[index] = int(text)
                    return self.ports[index]
            except (FileNotFoundError, ValueError):
                pass
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard {index} worker exited with rc {proc.returncode} "
                    f"before binding a port"
                )
            time.sleep(0.02)
        proc.kill()
        raise RuntimeError(
            f"shard {index} worker did not bind a port within "
            f"{self.spawn_deadline:.0f}s"
        )

    def spawn_all(self) -> list[tuple[str, int]]:
        for index in range(self.num_shards):
            self.spawn(index, first_boot=True)
            if not self.quiet:
                print(
                    f"repro fleet: shard {index} up at "
                    f"{self.host}:{self.ports[index]} "
                    f"(wal {self.shard_dir(index)})"
                )
        return [(self.host, port) for port in self.ports]

    def stop_workers(self, timeout: float = 5.0) -> None:
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self.procs:
            if proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # -- supervision ----------------------------------------------------------
    async def _monitor(self, interval: float = 0.1) -> None:
        """Respawn crashed workers and repoint their router links."""
        assert self.router is not None
        while True:
            await asyncio.sleep(interval)
            if self._stopping:
                return
            for index, proc in enumerate(self.procs):
                if proc is None or proc.poll() is None or self._moving[index]:
                    continue
                rc = proc.returncode
                if not self.quiet:
                    print(
                        f"repro fleet: shard {index} worker died (rc {rc}); "
                        f"restarting on {self.shard_dir(index)}"
                    )
                self.restarts[index] += 1
                # the respawn runs in a thread so a slow recovery does
                # not stall routing (and crash detection) for the fleet
                port = await asyncio.get_event_loop().run_in_executor(
                    None, self.spawn, index
                )
                await self.router.redirect_shard(index, self.host, port)

    async def probe_shard(self, index: int) -> bool:
        """One health probe of shard ``index``; ``True`` if it answered.

        A miss bumps the consecutive-miss counter (and the router's
        shard-labelled ``probe_failures`` metric); hitting
        ``probe_misses`` declares the worker hung and restarts it even
        though the process is still alive.
        """
        assert self.router is not None
        if self._moving[index]:
            return True  # a handoff owns the shard; don't fight it
        try:
            doc = await asyncio.wait_for(
                self.router.shard_control(index, {"op": "health"}),
                self.probe_timeout,
            )
            healthy = bool(doc.get("ok"))
        except (asyncio.TimeoutError, ConnectionError, OSError):
            healthy = False
            doc = None
        if healthy:
            self.probe_missed[index] = 0
            self.last_health[index] = doc.get("health") if doc else None
            return True
        self.probe_missed[index] += 1
        self.router.probe_failures[index] += 1
        if self.probe_missed[index] >= self.probe_misses:
            await self._restart_hung(index)
        return False

    async def _restart_hung(self, index: int) -> None:
        """Kill and respawn a worker that stopped answering probes."""
        if self._moving[index]:
            return
        self._moving[index] = True  # keep _monitor off the carcass
        try:
            if not self.quiet:
                print(
                    f"repro fleet: shard {index} missed "
                    f"{self.probe_missed[index]} health probes; restarting "
                    f"hung worker on {self.shard_dir(index)}"
                )
            proc = self.procs[index]
            loop = asyncio.get_event_loop()
            if proc is not None and proc.poll() is None:
                proc.kill()
                await loop.run_in_executor(None, proc.wait)
            port = await loop.run_in_executor(None, self.spawn, index)
            await self.router.redirect_shard(index, self.host, port)
            self.restarts[index] += 1
            self.probe_restarts[index] += 1
            self.probe_missed[index] = 0
        finally:
            self._moving[index] = False

    async def _prober(self) -> None:
        """Periodic health sweep over every shard."""
        while True:
            await asyncio.sleep(self.probe_interval)
            if self._stopping:
                return
            for index in range(self.num_shards):
                if self._stopping:
                    return
                await self.probe_shard(index)

    async def handoff(self, index: int) -> dict:
        """Drain → checkpoint → restart on the same WAL dir → repoint.

        The pause gate holds new requests for the shard while its
        in-flight window drains; the checkpoint and shutdown ride the
        ``control`` lane past the gate.  Nothing accepted is lost: the
        replacement worker recovers the checkpoint (and any WAL tail)
        before the gate reopens.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index} in a {self.num_shards}-shard fleet")
        assert self.router is not None
        if self._moving[index]:
            raise RuntimeError(f"shard {index} handoff already in progress")
        self._moving[index] = True
        try:
            await self.router.pause_shard(index)
            doc = await self.router.shard_control(index, {"op": "checkpoint"})
            if not doc.get("ok"):
                raise RuntimeError(
                    f"shard {index} checkpoint failed: {doc.get('error')}"
                )
            await self.router.shard_control(index, {"op": "shutdown"})
            proc = self.procs[index]
            loop = asyncio.get_event_loop()
            if proc is not None:
                await loop.run_in_executor(None, proc.wait)
            port = await loop.run_in_executor(
                None, lambda: self.spawn(index)
            )
            await self.router.redirect_shard(index, self.host, port)
            self.restarts[index] += 1
            return {"port": port, "checkpoint": doc.get("path")}
        finally:
            self.router.resume_shard(index)
            self._moving[index] = False

    # -- the fleet entry point ------------------------------------------------
    async def run(
        self,
        *,
        front_host: str = "127.0.0.1",
        front_port: int = 0,
        port_file: Optional[str] = None,
    ) -> int:
        """Boot the workers, front them, serve until shutdown."""
        backends = await asyncio.get_event_loop().run_in_executor(
            None, self.spawn_all
        )
        self.router = ShardRouter(
            backends,
            tenants=self._tenants,
            quiet=self.quiet,
            reconnect_wait=self.reconnect_wait,
            handoff_callback=self.handoff,
            **self.router_kwargs,
        )
        monitor: Optional[asyncio.Task] = None
        prober: Optional[asyncio.Task] = None
        try:
            await self.router.connect()
            bound = await self.router.start(front_host, front_port)
            if port_file:
                with open(port_file, "w") as f:
                    f.write(f"{bound}\n")
            monitor = asyncio.ensure_future(self._monitor())
            if self.probe_interval > 0:
                prober = asyncio.ensure_future(self._prober())
            await self.router.wait_closed()
        finally:
            self._stopping = True
            for task in (monitor, prober):
                if task is None:
                    continue
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
            await asyncio.get_event_loop().run_in_executor(
                None, self.stop_workers
            )
        return 0
