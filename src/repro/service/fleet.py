"""Fleet supervisor: N shard workers + one router, restart on crash.

``repro fleet --shards N`` turns the single-process service into a
horizontally sharded one without changing a line of engine code: the
supervisor spawns N ``repro serve`` worker processes (each a
:class:`~repro.service.shard.ShardContext` bound to its own
``<wal-root>/shard-XX`` directory), fronts them with a
:class:`~repro.service.router.ShardRouter`, and babysits the processes:

- **Crash restart.**  A worker that dies mid-stream is respawned on the
  same WAL directory — ``repro serve --wal-dir`` *is* ``repro recover``
  followed by listening, so the restarted worker comes back with the
  exact engine state, dedup window, and metrics it crashed with.  The
  router's backend link holds the unacknowledged window meanwhile and
  resends it after the redirect; the dedup window turns the resends
  into cached replies.  Clients see a latency blip, not an error.
- **Live handoff.**  ``{"op": "handoff", "shard": k}`` (or
  :meth:`FleetSupervisor.handoff`) drains shard *k*'s in-flight window,
  checkpoints it, stops the worker, boots a replacement on the same
  directory, and repoints the link — the drain/checkpoint/restore move
  behind one pause gate, losing no accepted request.

Worker stdout/stderr are inherited, so ``--fault-plan`` kill messages
and recovery reports land in the fleet's own log stream.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time
from typing import Optional, Sequence

from .router import ShardRouter

__all__ = ["FleetSupervisor"]

PORT_FILE_NAME = "PORT"


class FleetSupervisor:
    """Owns the worker processes and the router that fronts them.

    ``serve_args`` is passed through to every ``repro serve`` worker
    verbatim (engine and durability flags: ``--algorithm``, ``--fsync``,
    ...).  ``fault_plans`` maps shard index → fault-plan path, applied
    only to the *first* boot of that worker — the respawn after the
    planned crash must come up clean, which is exactly the scenario the
    chaos suite drives.
    """

    def __init__(
        self,
        shards: int,
        wal_root: str,
        *,
        host: str = "127.0.0.1",
        tenants: int = 0,
        serve_args: Optional[Sequence[str]] = None,
        fault_plans: Optional[dict[int, str]] = None,
        quiet: bool = True,
        spawn_deadline: float = 20.0,
        reconnect_wait: float = 30.0,
    ):
        if shards < 1:
            raise ValueError(f"fleet needs at least one shard, got {shards}")
        self.num_shards = shards
        self.wal_root = wal_root
        self.host = host
        self.quiet = quiet
        self.serve_args = list(serve_args or ())
        self.fault_plans = dict(fault_plans or {})
        self.spawn_deadline = spawn_deadline
        self.reconnect_wait = reconnect_wait
        self.procs: list[Optional[subprocess.Popen]] = [None] * shards
        self.ports: list[int] = [0] * shards
        self.restarts: list[int] = [0] * shards
        self.router: Optional[ShardRouter] = None
        self._moving = [False] * shards  # handoff in progress: monitor, hands off
        self._stopping = False
        self._tenants = tenants

    # -- worker processes -----------------------------------------------------
    def shard_dir(self, index: int) -> str:
        return os.path.join(self.wal_root, f"shard-{index:02d}")

    def _port_file(self, index: int) -> str:
        return os.path.join(self.shard_dir(index), PORT_FILE_NAME)

    def worker_command(self, index: int, *, first_boot: bool) -> list[str]:
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", self.host,
            "--port", "0",
            "--port-file", self._port_file(index),
            "--wal-dir", self.shard_dir(index),
            "--shard-id", str(index),
            "--num-shards", str(self.num_shards),
        ]
        if self.quiet:
            cmd.append("--quiet")
        cmd.extend(self.serve_args)
        if first_boot and index in self.fault_plans:
            cmd.extend(["--fault-plan", self.fault_plans[index]])
        return cmd

    def spawn(self, index: int, *, first_boot: bool = False) -> int:
        """Start worker ``index`` and wait for its bound port."""
        os.makedirs(self.shard_dir(index), exist_ok=True)
        port_file = self._port_file(index)
        try:
            os.remove(port_file)
        except FileNotFoundError:
            pass
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        paths = [p for p in (src_root, env.get("PYTHONPATH")) if p]
        env["PYTHONPATH"] = os.pathsep.join(paths)
        proc = subprocess.Popen(
            self.worker_command(index, first_boot=first_boot), env=env
        )
        self.procs[index] = proc
        deadline = time.monotonic() + self.spawn_deadline
        while time.monotonic() < deadline:
            try:
                with open(port_file) as f:
                    text = f.read().strip()
                if text:
                    self.ports[index] = int(text)
                    return self.ports[index]
            except (FileNotFoundError, ValueError):
                pass
            if proc.poll() is not None:
                raise RuntimeError(
                    f"shard {index} worker exited with rc {proc.returncode} "
                    f"before binding a port"
                )
            time.sleep(0.02)
        proc.kill()
        raise RuntimeError(
            f"shard {index} worker did not bind a port within "
            f"{self.spawn_deadline:.0f}s"
        )

    def spawn_all(self) -> list[tuple[str, int]]:
        for index in range(self.num_shards):
            self.spawn(index, first_boot=True)
            if not self.quiet:
                print(
                    f"repro fleet: shard {index} up at "
                    f"{self.host}:{self.ports[index]} "
                    f"(wal {self.shard_dir(index)})"
                )
        return [(self.host, port) for port in self.ports]

    def stop_workers(self, timeout: float = 5.0) -> None:
        for proc in self.procs:
            if proc is not None and proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + timeout
        for proc in self.procs:
            if proc is None:
                continue
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()

    # -- supervision ----------------------------------------------------------
    async def _monitor(self, interval: float = 0.1) -> None:
        """Respawn crashed workers and repoint their router links."""
        assert self.router is not None
        while True:
            await asyncio.sleep(interval)
            if self._stopping:
                return
            for index, proc in enumerate(self.procs):
                if proc is None or proc.poll() is None or self._moving[index]:
                    continue
                rc = proc.returncode
                if not self.quiet:
                    print(
                        f"repro fleet: shard {index} worker died (rc {rc}); "
                        f"restarting on {self.shard_dir(index)}"
                    )
                self.restarts[index] += 1
                # the respawn runs in a thread so a slow recovery does
                # not stall routing (and crash detection) for the fleet
                port = await asyncio.get_event_loop().run_in_executor(
                    None, self.spawn, index
                )
                await self.router.redirect_shard(index, self.host, port)

    async def handoff(self, index: int) -> dict:
        """Drain → checkpoint → restart on the same WAL dir → repoint.

        The pause gate holds new requests for the shard while its
        in-flight window drains; the checkpoint and shutdown ride the
        ``control`` lane past the gate.  Nothing accepted is lost: the
        replacement worker recovers the checkpoint (and any WAL tail)
        before the gate reopens.
        """
        if not 0 <= index < self.num_shards:
            raise ValueError(f"no shard {index} in a {self.num_shards}-shard fleet")
        assert self.router is not None
        if self._moving[index]:
            raise RuntimeError(f"shard {index} handoff already in progress")
        self._moving[index] = True
        try:
            await self.router.pause_shard(index)
            doc = await self.router.shard_control(index, {"op": "checkpoint"})
            if not doc.get("ok"):
                raise RuntimeError(
                    f"shard {index} checkpoint failed: {doc.get('error')}"
                )
            await self.router.shard_control(index, {"op": "shutdown"})
            proc = self.procs[index]
            loop = asyncio.get_event_loop()
            if proc is not None:
                await loop.run_in_executor(None, proc.wait)
            port = await loop.run_in_executor(
                None, lambda: self.spawn(index)
            )
            await self.router.redirect_shard(index, self.host, port)
            self.restarts[index] += 1
            return {"port": port, "checkpoint": doc.get("path")}
        finally:
            self.router.resume_shard(index)
            self._moving[index] = False

    # -- the fleet entry point ------------------------------------------------
    async def run(
        self,
        *,
        front_host: str = "127.0.0.1",
        front_port: int = 0,
        port_file: Optional[str] = None,
    ) -> int:
        """Boot the workers, front them, serve until shutdown."""
        backends = await asyncio.get_event_loop().run_in_executor(
            None, self.spawn_all
        )
        self.router = ShardRouter(
            backends,
            tenants=self._tenants,
            quiet=self.quiet,
            reconnect_wait=self.reconnect_wait,
            handoff_callback=self.handoff,
        )
        monitor: Optional[asyncio.Task] = None
        try:
            await self.router.connect()
            bound = await self.router.start(front_host, front_port)
            if port_file:
                with open(port_file, "w") as f:
                    f.write(f"{bound}\n")
            monitor = asyncio.ensure_future(self._monitor())
            await self.router.wait_closed()
        finally:
            self._stopping = True
            if monitor is not None:
                monitor.cancel()
                try:
                    await monitor
                except (asyncio.CancelledError, Exception):
                    pass
            await asyncio.get_event_loop().run_in_executor(
                None, self.stop_workers
            )
        return 0
