"""Checkpoint/restore for the streaming engine.

A long-lived allocation service must survive restarts without forgetting
which jobs live on which servers.  :func:`snapshot_engine` captures the
*entire* packing state as one JSON-serialisable document — every bin
(open and closed, with level histories), the item→bin map, the running
level totals, the adaptive first-fit index's **activation status**, the
scheduled-departure heap, the admission queue and counters, the metric
values, and the placement policy's internal state (Next Fit's available
bin, the classified policies' class maps, seeded RNG states).
:func:`restore_engine` rebuilds a live engine from the document.

The contract is exact resumption: checkpointing mid-trace and restoring
into a fresh process must reproduce the uninterrupted run bit for bit —
placements *and* metrics (pinned by the randomized differential test in
``tests/service/test_checkpoint.py``).  JSON round-trips Python floats
exactly (``repr`` shortest-round-trip), so no precision is lost.

Restoring the index deserves a note: the snapshot records only *whether*
the tree was active, not its internals.  Rebuilding it from the open set
assigns fresh slots, but slots are always in increasing bin-index order
(closed bins merely mark their slot infeasible), and every tree query
resolves ties by bin index — so a rebuilt tree answers every query
identically to the incrementally maintained one.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Any, Optional

from ..core.bins import Bin
from ..core.items import Item
from ..core.state import PackingState

__all__ = [
    "SNAPSHOT_VERSION",
    "snapshot_engine",
    "restore_engine",
    "dumps",
    "loads",
    "write_checkpoint",
    "read_checkpoint",
    "check_version",
    "config_fingerprint",
]

SNAPSHOT_VERSION = 1


def config_fingerprint(config: dict) -> str:
    """A stable hex digest of an engine-configuration dict.

    Canonical JSON (sorted keys, compact separators) in, sha256 out —
    the same config always fingerprints the same across processes and
    Python versions.  The shard MANIFEST stores this next to the raw
    config so a WAL directory can refuse an engine it was not written
    by (see :mod:`repro.service.shard`).
    """
    blob = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def check_version(version: Any) -> None:
    """Refuse snapshots this code cannot faithfully restore.

    A *newer* snapshot than the code means a downgraded service is
    looking at state written by its future self — restoring a subset of
    it would silently drop fields, so the error says exactly that.
    """
    if version == SNAPSHOT_VERSION:
        return
    if isinstance(version, int) and version > SNAPSHOT_VERSION:
        raise ValueError(
            f"checkpoint schema version {version} is newer than this code "
            f"supports ({SNAPSHOT_VERSION}) — refusing to load it with an "
            f"older service; upgrade the service or restore from an older "
            f"checkpoint"
        )
    raise ValueError(
        f"snapshot version {version!r} not supported (expected {SNAPSHOT_VERSION})"
    )


def write_checkpoint(path: str, doc: dict) -> None:
    """Write a checkpoint document atomically (tmp file + ``os.replace``).

    A crash mid-write must never leave a half-written checkpoint where
    recovery will find it: the document lands in ``<path>.tmp`` first,
    is flushed and fsynced, and only then renamed over ``path`` — the
    rename is atomic on POSIX, so ``path`` always holds either the old
    complete document or the new one.
    """
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def read_checkpoint(path: str) -> dict:
    """Load a checkpoint document, enforcing the schema-version gate."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError(f"checkpoint {path} is not a JSON object")
    check_version(doc.get("version"))
    return doc


# -- algorithm-state codec ----------------------------------------------------
def _encode_value(value: Any) -> Any:
    """Encode one algorithm attribute into JSON-safe form.

    Handles the state the registry policies actually keep: primitives,
    tuples, dicts with non-string keys, ``random.Random`` instances and
    live :class:`Bin` references.  Anything else is a hard error — an
    algorithm with exotic state must not silently checkpoint wrong.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"__list__": [_encode_value(v) for v in value]}
    if isinstance(value, dict):
        return {
            "__map__": [
                [_encode_value(k), _encode_value(v)] for k, v in value.items()
            ]
        }
    if isinstance(value, random.Random):
        version, internal, gauss = value.getstate()
        return {"__rng__": [version, list(internal), gauss]}
    if hasattr(value, "index") and hasattr(value, "is_open"):  # a bin reference
        return {"__bin__": value.index}
    raise TypeError(
        f"cannot checkpoint algorithm attribute of type {type(value).__name__}"
    )


def _decode_value(value: Any, bins: list) -> Any:
    if isinstance(value, dict):
        if "__tuple__" in value:
            return tuple(_decode_value(v, bins) for v in value["__tuple__"])
        if "__list__" in value:
            return [_decode_value(v, bins) for v in value["__list__"]]
        if "__map__" in value:
            return {
                _decode_value(k, bins): _decode_value(v, bins)
                for k, v in value["__map__"]
            }
        if "__rng__" in value:
            version, internal, gauss = value["__rng__"]
            rng = random.Random()
            rng.setstate((version, tuple(internal), gauss))
            return rng
        if "__bin__" in value:
            return bins[value["__bin__"]]
        raise ValueError(f"unrecognised snapshot marker in {sorted(value)}")
    return value


# -- item / bin codecs --------------------------------------------------------
def _item_record(item, scalar: bool) -> list:
    size = item.size if scalar else list(item.sizes)
    return [item.item_id, size, item.arrival, item.departure]


def _make_item(rec: list, scalar: bool):
    if scalar:
        return Item(rec[0], rec[1], rec[2], rec[3])
    from ..multidim.items import VectorItem

    return VectorItem(rec[0], tuple(rec[1]), rec[2], rec[3])


def _bin_record(b, scalar: bool) -> dict:
    rec = {
        "index": b.index,
        "opened_at": b.opened_at,
        "closed_at": b.closed_at,
        "active": sorted(b.active_items),
        "all": [it.item_id for it in b.all_items],
    }
    if scalar:
        rec["level"] = b.level
        rec["history"] = [[t, lvl] for t, lvl in b.level_history]
    else:
        rec["levels"] = list(b.levels)
    return rec


def _make_bin(rec: dict, items: dict, capacity, scalar: bool):
    if scalar:
        b = Bin(index=rec["index"], capacity=capacity)
        b.level = rec["level"]
        b.level_history = [(t, lvl) for t, lvl in rec["history"]]
    else:
        from ..multidim.bins import VectorBin

        b = VectorBin(index=rec["index"], capacity=capacity)
        b.levels = tuple(rec["levels"])
    b.opened_at = rec["opened_at"]
    b.closed_at = rec["closed_at"]
    b.active_items = {iid: items[iid] for iid in rec["active"]}
    b.all_items = [items[iid] for iid in rec["all"]]
    return b


# -- engine snapshot ----------------------------------------------------------
def snapshot_engine(engine) -> dict:
    """The engine's full state as one JSON-serialisable document."""
    state = engine.state
    scalar = isinstance(state, PackingState)

    # the item table: everything the restored process may still touch
    items: dict[int, Any] = {}
    for b in state.bins:
        for it in b.all_items:
            items[it.item_id] = it
    for _, _, it in engine._pending:
        items[it.item_id] = it
    for _, _, it in engine._queue:
        items[it.item_id] = it

    doc = {
        "version": SNAPSHOT_VERSION,
        "kind": "scalar" if scalar else "vector",
        "algorithm": engine.algorithm.name,
        "capacity": state.capacity if scalar else list(state.capacity),
        "indexed": state.indexed,
        "index_active": state._index is not None,
        "now": state.now,
        "clock": engine.clock,
        "started": engine._started,
        "seq": engine._seq,
        "total_level": state.total_level
        if scalar
        else list(state.total_level),
        "items": {str(iid): _item_record(it, scalar) for iid, it in items.items()},
        "bins": [_bin_record(b, scalar) for b in state.bins],
        "open": sorted(state._open),
        "item_bin": [[iid, idx] for iid, idx in state.item_bin.items()],
        "placed_order": [it.item_id for it in engine._placed_items],
        "active": sorted(engine._active),
        "departed": sorted(engine._departed),
        "pending": [
            [t, seq, it.item_id]
            for t, seq, it in engine._pending
            if it.item_id not in engine._departed
        ],
        "queue": [[t, seq, it.item_id] for t, seq, it in engine._queue],
        "migrations": engine.migrations,
        "defrag_runs": engine.defrag_runs,
        "bins_evacuated": engine.bins_evacuated,
        "algorithm_state": {
            k: _encode_value(v) for k, v in vars(engine.algorithm).items()
        },
        "admission": engine.admission.snapshot(),
        "metrics": engine.metrics.snapshot() if engine.metrics is not None else None,
    }
    return doc


def restore_engine(
    doc: dict,
    algorithm,
    *,
    admission=None,
    metrics=None,
    decision_log=None,
    observers=(),
):
    """Rebuild a live :class:`~repro.service.engine.StreamingEngine`.

    ``algorithm`` must be a fresh instance of the same policy (same
    constructor arguments) that produced the snapshot; its internal
    state is restored from the document.  ``admission`` likewise: pass
    a policy of the same shape and its accounting is restored.  Pass a
    fresh :class:`~repro.service.metrics.MetricsRegistry` to resume the
    metric values; the decision log starts fresh (it is an audit trail,
    not state).
    """
    import heapq

    from .engine import StreamingEngine

    check_version(doc.get("version"))
    if doc["algorithm"] != algorithm.name:
        raise ValueError(
            f"snapshot was taken under policy {doc['algorithm']!r}, "
            f"got {algorithm.name!r}"
        )
    scalar = doc["kind"] == "scalar"

    # 1. the packing state
    if scalar:
        state = PackingState(capacity=doc["capacity"], indexed=doc["indexed"])
    else:
        from ..multidim.state import VectorPackingState

        state = VectorPackingState(
            capacity=tuple(doc["capacity"]), indexed=doc["indexed"]
        )
    state.now = doc["now"]
    items = {
        int(iid): _make_item(rec, scalar) for iid, rec in doc["items"].items()
    }
    capacity = state.capacity
    state.bins = [_make_bin(rec, items, capacity, scalar) for rec in doc["bins"]]
    state._open = {idx: state.bins[idx] for idx in doc["open"]}
    state.item_bin = {int(iid): idx for iid, idx in doc["item_bin"]}
    if scalar:
        state.total_level = doc["total_level"]
    else:
        state._total = list(doc["total_level"])
    if doc["index_active"]:
        # once activated, the index stays active for the rest of the run
        # even if the open set has shrunk below the threshold since
        state._activate_index()

    # 2. the engine shell (constructing it resets the algorithm...)
    if scalar:
        engine = StreamingEngine.scalar(
            algorithm,
            state=state,
            admission=admission,
            metrics=metrics,
            decision_log=decision_log,
            observers=observers,
        )
    else:
        engine = StreamingEngine.vector(
            algorithm,
            state=state,
            admission=admission,
            metrics=metrics,
            decision_log=decision_log,
            observers=observers,
        )

    # 3. ...so the algorithm's internals are restored afterwards
    for key, value in doc["algorithm_state"].items():
        setattr(algorithm, key, _decode_value(value, state.bins))

    # 4. engine bookkeeping
    engine.clock = doc["clock"]
    engine._started = doc["started"]
    engine._seq = doc["seq"]
    engine._departed = set(doc["departed"])
    engine._active = {iid: items[iid] for iid in doc["active"]}
    engine._placed_items = [items[iid] for iid in doc["placed_order"]]
    engine._pending = [(t, seq, items[iid]) for t, seq, iid in doc["pending"]]
    heapq.heapify(engine._pending)
    engine._queue = [(t, seq, items[iid]) for t, seq, iid in doc["queue"]]
    # migration counters arrived after SNAPSHOT_VERSION 1 froze; older
    # documents simply never migrated, so absence means zero
    engine.migrations = doc.get("migrations", 0)
    engine.defrag_runs = doc.get("defrag_runs", 0)
    engine.bins_evacuated = doc.get("bins_evacuated", 0)
    engine.admission.restore(doc["admission"])
    if metrics is not None and doc["metrics"] is not None:
        metrics.restore(doc["metrics"])
    return engine


def dumps(engine) -> str:
    """Checkpoint ``engine`` to a JSON string."""
    return json.dumps(snapshot_engine(engine), sort_keys=True)


def loads(text: str, algorithm, **kwargs):
    """Restore an engine from a :func:`dumps` checkpoint."""
    return restore_engine(json.loads(text), algorithm, **kwargs)
