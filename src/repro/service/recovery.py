"""Crash recovery: durable engine = checkpoint + WAL replay.

The durability contract of the service stack:

1. every accepted ``submit``/``depart``/``advance`` is appended to the
   :class:`~repro.service.wal.WriteAheadLog` *before* it is applied to
   the :class:`~repro.service.engine.StreamingEngine`;
2. checkpoints (atomic ``tmp`` + ``os.replace`` via
   :func:`~repro.service.snapshot.write_checkpoint`) are cut every
   ``checkpoint_every`` records or ``checkpoint_bytes`` of log, after an
   fsync barrier, and fully-covered WAL segments are pruned;
3. :func:`recover` restores the newest loadable checkpoint and replays
   the WAL tail through the *same* engine code paths, so a recovered
   service is **bit-identical** to one that never crashed — placements,
   usage time, metrics, admission accounting, idempotency window (pinned
   by ``tests/service/test_recovery.py`` at every possible kill index,
   torn tails included).

Replay determinism leans on a property the engine already guarantees:
every validation error (out-of-order arrival, duplicate id, unknown
departure) is raised *before* any state mutation.  An operation that
failed live therefore fails identically on replay, and the log can
record operations before knowing their outcome.

Exactly-once: clients may tag submits with a ``request_id``.  The
:class:`DedupWindow` maps recent ids to their placements; a retry of an
acknowledged submit returns the cached placement without touching the
engine or the log, and because the window is rebuilt from the checkpoint
*and* the replayed tail, the guarantee holds across a crash — whether
the original attempt died before or after its WAL append.
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from math import isfinite
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..core.state import PackingState
from .engine import Placement, StreamingEngine
from .faults import FaultInjector
from .metrics import MetricsRegistry
from .snapshot import (
    SNAPSHOT_VERSION,
    _item_record,
    _make_item,
    read_checkpoint,
    restore_engine,
    snapshot_engine,
    write_checkpoint,
)
from .wal import WalCorruptionError, WalRecord, WriteAheadLog, replay_wal

__all__ = [
    "CHECKPOINT_PREFIX",
    "DedupWindow",
    "DurableEngine",
    "RecoveryReport",
    "declare_durable_metrics",
    "latest_checkpoint",
    "recover",
]

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"

#: Names the durable layer adds to the engine's metrics registry.
_DURABLE_COUNTERS = (
    ("repro_service_wal_records_total", "operations appended to the WAL"),
    ("repro_service_wal_fsyncs_total", "WAL fsync barriers issued"),
    ("repro_service_wal_bytes_total", "bytes appended to the WAL"),
    ("repro_service_wal_errors_total", "WAL appends refused by I/O errors"),
    ("repro_service_checkpoints_total", "checkpoints written"),
    ("repro_service_recoveries_total", "crash recoveries performed"),
    ("repro_service_wal_replayed_total", "WAL records replayed during recovery"),
    ("repro_service_duplicate_requests_total",
     "submits answered from the idempotency window"),
)


def declare_durable_metrics(reg: MetricsRegistry) -> None:
    """Idempotently declare the durability counters.

    Called *before* a snapshot's metric values are restored so the
    recovered registry resumes these counters instead of dropping them.
    """
    for name, help_text in _DURABLE_COUNTERS:
        if name not in reg:
            reg.counter(name, help_text)


class DedupWindow:
    """Bounded request-id → placement cache (the idempotency window).

    FIFO eviction at ``limit`` entries: a retry older than the window is
    indistinguishable from a new request, which is the standard bounded
    -memory trade-off — size the window above the client's maximum retry
    horizon (the load generator retries within seconds; the default
    window holds thousands of requests).
    """

    def __init__(self, limit: int = 4096):
        if limit < 1:
            raise ValueError(f"dedup window limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def get(self, request_id: str) -> Optional[dict]:
        return self._entries.get(request_id)

    def put(self, request_id: str, placement: dict) -> None:
        self._entries[request_id] = placement
        while len(self._entries) > self.limit:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, request_id: str) -> bool:
        return request_id in self._entries

    def snapshot(self) -> list:
        return [[rid, doc] for rid, doc in self._entries.items()]

    @classmethod
    def restore(cls, payload: list, limit: int = 4096) -> "DedupWindow":
        window = cls(limit)
        for rid, doc in payload:
            window.put(rid, doc)
        return window


@dataclass
class RecoveryReport:
    """What :func:`recover` found and did."""

    directory: str
    checkpoint_path: Optional[str] = None
    checkpoint_seq: int = 0
    skipped_checkpoints: list[str] = field(default_factory=list)
    #: checkpoints that parsed as JSON but failed the full restore
    #: (structurally corrupt) — recovery fell back past each of these
    #: to the next-newest generation
    fallback_checkpoints: list[str] = field(default_factory=list)
    replayed: int = 0
    replay_errors: int = 0
    torn_bytes: int = 0
    dedup_entries: int = 0
    last_seq: int = 0

    def render(self) -> str:
        lines = [f"recovery from {self.directory}:"]
        if self.checkpoint_path:
            lines.append(
                f"  checkpoint {os.path.basename(self.checkpoint_path)} "
                f"(wal_seq {self.checkpoint_seq})"
            )
        else:
            lines.append("  no checkpoint found — cold replay from the log start")
        for path in self.skipped_checkpoints:
            lines.append(f"  skipped unreadable checkpoint {os.path.basename(path)}")
        for path in self.fallback_checkpoints:
            lines.append(
                f"  fell back past corrupt checkpoint {os.path.basename(path)}"
            )
        lines.append(
            f"  replayed {self.replayed} WAL records"
            + (f" ({self.replay_errors} replay-rejected)" if self.replay_errors else "")
        )
        if self.torn_bytes:
            lines.append(f"  discarded {self.torn_bytes} torn tail bytes")
        lines.append(
            f"  log resumes at seq {self.last_seq + 1}; "
            f"{self.dedup_entries} idempotency entries live"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "directory": self.directory,
            "checkpoint": self.checkpoint_path,
            "checkpoint_seq": self.checkpoint_seq,
            "skipped_checkpoints": self.skipped_checkpoints,
            "fallback_checkpoints": self.fallback_checkpoints,
            "replayed": self.replayed,
            "replay_errors": self.replay_errors,
            "torn_bytes": self.torn_bytes,
            "dedup_entries": self.dedup_entries,
            "last_seq": self.last_seq,
        }


class DurableEngine:
    """A :class:`StreamingEngine` with a write-ahead log in front of it.

    Duck-types the engine's push API (everything else delegates through
    ``__getattr__``), so :class:`~repro.service.server.AllocationService`
    serves either transparently.  The WAL record formats are internal to
    this module — ``{"op": "submit", "job": [...], "sd": ..., "rid": ...}``,
    ``{"op": "depart", "id": ..., "now": ...}``, ``{"op": "advance",
    "now": ...}``, ``{"op": "drain"}``, ``{"op": "defrag", "budget": ...}``
    — kept one-line-JSON small because the log is on the request path.
    """

    def __init__(
        self,
        engine: StreamingEngine,
        wal: WriteAheadLog,
        *,
        checkpoint_every: int = 1000,
        checkpoint_bytes: Optional[int] = None,
        auto_checkpoint: bool = True,
        dedup: Optional[DedupWindow] = None,
        dedup_limit: int = 4096,
        injector: Optional[FaultInjector] = None,
    ):
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.engine = engine
        self.wal = wal
        self.directory = wal.directory
        self.checkpoint_every = int(checkpoint_every)
        self.checkpoint_bytes = checkpoint_bytes
        self.auto_checkpoint = auto_checkpoint
        self.dedup = dedup if dedup is not None else DedupWindow(dedup_limit)
        self.injector = injector
        if injector is not None:
            engine._stepper.fault_hook = injector.point
            if wal.io_hook is None:
                wal.io_hook = injector
        self._scalar = isinstance(engine.state, PackingState)
        self._since_checkpoint = 0
        self._bytes_at_checkpoint = wal.bytes_written
        # deltas already mirrored into the metrics registry
        self._seen_records = 0
        self._seen_fsyncs = 0
        self._seen_bytes = 0
        # the registry is fixed for the engine's lifetime, so the counter
        # objects are resolved once here instead of per append
        self._counters: dict[str, Any] = {}
        if engine.metrics is not None:
            declare_durable_metrics(engine.metrics)
            for name, _ in _DURABLE_COUNTERS:
                self._counters[name] = engine.metrics.get(name)

    def __getattr__(self, name):
        try:
            engine = self.__dict__["engine"]
        except KeyError:
            raise AttributeError(name) from None
        return getattr(engine, name)

    # -- the durable push API -------------------------------------------------
    def submit(
        self, item, *, request_id: Optional[str] = None,
        schedule_departure: bool = True,
    ) -> Placement:
        if request_id is not None:
            cached = self.dedup.get(request_id)
            if cached is not None:
                self._count("repro_service_duplicate_requests_total")
                return Placement.from_dict(cached)
        # _append/_point inlined: this method is the service's hot path
        try:
            self.wal.append(self._submit_body(item, request_id, schedule_departure))
        except OSError:
            self._count("repro_service_wal_errors_total")
            self._mirror_wal_metrics()
            raise
        self._since_checkpoint += 1
        if self._counters:
            self._mirror_wal_metrics()
        injector = self.injector
        if injector is not None:
            injector.point("wal.appended")
        placement = self.engine.submit(item, schedule_departure=schedule_departure)
        if injector is not None:
            injector.point("applied")
        if request_id is not None:
            self.dedup.put(request_id, placement.to_dict())
        self._maybe_checkpoint()
        return placement

    def submit_many(
        self, requests: "list[tuple[Any, Optional[str]]]"
    ) -> list:
        """Submit a batch of jobs through **one** WAL group-commit window.

        ``requests`` is ``[(item, request_id), ...]`` (ids may be
        ``None``).  Returns one outcome per request, in order:
        ``("placed", Placement)``, ``("cached", placement_dict)`` for a
        request id already in the idempotency window, or
        ``("refused", exception)`` — an engine refusal (``ValueError`` /
        ``KeyError``) or, for the whole batch at once, a WAL ``OSError``.

        The durability contract is unchanged: every record is appended
        before any of the batch is applied, replay refuses the same ops
        recovery-side, and the dedup window absorbs retries.  Two
        differences from a per-op loop, both invisible to a client:
        the WAL fsync policy is consulted once per batch (the group
        commit), and the auto-checkpoint check runs after the batch
        instead of between its ops.  A request id repeated *within* one
        batch is refused as a duplicate job id rather than served from
        the window — retries of unacknowledged ops always arrive in a
        later batch.
        """
        outcomes: list = [None] * len(requests)
        fresh: list[int] = []
        bodies: list = []
        dedup = self.dedup
        for i, (item, rid) in enumerate(requests):
            if rid is not None:
                cached = dedup.get(rid)
                if cached is not None:
                    self._count("repro_service_duplicate_requests_total")
                    outcomes[i] = ("cached", cached)
                    continue
            fresh.append(i)
            bodies.append(self._submit_body(item, rid, True))
        if not fresh:
            return outcomes
        try:
            self.wal.append_many(bodies)
        except OSError as exc:
            self._count("repro_service_wal_errors_total")
            self._mirror_wal_metrics()
            for i in fresh:
                outcomes[i] = ("refused", exc)
            return outcomes
        self._since_checkpoint += len(fresh)
        if self._counters:
            self._mirror_wal_metrics()
        injector = self.injector
        engine = self.engine
        for i in fresh:
            item, rid = requests[i]
            if injector is not None:
                injector.point("wal.appended")
            try:
                placement = engine.submit(item)
            except (ValueError, KeyError) as exc:
                outcomes[i] = ("refused", exc)
                continue
            if injector is not None:
                injector.point("applied")
            if rid is not None:
                dedup.put(rid, placement.to_dict())
            outcomes[i] = ("placed", placement)
        self._maybe_checkpoint()
        return outcomes

    def depart(self, item_id: int, now: Optional[float] = None) -> None:
        payload: dict[str, Any] = {"op": "depart", "id": int(item_id)}
        if now is not None:
            payload["now"] = float(now)
        self._append(payload)
        self._point("wal.appended")
        self.engine.depart(item_id, now)
        self._point("applied")
        self._maybe_checkpoint()

    def advance(self, now: float) -> int:
        self._append({"op": "advance", "now": float(now)})
        self._point("wal.appended")
        applied = self.engine.advance(now)
        self._point("applied")
        self._maybe_checkpoint()
        return applied

    def defrag(self, budget: int) -> int:
        """One durable defragmenter pass: append-before-move.

        The record stores only the *budget*; replay re-plans against the
        engine state at that WAL position, which is byte-identical to
        the state the live pass planned against, so the same moves come
        out (the planner is deterministic and index-free).  A pass whose
        plan is empty is a complete no-op — no record, no counter — so
        an idle defragmenter loop cannot grow the log or perturb
        recovery.
        """
        budget = int(budget)
        if not self.engine.plan_defrag(budget):
            return 0
        self._append({"op": "defrag", "budget": budget})
        self._point("wal.appended")
        moved = self.engine.defrag(budget)
        self._point("applied")
        self._maybe_checkpoint()
        return moved

    def finish(self):
        """Log the drain, drain, and cut a final (empty-fleet) checkpoint.

        With ``auto_checkpoint`` off the caller owns checkpoint timing,
        so only the drain record is logged — replay re-drains.
        """
        self._append({"op": "drain"})
        self._point("wal.appended")
        result = self.engine.finish()
        self._point("applied")
        if self.auto_checkpoint:
            self.checkpoint_now()
        return result

    def stats(self) -> dict:
        out = self.engine.stats()
        out["wal"] = {
            "last_seq": self.wal.last_seq,
            "records_written": self.wal.records_written,
            "fsyncs": self.wal.fsyncs,
            "bytes_written": self.wal.bytes_written,
            "fsync_mode": self.wal.fsync,
            "since_checkpoint": self._since_checkpoint,
            "dedup_entries": len(self.dedup),
        }
        return out

    def close(self) -> None:
        self.wal.close()

    # -- checkpointing --------------------------------------------------------
    def checkpoint_now(self) -> str:
        """Cut a checkpoint: fsync barrier, atomic write, prune the log."""
        self._point("checkpoint")
        self.wal.sync()
        doc = {
            "version": SNAPSHOT_VERSION,
            "wal_seq": self.wal.last_seq,
            "dedup": self.dedup.snapshot(),
            "engine": snapshot_engine(self.engine),
        }
        path = os.path.join(
            self.directory,
            f"{CHECKPOINT_PREFIX}{self.wal.last_seq:010d}{CHECKPOINT_SUFFIX}",
        )
        write_checkpoint(path, doc)
        self.wal.prune(self.wal.last_seq)
        self._retire_checkpoints(keep=3)
        self._since_checkpoint = 0
        self._bytes_at_checkpoint = self.wal.bytes_written
        self._count("repro_service_checkpoints_total")
        self._mirror_wal_metrics()
        return path

    def _retire_checkpoints(self, keep: int) -> None:
        """Delete all but the newest ``keep`` checkpoint files.

        A couple of older generations are kept as a hedge against a
        latent defect in the newest file; everything older is covered
        by it and only wastes disk.
        """
        names = sorted(
            n
            for n in os.listdir(self.directory)
            if n.startswith(CHECKPOINT_PREFIX) and n.endswith(CHECKPOINT_SUFFIX)
        )
        for name in names[:-keep]:
            try:
                os.remove(os.path.join(self.directory, name))
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def _maybe_checkpoint(self) -> None:
        if not self.auto_checkpoint:
            return
        if self._since_checkpoint >= self.checkpoint_every or (
            self.checkpoint_bytes is not None
            and self.wal.bytes_written - self._bytes_at_checkpoint
            >= self.checkpoint_bytes
        ):
            self.checkpoint_now()

    # -- internals ------------------------------------------------------------
    def _submit_body(self, item, request_id, schedule_departure) -> "str | dict":
        """The submit record, pre-serialized when the types allow it.

        The WAL sits on the request path, so the common case — int job
        id, float coordinates — is formatted directly (``repr`` of a
        finite float is exact, round-trippable JSON).  Anything unusual
        falls back to ``json.dumps`` of the dict form.
        """
        iid = item.item_id
        arrival, departure = item.arrival, item.departure
        if (
            type(iid) is int
            and type(arrival) is float
            and type(departure) is float
            and isfinite(arrival)
            and isfinite(departure)
        ):
            if self._scalar:
                size = item.size
                if type(size) is float and isfinite(size):
                    sizes = repr(size)
                else:
                    return self._submit_payload(item, request_id, schedule_departure)
            else:
                sizes_t = item.sizes
                if all(type(s) is float and isfinite(s) for s in sizes_t):
                    sizes = "[" + ",".join(map(repr, sizes_t)) + "]"
                else:
                    return self._submit_payload(item, request_id, schedule_departure)
            rid = "" if request_id is None else f',"rid":{json.dumps(request_id)}'
            sd = "true" if schedule_departure else "false"
            return (
                f'{{"job":[{iid},{sizes},{arrival!r},{departure!r}]'
                f',"op":"submit"{rid},"sd":{sd}}}'
            )
        return self._submit_payload(item, request_id, schedule_departure)

    def _submit_payload(self, item, request_id, schedule_departure) -> dict:
        payload: dict[str, Any] = {
            "op": "submit",
            "job": _item_record(item, self._scalar),
            "sd": bool(schedule_departure),
        }
        if request_id is not None:
            payload["rid"] = request_id
        return payload

    def _append(self, payload: "dict | str") -> int:
        try:
            seq = self.wal.append(payload)
        except OSError:
            # an I/O fault refuses the *operation*, not the service: the
            # engine was never touched, the client sees a clean error
            self._count("repro_service_wal_errors_total")
            self._mirror_wal_metrics()
            raise
        self._since_checkpoint += 1
        self._mirror_wal_metrics()
        return seq

    def _point(self, name: str) -> None:
        if self.injector is not None:
            self.injector.point(name)

    def _count(self, name: str, amount: float = 1.0) -> None:
        counter = self._counters.get(name)
        if counter is not None:
            counter.inc(amount)

    def _mirror_wal_metrics(self) -> None:
        counters = self._counters
        if not counters:
            return
        wal = self.wal
        delta = wal.records_written - self._seen_records
        if delta:
            counters["repro_service_wal_records_total"].inc(delta)
            self._seen_records = wal.records_written
        delta = wal.fsyncs - self._seen_fsyncs
        if delta:
            counters["repro_service_wal_fsyncs_total"].inc(delta)
            self._seen_fsyncs = wal.fsyncs
        delta = wal.bytes_written - self._seen_bytes
        if delta:
            counters["repro_service_wal_bytes_total"].inc(delta)
            self._seen_bytes = wal.bytes_written


# -- recovery -----------------------------------------------------------------
def latest_checkpoint(
    directory: str,
) -> tuple[Optional[str], Optional[dict], list[str]]:
    """Newest loadable checkpoint: ``(path, doc, skipped_paths)``.

    Unreadable checkpoints (truncated by a crash predating atomic
    writes, bit rot) are skipped with a note; a checkpoint with a
    *newer schema version* than this code raises — silently falling
    back to older state would lose acknowledged operations.
    """
    try:
        names = sorted(os.listdir(directory), reverse=True)
    except FileNotFoundError:
        return None, None, []
    skipped: list[str] = []
    for name in names:
        if not (name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)):
            continue
        path = os.path.join(directory, name)
        try:
            doc = read_checkpoint(path)
        except ValueError as exc:
            if "newer than this code" in str(exc):
                raise
            skipped.append(path)
            continue
        except OSError:
            skipped.append(path)
            continue
        return path, doc, skipped
    return None, None, skipped


def _replay_record(engine: StreamingEngine, rec: WalRecord, scalar: bool):
    """Apply one logged operation; returns the placement for submits."""
    payload = rec.payload
    op = payload.get("op")
    if op == "submit":
        item = _make_item(payload["job"], scalar)
        return engine.submit(
            item, schedule_departure=bool(payload.get("sd", True))
        )
    if op == "depart":
        engine.depart(int(payload["id"]), payload.get("now"))
        return None
    if op == "advance":
        engine.advance(float(payload["now"]))
        return None
    if op == "drain":
        engine.finish()
        return None
    if op == "defrag":
        engine.defrag(int(payload["budget"]))
        return None
    raise ValueError(f"unknown WAL op {op!r} at seq {rec.seq}")


def recover(
    directory: str,
    *,
    algorithm_factory: Optional[Callable[[str], Any]] = None,
    engine_builder: Optional[Callable[[], StreamingEngine]] = None,
    admission=None,
    metrics: Optional[MetricsRegistry] = None,
    decision_log=None,
    observers=(),
    fsync: str = "interval",
    fsync_every: int = 512,
    segment_bytes: Optional[int] = None,
    checkpoint_every: int = 1000,
    checkpoint_bytes: Optional[int] = None,
    dedup_limit: int = 4096,
    injector: Optional[FaultInjector] = None,
    manifest: Optional[dict] = None,
) -> tuple[DurableEngine, RecoveryReport]:
    """Rebuild a live durable engine from ``directory``.

    The standard restart path — ``repro serve --wal-dir`` calls this on
    boot, ``repro recover`` calls it for offline inspection.  Sequence:
    open the WAL (which truncates a torn tail), load the newest loadable
    checkpoint, replay every record past its ``wal_seq`` through the
    real engine code paths, rebuild the idempotency window, and hand
    back a :class:`DurableEngine` ready to serve.

    ``algorithm_factory(name)`` builds the placement policy named in the
    checkpoint (defaults to the scalar/vector registries by snapshot
    kind).  ``engine_builder()`` supplies the *fresh* engine when no
    checkpoint exists (a cold start or a crash before the first one);
    without it an empty directory is an error.

    ``manifest`` binds the directory to a shard identity: on a fresh
    directory it is written as the MANIFEST file; on an existing one it
    must match the recorded MANIFEST field for field, or recovery
    refuses with :class:`ValueError` **before** touching the log —
    silently replaying another shard's WAL into the wrong engine is the
    one mistake this layer must never make.  ``None`` (the default)
    keeps the pre-fleet behaviour: no manifest is written or checked.
    """
    from .wal import DEFAULT_SEGMENT_BYTES, read_manifest, write_manifest

    if manifest is not None:
        recorded = read_manifest(directory)
        if recorded is None:
            write_manifest(directory, manifest)
        elif recorded != manifest:
            diffs = sorted(
                key
                for key in set(recorded) | set(manifest)
                if recorded.get(key) != manifest.get(key)
            )
            detail = ", ".join(
                f"{key}: recorded {recorded.get(key)!r} != given {manifest.get(key)!r}"
                for key in diffs
            )
            raise ValueError(
                f"WAL directory {directory} belongs to a different shard/config "
                f"({detail}) — refusing to replay it; pick the matching "
                f"--shard-id/--num-shards/engine flags or a fresh --wal-dir"
            )

    report = RecoveryReport(directory=directory)
    wal = WriteAheadLog(
        directory,
        fsync=fsync,
        fsync_every=fsync_every,
        segment_bytes=segment_bytes or DEFAULT_SEGMENT_BYTES,
        io_hook=injector,
    )
    report.torn_bytes = wal.recovered_torn_bytes
    report.last_seq = wal.last_seq

    if metrics is not None:
        declare_durable_metrics(metrics)

    # walk the checkpoint generations newest-first, attempting a FULL
    # restore of each: a checkpoint that parses as JSON but is
    # structurally corrupt (missing fields, mangled engine section)
    # must not kill recovery while an older intact generation — kept
    # exactly for this case by ``_retire_checkpoints`` — can serve,
    # with the gap replayed from the WAL below
    engine = None
    dedup: Optional[DedupWindow] = None
    skipped: list[str] = []
    reg = metrics
    dirty = False  # a failed restore may have half-populated ``reg``
    try:
        names = sorted(os.listdir(directory), reverse=True)
    except FileNotFoundError:
        names = []
    for name in names:
        if not (
            name.startswith(CHECKPOINT_PREFIX)
            and name.endswith(CHECKPOINT_SUFFIX)
        ):
            continue
        path = os.path.join(directory, name)
        try:
            doc = read_checkpoint(path)
        except ValueError as exc:
            if "newer than this code" in str(exc):
                raise
            skipped.append(path)
            continue
        except OSError:
            skipped.append(path)
            continue
        if dirty:
            reg = MetricsRegistry() if metrics is not None else None
            if reg is not None:
                declare_durable_metrics(reg)
        try:
            checkpoint_seq = int(doc["wal_seq"])
            engine_doc = doc["engine"]
            factory = algorithm_factory
            if factory is None:
                if engine_doc["kind"] == "scalar":
                    from ..algorithms import make_algorithm as factory
                else:
                    from ..multidim import make_vector_algorithm as factory
            engine = restore_engine(
                engine_doc,
                factory(engine_doc["algorithm"]),
                admission=admission,
                metrics=reg,
                decision_log=decision_log,
                observers=observers,
            )
            dedup = DedupWindow.restore(doc.get("dedup", []), dedup_limit)
        except (ValueError, KeyError, TypeError):
            report.fallback_checkpoints.append(path)
            engine = None
            dirty = True
            continue
        report.checkpoint_path = path
        report.checkpoint_seq = checkpoint_seq
        break
    report.skipped_checkpoints = skipped

    if engine is None:
        if engine_builder is None:
            raise ValueError(
                f"no checkpoint in {directory} and no engine_builder given — "
                f"cannot cold-start the replay"
            )
        engine = engine_builder()
        dedup = DedupWindow(dedup_limit)

    scalar = isinstance(engine.state, PackingState)
    records, _ = replay_wal(directory, after_seq=report.checkpoint_seq)
    if records and records[0].seq > report.checkpoint_seq + 1:
        raise WalCorruptionError(
            f"WAL resumes at seq {records[0].seq} but the newest loadable "
            f"checkpoint covers only through seq {report.checkpoint_seq} — "
            f"records {report.checkpoint_seq + 1}..{records[0].seq - 1} "
            f"are gone; refusing to recover with acknowledged operations "
            f"missing"
        )
    for rec in records:
        try:
            placement = _replay_record(engine, rec, scalar)
        except (ValueError, KeyError):
            # the operation was refused live (pre-mutation validation is
            # deterministic), so it is refused identically here
            report.replay_errors += 1
            continue
        rid = rec.payload.get("rid")
        if rid is not None and placement is not None:
            dedup.put(rid, placement.to_dict())
    report.replayed = len(records)
    report.dedup_entries = len(dedup)

    durable = DurableEngine(
        engine,
        wal,
        checkpoint_every=checkpoint_every,
        checkpoint_bytes=checkpoint_bytes,
        dedup=dedup,
        injector=injector,
    )
    reg = engine.metrics
    if reg is not None:
        declare_durable_metrics(reg)
        reg.get("repro_service_recoveries_total").inc()
        if report.replayed:
            reg.get("repro_service_wal_replayed_total").inc(report.replayed)
    return durable, report
