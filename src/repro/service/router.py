"""The fleet's front door: consistent-hash routing onto N shard workers.

One asyncio process accepts client connections on the same two wire
protocols the single-process service speaks (JSON lines and the
length-prefixed binary framing of :mod:`repro.service.protocol`) and
fans each operation out to the worker that owns its key:

- ``submit`` / ``depart`` route by the job id's session key — with
  ``tenants=M`` the key is ``id % M`` (every session of a tenant lands
  on the same shard), otherwise the raw id.  The key → shard map is a
  consistent-hash ring (:class:`HashRing`, CRC-32 points so the mapping
  is identical in every process), which keeps most keys in place when
  the fleet is resized.
- ``advance`` / ``drain`` / ``stats`` / ``metrics`` / ``checkpoint`` /
  ``shutdown`` broadcast to every shard and aggregate: departures sum,
  clocks max, metrics are re-exposed under a ``shard`` label
  (:func:`repro.service.metrics.relabel_exposition`).
- batch frames are split per shard (order within each shard preserved —
  the per-key subsequence a shard sees is exactly the subsequence of
  the global stream, which is what makes the differential test's
  fleet ≡ standalone-shard equivalence hold) and the sub-responses are
  reassembled in the client's order.  With a single backend, binary
  frames are relayed verbatim — the 1-shard router overhead is one
  socket hop, pinned ≤15% by the ``router-loopback`` bench cells.

Each backend is one persistent pipelined binary connection
(:class:`BackendLink`): requests enqueue onto an unacknowledged window
and complete FIFO.  When a worker dies the link keeps the window, waits
for the supervisor to restart the worker (``redirect``), then resends
it — with request ids the recovered worker's dedup window absorbs the
replays, so a mid-stream crash loses no acknowledged operation
(at-least-once delivery + idempotent submits = exactly-once).  Live
handoff (drain → checkpoint → restore elsewhere) uses ``pause`` /
``control`` / ``redirect`` / ``resume`` on the same machinery.
"""

from __future__ import annotations

import asyncio
import json
import struct
import zlib
from bisect import bisect_right
from collections import deque
from time import monotonic
from typing import Awaitable, Callable, Optional, Sequence

from . import protocol as wire
from .metrics import merge_expositions, relabel_exposition
from .server import DEFAULT_MAX_LINE_BYTES, ProtocolError

__all__ = [
    "BackendLink",
    "HashRing",
    "ShardRouter",
    "partition_items",
    "route_key",
]

_SUB_ID = struct.Struct(">q")  # item id at bytes 2:10 of SUBMIT/DEPART

#: vnodes per backend — enough that a 2..16-shard ring is well mixed
DEFAULT_REPLICAS = 64


def route_key(item_id: int, tenants: int = 0) -> int:
    """The session/tenant routing key of a job id."""
    return item_id % tenants if tenants > 0 else item_id


class HashRing:
    """A consistent-hash ring over ``nodes`` backends.

    Points are CRC-32 digests (Python's ``hash`` is salted per process
    — useless for a mapping that the router, the tests, and any future
    second router must all agree on).  Each node contributes
    ``replicas`` vnodes; a key belongs to the first point clockwise
    from its own hash.
    """

    def __init__(self, nodes: int, replicas: int = DEFAULT_REPLICAS):
        if nodes < 1:
            raise ValueError(f"ring needs at least one node, got {nodes}")
        points = sorted(
            (zlib.crc32(b"shard-%d#vnode-%d" % (node, r)), node)
            for node in range(nodes)
            for r in range(replicas)
        )
        self.num_nodes = nodes
        self._hashes = [h for h, _ in points]
        self._nodes = [n for _, n in points]

    def node_for_key(self, key: int) -> int:
        if self.num_nodes == 1:
            return 0
        h = zlib.crc32(b"key-%d" % key)
        i = bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._nodes[i]


def partition_items(items, shards: int, tenants: int = 0,
                    replicas: int = DEFAULT_REPLICAS) -> list[list]:
    """Split a trace into the per-shard subsequences the router produces.

    Order within each subsequence is the items' order in ``items`` —
    exactly what each worker sees through the router.  The differential
    suite replays these standalone and compares WAL/checkpoint bytes.
    """
    ring = HashRing(shards, replicas)
    parts: list[list] = [[] for _ in range(shards)]
    for item in items:
        parts[ring.node_for_key(route_key(item.item_id, tenants))].append(item)
    return parts


class BackendLink:
    """One persistent, pipelined binary connection to a shard worker.

    ``request`` enqueues the payload onto the unacknowledged window and
    resolves FIFO when the worker's reply arrives.  A broken connection
    triggers reconnection (same address, or the new one supplied by
    ``redirect`` when the supervisor restarted the worker elsewhere)
    and the whole window is resent.  ``pause`` gates new requests and
    waits for the window to drain — the quiesce step of a live handoff;
    ``control`` bypasses the gate for the handoff's own checkpoint/
    shutdown ops.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        label: str = "",
        reconnect_wait: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_LINE_BYTES,
    ):
        self.host = host
        self.port = int(port)
        self.label = label or f"{host}:{port}"
        self.reconnect_wait = reconnect_wait
        self.max_frame_bytes = max_frame_bytes
        self.reconnects = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: deque[tuple[bytes, asyncio.Future]] = deque()
        self._idle = asyncio.Event()
        self._idle.set()
        self._gate = asyncio.Event()
        self._gate.set()
        self._redirected = asyncio.Event()
        self._closing = False

    # -- connection management ------------------------------------------------
    async def connect(self) -> None:
        """Establish the connection (reviving a given-up link too)."""
        await self._do_connect()
        if self._reader_task is None or self._reader_task.done():
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _do_connect(self) -> None:
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=self.max_frame_bytes
        )
        writer.write(wire.hello_line())
        await writer.drain()
        ack_line = await reader.readline()
        try:
            ack = json.loads(ack_line)
        except ValueError:
            ack = None
        if not (isinstance(ack, dict) and ack.get("ok")):
            writer.close()
            raise ConnectionError(
                f"backend {self.label} refused the binary hello: {ack_line!r}"
            )
        self._reader, self._writer = reader, writer
        # resend the unacknowledged window, oldest first — replies stay
        # FIFO, and the worker's dedup window absorbs any duplicates
        if self._pending:
            for payload, _ in self._pending:
                writer.write(wire.frame(payload))
            await writer.drain()

    async def redirect(self, host: str, port: int) -> None:
        """Retarget the link (the worker moved) and reconnect if dead."""
        self.host, self.port = host, int(port)
        self._redirected.set()
        if self._writer is None and (
            self._reader_task is None or self._reader_task.done()
        ):
            await self.connect()

    async def close(self) -> None:
        self._closing = True
        self._gate.set()
        task = self._reader_task
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ConnectionError(f"backend link {self.label} closed"))

    # -- the request path -----------------------------------------------------
    async def request(self, payload: bytes) -> bytes:
        """Send one frame payload; resolves with the reply payload."""
        if not self._gate.is_set():
            await self._gate.wait()
        return await self._enqueue(payload)

    async def control(self, payload: bytes) -> bytes:
        """A request that bypasses the pause gate (handoff bookkeeping)."""
        return await self._enqueue(payload)

    async def _enqueue(self, payload: bytes) -> bytes:
        if self._closing:
            raise ConnectionError(f"backend link {self.label} is closed")
        fut: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending.append((payload, fut))
        self._idle.clear()
        writer = self._writer
        if writer is not None:
            try:
                writer.write(wire.frame(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # the read loop notices the break and resends
        return await fut

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- handoff quiesce ------------------------------------------------------
    async def pause(self) -> None:
        """Stop accepting requests and wait for the window to drain."""
        self._gate.clear()
        await self._idle.wait()

    def resume(self) -> None:
        self._gate.set()

    # -- reply pump + reconnection --------------------------------------------
    async def _read_loop(self) -> None:
        while True:
            try:
                assert self._reader is not None
                head = await self._reader.readexactly(wire.HEADER.size)
                (length,) = wire.HEADER.unpack(head)
                if length == 0 or length > self.max_frame_bytes:
                    raise ConnectionError(
                        f"backend {self.label} sent an invalid frame length {length}"
                    )
                payload = await self._reader.readexactly(length)
            except asyncio.CancelledError:
                raise
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                if self._closing:
                    return
                if await self._reconnect():
                    self.reconnects += 1
                    continue
                self._writer = None
                self._fail_pending(
                    ConnectionError(f"backend {self.label} unreachable")
                )
                return  # a later redirect() revives the link
            if self._pending:
                _, fut = self._pending.popleft()
                if not fut.done():
                    fut.set_result(payload)
                if not self._pending:
                    self._idle.set()

    async def _reconnect(self) -> bool:
        self._writer = None
        deadline = monotonic() + self.reconnect_wait
        delay = 0.05
        while monotonic() < deadline:
            self._redirected.clear()
            try:
                await self._do_connect()
                return True
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            if self._closing:
                return False
            try:
                # a redirect retargets the address and retries at once
                await asyncio.wait_for(self._redirected.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass
            delay = min(delay * 2, 0.5)
        return False

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            _, fut = self._pending.popleft()
            if not fut.done():
                fut.set_exception(exc)
        self._idle.set()


class ShardRouter:
    """The consistent-hash front-end over N backend workers.

    Speaks both client protocols (the JSON-lines debug surface and the
    binary framing) with the single-process service's error taxonomy;
    always speaks binary to the backends.  ``handoff_callback`` (set by
    the fleet supervisor) serves the ``{"op": "handoff", "shard": k}``
    operation — the router itself only quiesces links; moving processes
    is the supervisor's job.
    """

    def __init__(
        self,
        backends: Sequence[tuple[str, int]],
        *,
        tenants: int = 0,
        replicas: int = DEFAULT_REPLICAS,
        quiet: bool = True,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        request_timeout: float = 30.0,
        reconnect_wait: float = 30.0,
        handoff_callback: Optional[Callable[[int], Awaitable[Optional[dict]]]] = None,
    ):
        if not backends:
            raise ValueError("router needs at least one backend")
        self.tenants = int(tenants)
        self.quiet = quiet
        self.max_line_bytes = int(max_line_bytes)
        self.request_timeout = request_timeout
        self.handoff_callback = handoff_callback
        self.links = [
            BackendLink(
                host, port, label=f"shard-{i}@{host}:{port}",
                reconnect_wait=reconnect_wait, max_frame_bytes=max_line_bytes,
            )
            for i, (host, port) in enumerate(backends)
        ]
        self.ring = HashRing(len(self.links), replicas)
        self.requests_served = 0
        #: job ops forwarded per shard (the loadgen imbalance report)
        self.requests_routed = [0] * len(self.links)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    @property
    def num_shards(self) -> int:
        return len(self.links)

    def shard_of(self, item_id: int) -> int:
        return self.ring.node_for_key(route_key(item_id, self.tenants))

    # -- lifecycle ------------------------------------------------------------
    async def connect(self) -> None:
        await asyncio.gather(*(link.connect() for link in self.links))

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self.max_line_bytes
        )
        bound = self._server.sockets[0].getsockname()[1]
        if not self.quiet:
            print(
                f"repro router listening on {host}:{bound} "
                f"({self.num_shards} shards, tenants={self.tenants or 'raw ids'})"
            )
        return bound

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        for link in self.links:
            await link.close()

    async def serve_until_shutdown(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        await self.connect()
        await self.start(host, port)
        await self.wait_closed()
        return 0

    def shutdown(self) -> None:
        self._shutdown.set()

    # -- shard plumbing for the supervisor ------------------------------------
    async def pause_shard(self, index: int) -> None:
        await self.links[index].pause()

    def resume_shard(self, index: int) -> None:
        self.links[index].resume()

    async def redirect_shard(self, index: int, host: str, port: int) -> None:
        await self.links[index].redirect(host, port)

    async def shard_control(self, index: int, request: dict) -> dict:
        """A pause-proof JSON op against one shard (handoff checkpoints)."""
        out = await self.links[index].control(wire.encode_json_request(request))
        return wire.decode_response(out)

    # -- front: JSON lines ----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, {
                        "ok": False,
                        "error": f"request line exceeds {self.max_line_bytes} bytes",
                        "error_type": "line_too_long",
                    })
                    break
                if not line:
                    break
                if not line.endswith(b"\n") and reader.at_eof():
                    break
                response = await self._dispatch_line(line)
                if not await self._reply(writer, response):
                    break
                if response.get("bye"):
                    self._shutdown.set()
                    break
                if response.get("ok") and response.get("protocol") == "binary":
                    await self._handle_binary(reader, writer)
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reply(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        return await self._write(writer, (json.dumps(response) + "\n").encode())

    async def _write(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        try:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), self.request_timeout)
            return True
        except (ConnectionError, asyncio.TimeoutError, OSError):
            return False

    async def _dispatch_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            return {
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }
        if not isinstance(request, dict):
            return {
                "ok": False,
                "error": f"request must be a JSON object, got {type(request).__name__}",
                "error_type": "protocol",
            }
        return await self._dispatch_safely(request)

    async def _dispatch_safely(self, request: dict) -> dict:
        try:
            return await self._dispatch(request)
        except _ShardError as exc:
            return exc.doc
        except ProtocolError as exc:
            return {"ok": False, "error": str(exc), "error_type": "protocol"}
        except ConnectionError as exc:
            return {
                "ok": False,
                "error": str(exc),
                "error_type": "shard_unavailable",
            }
        except Exception as exc:  # protocol boundary: report, don't crash
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            }

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        if op == "submit":
            job = request.get("job")
            key = job.get("id") if isinstance(job, dict) else None
            return await self._forward_json(self._shard_for_raw(key), request)
        if op == "depart":
            return await self._forward_json(
                self._shard_for_raw(request.get("id")), request
            )
        if op == "advance":
            docs = self._require_ok(await self._broadcast_json(request))
            return {
                "ok": True,
                "departed": sum(d.get("departed", 0) for d in docs),
                "clock": max(d.get("clock", 0.0) for d in docs),
            }
        if op == "drain":
            docs = self._require_ok(await self._broadcast_json(request))
            return {
                "ok": True,
                "bins": sum(d["bins"] for d in docs),
                "total_usage_time": sum(d["total_usage_time"] for d in docs),
                "algorithm": docs[0]["algorithm"],
                "shards": [
                    {"bins": d["bins"], "total_usage_time": d["total_usage_time"]}
                    for d in docs
                ],
            }
        if op == "stats":
            docs = await self._broadcast_json(request)
            shards = [d.get("stats", d) for d in docs]
            totals: dict = {}
            for field in ("open_bins", "bins_used", "placed", "active",
                          "queue_depth"):
                values = [s.get(field) for s in shards]
                if all(isinstance(v, (int, float)) for v in values):
                    totals[field] = sum(values)
            return {"ok": True, "stats": {
                "router": {
                    "shards": self.num_shards,
                    "tenants": self.tenants,
                    "per_shard_requests": list(self.requests_routed),
                    "reconnects": [link.reconnects for link in self.links],
                },
                "shards": shards,
                "totals": totals,
            }}
        if op == "metrics":
            docs = await self._broadcast_json(request)
            texts = [
                relabel_exposition(d["text"], {"shard": str(i)})
                for i, d in enumerate(docs)
                if d.get("ok") and "text" in d
            ]
            texts.append(self._own_exposition())
            if not texts:
                return self._require_ok(docs)[0]  # propagate the error
            return {"ok": True, "text": merge_expositions(texts)}
        if op == "checkpoint":
            docs = self._require_ok(await self._broadcast_json(request))
            return {"ok": True, "shards": docs}
        if op == "ping":
            return {"ok": True, "pong": True, "shards": self.num_shards}
        if op == "shutdown":
            await self._broadcast_json({"op": "shutdown"})
            return {"ok": True, "bye": True}
        if op == "handoff":
            if self.handoff_callback is None:
                raise ProtocolError("no fleet supervisor: handoff unavailable")
            shard = request.get("shard")
            if not isinstance(shard, int) or not 0 <= shard < self.num_shards:
                raise ProtocolError(
                    f"handoff needs a 'shard' in [0, {self.num_shards})"
                )
            detail = await self.handoff_callback(shard)
            out = {"ok": True, "shard": shard}
            if isinstance(detail, dict):
                out.update(detail)
            return out
        if op == "hello":
            proto = request.get("protocol", "json")
            if proto not in wire.PROTOCOLS:
                raise ProtocolError(
                    f"unknown protocol {proto!r}; known: {list(wire.PROTOCOLS)}"
                )
            version = request.get("version", wire.PROTOCOL_VERSION)
            if version != wire.PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {version!r} "
                    f"(this server speaks {wire.PROTOCOL_VERSION})"
                )
            return {"ok": True, "protocol": proto, "version": wire.PROTOCOL_VERSION}
        # anything else (including unknown ops): let shard 0 answer, so
        # the error taxonomy has exactly one source of truth
        return await self._forward_json(0, request)

    def _shard_for_raw(self, raw_id) -> int:
        """Routing for a client-supplied id that may be malformed.

        A bad id still goes to a real worker (shard 0) so the client
        gets the worker's own validation error, byte-identical to the
        single-process service's.
        """
        try:
            return self.shard_of(int(raw_id))
        except (TypeError, ValueError):
            return 0

    async def _forward_json(self, index: int, request: dict) -> dict:
        out = await self._forward(index, wire.encode_json_request(request))
        return wire.decode_response(out)

    async def _forward(self, index: int, payload: bytes) -> bytes:
        self.requests_routed[index] += 1
        return await self.links[index].request(payload)

    async def _broadcast_json(self, request: dict) -> list[dict]:
        payload = wire.encode_json_request(request)
        outs = await asyncio.gather(
            *(link.request(payload) for link in self.links),
            return_exceptions=True,
        )
        docs: list[dict] = []
        for i, out in enumerate(outs):
            if isinstance(out, BaseException):
                docs.append({
                    "ok": False,
                    "error": f"shard {i}: {out}",
                    "error_type": "shard_unavailable",
                })
            else:
                docs.append(wire.decode_response(out))
        return docs

    @staticmethod
    def _require_ok(docs: list[dict]) -> list[dict]:
        for doc in docs:
            if not doc.get("ok"):
                raise _ShardError(doc)
        return docs

    def _own_exposition(self) -> str:
        lines = [
            "# HELP repro_router_requests_total job ops routed to each shard",
            "# TYPE repro_router_requests_total counter",
        ]
        lines += [
            f'repro_router_requests_total{{shard="{i}"}} {n}'
            for i, n in enumerate(self.requests_routed)
        ]
        lines += [
            "# HELP repro_router_reconnects_total backend link reconnections",
            "# TYPE repro_router_reconnects_total counter",
        ]
        lines += [
            f'repro_router_reconnects_total{{shard="{i}"}} {link.reconnects}'
            for i, link in enumerate(self.links)
        ]
        return "\n".join(lines) + "\n"

    # -- front: binary frames -------------------------------------------------
    async def _handle_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        header_size = wire.HEADER.size
        unpack_header = wire.HEADER.unpack
        while True:
            try:
                head = await reader.readexactly(header_size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            (length,) = unpack_header(head)
            if length == 0:
                self.requests_served += 1
                out = wire.encode_json_response({
                    "ok": False,
                    "error": "zero-length frame",
                    "error_type": "malformed_frame",
                })
                if not await self._write(writer, wire.frame(out)):
                    return
                continue
            if length > self.max_line_bytes:
                self.requests_served += 1
                out = wire.encode_json_response({
                    "ok": False,
                    "error": (
                        f"frame declares {length} bytes, "
                        f"limit is {self.max_line_bytes}"
                    ),
                    "error_type": "frame_too_long",
                })
                await self._write(writer, wire.frame(out))
                return
            try:
                payload = await asyncio.wait_for(
                    reader.readexactly(length), self.request_timeout
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, OSError):
                return
            out, bye = await self._dispatch_frame(payload)
            if not await self._write(writer, wire.frame(out)):
                return
            if bye:
                self._shutdown.set()
                return

    async def _dispatch_frame(self, payload: bytes) -> tuple[bytes, bool]:
        op = payload[0]
        if op != wire.OP_JSON and self.num_shards == 1:
            # single-backend fast path: relay the frame verbatim — no
            # decode, no re-encode (the ≤15% 1-shard overhead budget)
            self.requests_served += 1
            self.requests_routed[0] += 1
            try:
                return await self.links[0].request(payload), False
            except ConnectionError as exc:
                return self._unavailable(0, exc), False
        if op == wire.OP_SUBMIT or op == wire.OP_DEPART:
            self.requests_served += 1
            try:
                (item_id,) = _SUB_ID.unpack_from(payload, 2)
            except Exception:
                index = 0  # malformed: the worker owns the error message
            else:
                index = self.shard_of(item_id)
            try:
                return await self._forward(index, payload), False
            except ConnectionError as exc:
                return self._unavailable(index, exc), False
        if op == wire.OP_ADVANCE:
            self.requests_served += 1
            response = await self._dispatch_safely(
                {"op": "advance", "now": self._advance_now(payload)}
            )
            if response.get("ok"):
                return wire.encode_clock(
                    response["clock"], response["departed"]
                ), False
            return wire.encode_json_response(response), False
        if op == wire.OP_BATCH:
            return await self._dispatch_batch(payload)
        if op == wire.OP_JSON:
            return await self._dispatch_json_frame(payload)
        self.requests_served += 1
        return wire.encode_json_response({
            "ok": False,
            "error": f"unknown opcode 0x{op:02x}",
            "error_type": "protocol",
        }), False

    @staticmethod
    def _advance_now(payload: bytes):
        try:
            return wire.decode_advance(payload)
        except wire.FrameError:
            return None  # the JSON path reports "advance needs a 'now'"

    async def _dispatch_json_frame(self, payload: bytes) -> tuple[bytes, bool]:
        self.requests_served += 1
        try:
            request = json.loads(bytes(payload[1:]))
        except (ValueError, UnicodeDecodeError) as exc:
            return wire.encode_json_response({
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }), False
        if not isinstance(request, dict):
            return wire.encode_json_response({
                "ok": False,
                "error": (
                    f"request must be a JSON object, got {type(request).__name__}"
                ),
                "error_type": "protocol",
            }), False
        op = request.get("op")
        if op in ("submit", "depart"):
            # single-shard JSON op: relay the original payload so the
            # worker's binary response (RESP_PLACEMENT/RESP_CLOCK)
            # reaches the client byte-identical to a direct connection
            if op == "submit":
                job = request.get("job")
                raw = job.get("id") if isinstance(job, dict) else None
            else:
                raw = request.get("id")
            index = self._shard_for_raw(raw)
            try:
                return await self._forward(index, payload), False
            except ConnectionError as exc:
                return self._unavailable(index, exc), False
        response = await self._dispatch_safely(request)
        return self._encode_response(response), bool(response.get("bye"))

    async def _dispatch_batch(self, payload: bytes) -> tuple[bytes, bool]:
        try:
            subs = wire.split_batch(payload)
        except wire.FrameError as exc:
            self.requests_served += 1
            return wire.encode_json_response({
                "ok": False, "error": str(exc), "error_type": "malformed_frame",
            }), False
        self.requests_served += len(subs)
        if all(sub[0] == wire.OP_SUBMIT or sub[0] == wire.OP_DEPART
               for sub in subs):
            return await self._route_job_batch(payload, subs), False
        # a mixed batch (advance/JSON riding along): strictly sequential
        # per-sub dispatch, preserving the client's op order globally
        parts: list[bytes] = []
        bye = False
        for sub in subs:
            self.requests_served -= 1  # _dispatch_frame counts it again
            out, sub_bye = await self._dispatch_frame(bytes(sub))
            bye = bye or sub_bye
            parts.append(out)
        return wire.encode_batch(parts), bye

    async def _route_job_batch(self, payload: bytes, subs) -> bytes:
        """An all-job batch: split per shard, fan out, reassemble."""
        groups: dict[int, list[int]] = {}
        order: list[int] = []  # shard of each sub, in client order
        for sub in subs:
            try:
                (item_id,) = _SUB_ID.unpack_from(sub, 2)
                index = self.shard_of(item_id)
            except Exception:
                index = 0
            if index not in groups:
                groups[index] = []
            groups[index].append(len(order))
            order.append(index)
        if len(groups) == 1:
            index = next(iter(groups))
            self.requests_routed[index] += len(subs)
            try:
                return await self.links[index].request(payload)
            except ConnectionError as exc:
                return wire.encode_batch(
                    [self._unavailable(index, exc)] * len(subs)
                )
        indices = list(groups)

        async def one(index: int) -> "bytes | Exception":
            sub_payload = wire.encode_batch(
                [bytes(subs[i]) for i in groups[index]]
            )
            self.requests_routed[index] += len(groups[index])
            try:
                return await self.links[index].request(sub_payload)
            except ConnectionError as exc:
                return exc

        replies = await asyncio.gather(*(one(i) for i in indices))
        parts: list[Optional[bytes]] = [None] * len(subs)
        for index, reply in zip(indices, replies):
            positions = groups[index]
            if isinstance(reply, Exception):
                err = self._unavailable(index, reply)
                for pos in positions:
                    parts[pos] = err
                continue
            try:
                sub_replies = wire.split_batch(reply)
            except wire.FrameError as exc:
                err = wire.encode_json_response({
                    "ok": False,
                    "error": f"shard {index} sent a malformed batch: {exc}",
                    "error_type": "internal",
                })
                sub_replies = None
            if sub_replies is None or len(sub_replies) != len(positions):
                if sub_replies is not None:
                    err = wire.encode_json_response({
                        "ok": False,
                        "error": (
                            f"shard {index} answered {len(sub_replies)} of "
                            f"{len(positions)} batch ops"
                        ),
                        "error_type": "internal",
                    })
                for pos in positions:
                    parts[pos] = err
                continue
            for pos, sub_reply in zip(positions, sub_replies):
                parts[pos] = bytes(sub_reply)
        return wire.encode_batch(parts)  # type: ignore[arg-type]

    def _unavailable(self, index: int, exc: Exception) -> bytes:
        return wire.encode_json_response({
            "ok": False,
            "error": f"shard {index}: {exc}",
            "error_type": "shard_unavailable",
        })

    def _encode_response(self, response: dict) -> bytes:
        """A router-composed dict in the binary response scheme."""
        if response.get("ok") and "clock" in response and "departed" in response:
            return wire.encode_clock(response["clock"], response["departed"])
        return wire.encode_json_response(response)


class _ShardError(Exception):
    """Carries a shard's error dict up through an aggregation."""

    def __init__(self, doc: dict):
        super().__init__(doc.get("error", "shard error"))
        self.doc = doc
