"""The fleet's front door: consistent-hash routing onto N shard workers.

One asyncio process accepts client connections on the same two wire
protocols the single-process service speaks (JSON lines and the
length-prefixed binary framing of :mod:`repro.service.protocol`) and
fans each operation out to the worker that owns its key:

- ``submit`` / ``depart`` route by the job id's session key — with
  ``tenants=M`` the key is ``id % M`` (every session of a tenant lands
  on the same shard), otherwise the raw id.  The key → shard map is a
  consistent-hash ring (:class:`HashRing`, CRC-32 points so the mapping
  is identical in every process), which keeps most keys in place when
  the fleet is resized.
- ``advance`` / ``drain`` / ``stats`` / ``metrics`` / ``checkpoint`` /
  ``defrag`` / ``shutdown`` broadcast to every shard and aggregate:
  departures and migration counters sum, clocks max, metrics are
  re-exposed under a ``shard`` label
  (:func:`repro.service.metrics.relabel_exposition`).
- batch frames are split per shard (order within each shard preserved —
  the per-key subsequence a shard sees is exactly the subsequence of
  the global stream, which is what makes the differential test's
  fleet ≡ standalone-shard equivalence hold) and the sub-responses are
  reassembled in the client's order.  With a single backend, binary
  frames are relayed verbatim — the 1-shard router overhead is one
  socket hop, pinned ≤15% by the ``router-loopback`` bench cells.

Each backend is one persistent pipelined binary connection
(:class:`BackendLink`): requests enqueue onto an unacknowledged window
and complete FIFO.  When a worker dies the link keeps the window, waits
for the supervisor to restart the worker (``redirect``), then resends
it — with request ids the recovered worker's dedup window absorbs the
replays, so a mid-stream crash loses no acknowledged operation
(at-least-once delivery + idempotent submits = exactly-once).  Live
handoff (drain → checkpoint → restore elsewhere) uses ``pause`` /
``control`` / ``redirect`` / ``resume`` on the same machinery.

Resilience layer
----------------
Every forward to a worker goes through one chokepoint
(``_call_shard``) that enforces three policies:

- **deadlines** — a request carrying a deadline budget (JSON
  ``deadline_ms``, or the v2 binary DEADLINE wrapper) is bounded by
  ``min(request_timeout, remaining budget)`` per hop; an expired
  budget is refused *before* forwarding, and a hop that outlives it is
  answered ``error_type: deadline_exceeded``.  The remaining budget is
  re-wrapped toward the worker (when the backend negotiated protocol
  v2), so the worker can refuse work nobody is waiting for.
- **per-shard circuit breakers** — a windowed failure-rate breaker
  (:class:`CircuitBreaker`) per backend.  Open shards answer
  immediately (``degraded="failfast"``, the default: a
  ``shard_unavailable`` error flagged ``"breaker": "open"``) or park
  the caller until the breaker closes (``degraded="queue"``, bounded
  by the deadline/request timeout).  The control lane
  (:meth:`ShardRouter.shard_control` — handoffs, health probes)
  bypasses the breaker like it bypasses the pause gate.
- **fault injection** — with a :class:`~repro.service.faults.LinkFaults`
  stream attached (link name ``backend-<i>``), connects and sends
  consult the seeded plan: injected drops/truncations sever the
  connection (never silently skip a frame — that would desync the FIFO
  window), so they exercise exactly the reconnect + resend + dedup
  path a real flaky network does; partitions refuse connects for a
  hit-window, then heal.

Breaker state, transitions, rejections, probe failures, and deadline
overruns are all exported per shard in the router's own metrics
exposition.
"""

from __future__ import annotations

import asyncio
import json
import random
import struct
import zlib
from bisect import bisect_right
from collections import deque
from time import monotonic
from typing import Awaitable, Callable, Optional, Sequence

from . import protocol as wire
from .faults import FaultInjector, LinkFaults
from .metrics import merge_expositions, relabel_exposition
from .server import DEFAULT_MAX_LINE_BYTES, ProtocolError

__all__ = [
    "BackendLink",
    "BreakerOpenError",
    "CircuitBreaker",
    "DeadlineExceededError",
    "HashRing",
    "ShardRouter",
    "partition_items",
    "route_key",
]

_SUB_ID = struct.Struct(">q")  # item id at bytes 2:10 of SUBMIT/DEPART

#: vnodes per backend — enough that a 2..16-shard ring is well mixed
DEFAULT_REPLICAS = 64


def route_key(item_id: int, tenants: int = 0) -> int:
    """The session/tenant routing key of a job id."""
    return item_id % tenants if tenants > 0 else item_id


class HashRing:
    """A consistent-hash ring over a set of backend nodes.

    Points are CRC-32 digests (Python's ``hash`` is salted per process
    — useless for a mapping that the router, the tests, and any future
    second router must all agree on).  Each node contributes
    ``replicas`` vnodes; a key belongs to the first point clockwise
    from its own hash.

    The membership is mutable (:meth:`add_node` / :meth:`remove_node`)
    and the point set is a pure function of the member set — adding,
    removing, and re-adding a node restores the exact prior mapping,
    and resizing ``N → N+1`` moves only ~``1/(N+1)`` of the keyspace.
    """

    def __init__(self, nodes: int, replicas: int = DEFAULT_REPLICAS):
        if nodes < 1:
            raise ValueError(f"ring needs at least one node, got {nodes}")
        if replicas < 1:
            raise ValueError(f"ring needs at least one vnode, got {replicas}")
        self.replicas = replicas
        self._members: set[int] = set(range(nodes))
        self._rebuild()

    def _rebuild(self) -> None:
        points = sorted(
            (zlib.crc32(b"shard-%d#vnode-%d" % (node, r)), node)
            for node in self._members
            for r in range(self.replicas)
        )
        self._hashes = [h for h, _ in points]
        self._nodes = [n for _, n in points]
        # the single-member shortcut in node_for_key
        self._only = next(iter(self._members)) if len(self._members) == 1 else None

    @property
    def num_nodes(self) -> int:
        return len(self._members)

    @property
    def members(self) -> frozenset:
        return frozenset(self._members)

    def add_node(self, node: int) -> None:
        """Add a member (idempotent: re-adding is a no-op)."""
        if node in self._members:
            return
        self._members.add(node)
        self._rebuild()

    def remove_node(self, node: int) -> None:
        """Remove a member.  The last member cannot leave — every key
        must always map somewhere."""
        if node not in self._members:
            raise KeyError(f"node {node} is not on the ring")
        if len(self._members) == 1:
            raise ValueError(
                f"cannot remove node {node}: it is the last member of the ring"
            )
        self._members.discard(node)
        self._rebuild()

    def node_for_key(self, key: int) -> int:
        if self._only is not None:
            return self._only
        h = zlib.crc32(b"key-%d" % key)
        i = bisect_right(self._hashes, h)
        if i == len(self._hashes):
            i = 0
        return self._nodes[i]


def partition_items(items, shards: int, tenants: int = 0,
                    replicas: int = DEFAULT_REPLICAS) -> list[list]:
    """Split a trace into the per-shard subsequences the router produces.

    Order within each subsequence is the items' order in ``items`` —
    exactly what each worker sees through the router.  The differential
    suite replays these standalone and compares WAL/checkpoint bytes.
    """
    ring = HashRing(shards, replicas)
    parts: list[list] = [[] for _ in range(shards)]
    for item in items:
        parts[ring.node_for_key(route_key(item.item_id, tenants))].append(item)
    return parts


class BreakerOpenError(ConnectionError):
    """A request refused because the shard's circuit breaker is open.

    Subclasses ``ConnectionError`` so every forwarding path that
    already maps connection failures to ``shard_unavailable`` handles
    it for free; the error doc additionally carries ``"breaker":
    "open"`` so clients can tell load-shedding from a dead shard.
    """


class DeadlineExceededError(ConnectionError):
    """A hop that outlived the request's remaining deadline budget."""


class CircuitBreaker:
    """A windowed failure-rate breaker with closed/open/half-open states.

    Outcomes of the last ``window`` forwards feed a failure fraction;
    once at least ``min_volume`` outcomes are in the window and the
    fraction reaches ``threshold``, the breaker opens: requests are
    refused without touching the backend.  After ``cooldown`` seconds
    the next :meth:`allow` transitions to half-open and admits up to
    ``probes`` trial requests — one success closes the breaker (and
    clears the window), one failure re-opens it for another cooldown.

    ``clock`` is injectable so unit tests drive the cooldown with a
    fake clock instead of sleeping.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"
    #: numeric gauge values for the metrics exposition
    STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

    def __init__(
        self,
        *,
        window: int = 20,
        min_volume: int = 5,
        threshold: float = 0.5,
        cooldown: float = 1.0,
        probes: int = 1,
        clock: Callable[[], float] = monotonic,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if min_volume < 1:
            raise ValueError(f"min_volume must be >= 1, got {min_volume}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if probes < 1:
            raise ValueError(f"probes must be >= 1, got {probes}")
        self.window = window
        self.min_volume = min_volume
        self.threshold = threshold
        self.cooldown = cooldown
        self.probes = probes
        self._clock = clock
        self.state = self.CLOSED
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._opened_at = 0.0
        self._probes_left = 0
        #: state -> number of transitions *into* that state
        self.transitions = {self.CLOSED: 0, self.OPEN: 0, self.HALF_OPEN: 0}
        self._closed_event = asyncio.Event()
        self._closed_event.set()

    @property
    def state_code(self) -> int:
        return self.STATE_CODES[self.state]

    def _transition(self, state: str) -> None:
        self.state = state
        self.transitions[state] += 1
        if state == self.CLOSED:
            self._closed_event.set()
        else:
            self._closed_event.clear()

    def allow(self) -> bool:
        """May a request go to the backend right now?

        In the open state this is also where the cooldown expires: the
        first ``allow`` past the deadline flips to half-open and is
        admitted as a probe.
        """
        if self.state == self.CLOSED:
            return True
        if self.state == self.OPEN:
            if self._clock() - self._opened_at < self.cooldown:
                return False
            self._transition(self.HALF_OPEN)
            self._probes_left = self.probes
        # half-open: admit while probe budget remains
        if self._probes_left > 0:
            self._probes_left -= 1
            return True
        return False

    def record_success(self) -> None:
        if self.state == self.HALF_OPEN:
            # the probe came back: the shard is healthy again
            self._outcomes.clear()
            self._transition(self.CLOSED)
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        if self.state == self.HALF_OPEN:
            # the probe failed: back to open for another cooldown
            self._opened_at = self._clock()
            self._transition(self.OPEN)
            return
        self._outcomes.append(False)
        if self.state != self.CLOSED:
            return
        if len(self._outcomes) < self.min_volume:
            return
        failures = sum(1 for ok in self._outcomes if not ok)
        if failures / len(self._outcomes) >= self.threshold:
            self._opened_at = self._clock()
            self._transition(self.OPEN)

    async def wait_closed(self) -> None:
        """Park until the breaker closes (the ``queue`` degraded mode)."""
        await self._closed_event.wait()


class BackendLink:
    """One persistent, pipelined binary connection to a shard worker.

    ``request`` enqueues the payload onto the unacknowledged window and
    resolves FIFO when the worker's reply arrives.  A broken connection
    triggers reconnection (same address, or the new one supplied by
    ``redirect`` when the supervisor restarted the worker elsewhere)
    and the whole window is resent.  ``pause`` gates new requests and
    waits for the window to drain — the quiesce step of a live handoff;
    ``control`` bypasses the gate for the handoff's own checkpoint/
    shutdown ops.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        label: str = "",
        reconnect_wait: float = 30.0,
        max_frame_bytes: int = DEFAULT_MAX_LINE_BYTES,
        faults: Optional[LinkFaults] = None,
    ):
        self.host = host
        self.port = int(port)
        self.label = label or f"{host}:{port}"
        self.reconnect_wait = reconnect_wait
        self.max_frame_bytes = max_frame_bytes
        self.faults = faults
        #: dialect the worker acked in the hello (refined per connect);
        #: v2-only frames (the DEADLINE wrapper) require >= 2
        self.negotiated_version = wire.PROTOCOL_VERSION
        #: reconnect backoff jitter — seeded by the label so one link's
        #: retry schedule is reproducible and independent of its peers'
        self._backoff_rng = random.Random(self.label)
        self.reconnects = 0
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional[asyncio.Task] = None
        self._pending: deque[tuple[bytes, asyncio.Future]] = deque()
        self._idle = asyncio.Event()
        self._idle.set()
        self._gate = asyncio.Event()
        self._gate.set()
        self._redirected = asyncio.Event()
        self._closing = False

    # -- connection management ------------------------------------------------
    async def connect(self) -> None:
        """Establish the connection (reviving a given-up link too)."""
        await self._do_connect()
        if self._reader_task is None or self._reader_task.done():
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _do_connect(self) -> None:
        if self.faults is not None:
            self.faults.connect_check()  # injected partition: refuse
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=self.max_frame_bytes
        )
        writer.write(wire.hello_line())
        await writer.drain()
        ack_line = await reader.readline()
        try:
            ack = json.loads(ack_line)
        except ValueError:
            ack = None
        if not (isinstance(ack, dict) and ack.get("ok")):
            writer.close()
            raise ConnectionError(
                f"backend {self.label} refused the binary hello: {ack_line!r}"
            )
        try:
            self.negotiated_version = int(ack.get("version", 1))
        except (TypeError, ValueError):
            self.negotiated_version = 1
        self._reader, self._writer = reader, writer
        # resend the unacknowledged window, oldest first — replies stay
        # FIFO, and the worker's dedup window absorbs any duplicates
        if self._pending:
            for payload, _ in self._pending:
                writer.write(wire.frame(payload))
            await writer.drain()

    async def redirect(self, host: str, port: int) -> None:
        """Retarget the link (the worker moved) and reconnect if dead."""
        self.host, self.port = host, int(port)
        self._redirected.set()
        if self._writer is None and (
            self._reader_task is None or self._reader_task.done()
        ):
            await self.connect()

    async def close(self) -> None:
        self._closing = True
        self._gate.set()
        task = self._reader_task
        if task is not None and not task.done():
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ConnectionError(f"backend link {self.label} closed"))

    # -- the request path -----------------------------------------------------
    async def request(self, payload: bytes) -> bytes:
        """Send one frame payload; resolves with the reply payload."""
        if not self._gate.is_set():
            await self._gate.wait()
        return await self._enqueue(payload)

    async def control(self, payload: bytes) -> bytes:
        """A request that bypasses the pause gate (handoff bookkeeping)."""
        return await self._enqueue(payload)

    async def _enqueue(self, payload: bytes) -> bytes:
        if self._closing:
            raise ConnectionError(f"backend link {self.label} is closed")
        fut: asyncio.Future = asyncio.get_event_loop().create_future()
        self._pending.append((payload, fut))
        self._idle.clear()
        writer = self._writer
        if writer is not None:
            faults = self.faults
            if faults is not None:
                verdict = await self._faulty_send(writer, payload, faults)
                if verdict:
                    return await fut  # severed; reconnect resends the window
            try:
                writer.write(wire.frame(payload))
                await writer.drain()
            except (ConnectionError, OSError):
                pass  # the read loop notices the break and resends
        return await fut

    async def _faulty_send(
        self, writer: asyncio.StreamWriter, payload: bytes, faults: LinkFaults
    ) -> bool:
        """Apply the link's injected send faults; True = frame not sent.

        A dropped or truncated frame always *severs the connection* —
        the read loop then reconnects and resends the whole
        unacknowledged window, so the frame is delayed, never lost
        (silently skipping it would permanently desync the FIFO
        request/reply matching).  A mid-window partition acts like a
        drop and keeps refusing reconnects until its hit-window passes.
        Injected delay is charged to the plan's virtual clock; the only
        wall-clock cost is one event-loop yield.
        """
        verdict, delay = faults.send_fate()
        if delay:
            await asyncio.sleep(0)  # virtual delay: account, yield, move on
        if faults.partition is not None and faults.partitioned():
            writer.close()
            return True
        if verdict == "drop":
            writer.close()
            return True
        if verdict == "truncate":
            data = wire.frame(payload)
            try:
                writer.write(data[: max(1, len(data) // 2)])
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return True
        return False

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- handoff quiesce ------------------------------------------------------
    async def pause(self) -> None:
        """Stop accepting requests and wait for the window to drain."""
        self._gate.clear()
        await self._idle.wait()

    def resume(self) -> None:
        self._gate.set()

    # -- reply pump + reconnection --------------------------------------------
    async def _read_loop(self) -> None:
        while True:
            try:
                assert self._reader is not None
                head = await self._reader.readexactly(wire.HEADER.size)
                (length,) = wire.HEADER.unpack(head)
                if length == 0 or length > self.max_frame_bytes:
                    raise ConnectionError(
                        f"backend {self.label} sent an invalid frame length {length}"
                    )
                payload = await self._reader.readexactly(length)
            except asyncio.CancelledError:
                raise
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                if self._closing:
                    return
                if await self._reconnect():
                    self.reconnects += 1
                    continue
                self._writer = None
                self._fail_pending(
                    ConnectionError(f"backend {self.label} unreachable")
                )
                return  # a later redirect() revives the link
            if self._pending:
                _, fut = self._pending.popleft()
                if not fut.done():
                    fut.set_result(payload)
                if not self._pending:
                    self._idle.set()

    async def _reconnect(self) -> bool:
        self._writer = None
        deadline = monotonic() + self.reconnect_wait
        cap = 0.05
        while monotonic() < deadline:
            self._redirected.clear()
            try:
                await self._do_connect()
                return True
            except (ConnectionError, OSError, asyncio.TimeoutError):
                pass
            if self._closing:
                return False
            # exponential backoff with full jitter: uniform over the
            # doubling cap, so a fleet of links retrying the same dead
            # worker never thunders in lockstep
            delay = self._backoff_rng.uniform(0.0, cap)
            try:
                # a redirect retargets the address and retries at once
                await asyncio.wait_for(self._redirected.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass
            cap = min(cap * 2, 0.5)
        return False

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            _, fut = self._pending.popleft()
            if not fut.done():
                fut.set_exception(exc)
        self._idle.set()


class ShardRouter:
    """The consistent-hash front-end over N backend workers.

    Speaks both client protocols (the JSON-lines debug surface and the
    binary framing) with the single-process service's error taxonomy;
    always speaks binary to the backends.  ``handoff_callback`` (set by
    the fleet supervisor) serves the ``{"op": "handoff", "shard": k}``
    operation — the router itself only quiesces links; moving processes
    is the supervisor's job.
    """

    def __init__(
        self,
        backends: Sequence[tuple[str, int]],
        *,
        tenants: int = 0,
        replicas: int = DEFAULT_REPLICAS,
        quiet: bool = True,
        max_line_bytes: int = DEFAULT_MAX_LINE_BYTES,
        request_timeout: float = 30.0,
        reconnect_wait: float = 30.0,
        handoff_callback: Optional[Callable[[int], Awaitable[Optional[dict]]]] = None,
        degraded: str = "failfast",
        breaker_window: int = 20,
        breaker_min_volume: int = 5,
        breaker_threshold: float = 0.5,
        breaker_cooldown: float = 1.0,
        breaker_probes: int = 1,
        fault_injector: Optional[FaultInjector] = None,
    ):
        if not backends:
            raise ValueError("router needs at least one backend")
        if degraded not in ("failfast", "queue"):
            raise ValueError(
                f"degraded policy must be 'failfast' or 'queue', got {degraded!r}"
            )
        self.tenants = int(tenants)
        self.quiet = quiet
        self.max_line_bytes = int(max_line_bytes)
        self.request_timeout = request_timeout
        self.handoff_callback = handoff_callback
        self.degraded = degraded
        self.links = [
            BackendLink(
                host, port, label=f"shard-{i}@{host}:{port}",
                reconnect_wait=reconnect_wait, max_frame_bytes=max_line_bytes,
                faults=(
                    fault_injector.link(f"backend-{i}")
                    if fault_injector is not None else None
                ),
            )
            for i, (host, port) in enumerate(backends)
        ]
        self.breakers = [
            CircuitBreaker(
                window=breaker_window,
                min_volume=breaker_min_volume,
                threshold=breaker_threshold,
                cooldown=breaker_cooldown,
                probes=breaker_probes,
            )
            for _ in self.links
        ]
        self.ring = HashRing(len(self.links), replicas)
        self.requests_served = 0
        #: job ops forwarded per shard (the loadgen imbalance report)
        self.requests_routed = [0] * len(self.links)
        #: forwards refused/overrun against the deadline budget, per shard
        self.deadline_exceeded = [0] * len(self.links)
        #: requests refused by an open breaker, per shard
        self.breaker_rejected = [0] * len(self.links)
        #: supervisor health probes that timed out, per shard (the fleet
        #: prober reports into the router so one exposition carries all
        #: resilience signals)
        self.probe_failures = [0] * len(self.links)
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    @property
    def num_shards(self) -> int:
        return len(self.links)

    def shard_of(self, item_id: int) -> int:
        return self.ring.node_for_key(route_key(item_id, self.tenants))

    # -- lifecycle ------------------------------------------------------------
    async def connect(self) -> None:
        await asyncio.gather(*(link.connect() for link in self.links))

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        self._server = await asyncio.start_server(
            self._handle, host, port, limit=self.max_line_bytes
        )
        bound = self._server.sockets[0].getsockname()[1]
        if not self.quiet:
            print(
                f"repro router listening on {host}:{bound} "
                f"({self.num_shards} shards, tenants={self.tenants or 'raw ids'})"
            )
        return bound

    async def wait_closed(self) -> None:
        await self._shutdown.wait()
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        for link in self.links:
            await link.close()

    async def serve_until_shutdown(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        await self.connect()
        await self.start(host, port)
        await self.wait_closed()
        return 0

    def shutdown(self) -> None:
        self._shutdown.set()

    # -- shard plumbing for the supervisor ------------------------------------
    async def pause_shard(self, index: int) -> None:
        await self.links[index].pause()

    def resume_shard(self, index: int) -> None:
        self.links[index].resume()

    async def redirect_shard(self, index: int, host: str, port: int) -> None:
        await self.links[index].redirect(host, port)

    async def shard_control(self, index: int, request: dict) -> dict:
        """A pause-proof JSON op against one shard (handoff checkpoints)."""
        out = await self.links[index].control(wire.encode_json_request(request))
        return wire.decode_response(out)

    # -- front: JSON lines ----------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while not reader.at_eof():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._reply(writer, {
                        "ok": False,
                        "error": f"request line exceeds {self.max_line_bytes} bytes",
                        "error_type": "line_too_long",
                    })
                    break
                if not line:
                    break
                if not line.endswith(b"\n") and reader.at_eof():
                    break
                response = await self._dispatch_line(line)
                if not await self._reply(writer, response):
                    break
                if response.get("bye"):
                    self._shutdown.set()
                    break
                if response.get("ok") and response.get("protocol") == "binary":
                    await self._handle_binary(reader, writer)
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _reply(self, writer: asyncio.StreamWriter, response: dict) -> bool:
        return await self._write(writer, (json.dumps(response) + "\n").encode())

    async def _write(self, writer: asyncio.StreamWriter, data: bytes) -> bool:
        try:
            writer.write(data)
            await asyncio.wait_for(writer.drain(), self.request_timeout)
            return True
        except (ConnectionError, asyncio.TimeoutError, OSError):
            return False

    async def _dispatch_line(self, line: bytes) -> dict:
        self.requests_served += 1
        try:
            request = json.loads(line)
        except (ValueError, UnicodeDecodeError) as exc:
            return {
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }
        if not isinstance(request, dict):
            return {
                "ok": False,
                "error": f"request must be a JSON object, got {type(request).__name__}",
                "error_type": "protocol",
            }
        return await self._dispatch_safely(request)

    async def _dispatch_safely(self, request: dict) -> dict:
        budget_ms: Optional[float] = None
        raw_budget = request.get("deadline_ms")
        if raw_budget is not None:
            try:
                budget_ms = float(raw_budget)
            except (TypeError, ValueError):
                return {
                    "ok": False,
                    "error": f"deadline_ms must be a number, got {raw_budget!r}",
                    "error_type": "protocol",
                }
            if budget_ms <= 0:
                return {
                    "ok": False,
                    "error": (
                        f"deadline budget exhausted "
                        f"({budget_ms:.3f} ms remaining)"
                    ),
                    "error_type": "deadline_exceeded",
                }
        try:
            return await self._dispatch(request, budget_ms)
        except _ShardError as exc:
            return exc.doc
        except ProtocolError as exc:
            return {"ok": False, "error": str(exc), "error_type": "protocol"}
        except ConnectionError as exc:
            return self._error_doc(None, exc)
        except Exception as exc:  # protocol boundary: report, don't crash
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            }

    async def _dispatch(
        self, request: dict, budget_ms: Optional[float] = None
    ) -> dict:
        op = request.get("op")
        if op == "submit":
            job = request.get("job")
            key = job.get("id") if isinstance(job, dict) else None
            return await self._forward_json(
                self._shard_for_raw(key), request, budget_ms
            )
        if op == "depart":
            return await self._forward_json(
                self._shard_for_raw(request.get("id")), request, budget_ms
            )
        if op == "advance":
            docs = self._require_ok(await self._broadcast_json(request, budget_ms))
            return {
                "ok": True,
                "departed": sum(d.get("departed", 0) for d in docs),
                "clock": max(d.get("clock", 0.0) for d in docs),
            }
        if op == "drain":
            docs = self._require_ok(await self._broadcast_json(request, budget_ms))
            return {
                "ok": True,
                "bins": sum(d["bins"] for d in docs),
                "total_usage_time": sum(d["total_usage_time"] for d in docs),
                "algorithm": docs[0]["algorithm"],
                "shards": [
                    {"bins": d["bins"], "total_usage_time": d["total_usage_time"]}
                    for d in docs
                ],
            }
        if op == "stats":
            docs = await self._broadcast_json(request)
            shards = [d.get("stats", d) for d in docs]
            totals: dict = {}
            for field in ("open_bins", "bins_used", "placed", "active",
                          "queue_depth", "migrations", "defrag_runs",
                          "bins_evacuated"):
                values = [s.get(field) for s in shards]
                if all(isinstance(v, (int, float)) for v in values):
                    totals[field] = sum(values)
            return {"ok": True, "stats": {
                "router": {
                    "shards": self.num_shards,
                    "tenants": self.tenants,
                    "per_shard_requests": list(self.requests_routed),
                    "reconnects": [link.reconnects for link in self.links],
                    "breakers": [b.state for b in self.breakers],
                    "breaker_rejected": list(self.breaker_rejected),
                    "deadline_exceeded": list(self.deadline_exceeded),
                    "probe_failures": list(self.probe_failures),
                    "degraded": self.degraded,
                },
                "shards": shards,
                "totals": totals,
            }}
        if op == "metrics":
            docs = await self._broadcast_json(request)
            texts = [
                relabel_exposition(d["text"], {"shard": str(i)})
                for i, d in enumerate(docs)
                if d.get("ok") and "text" in d
            ]
            texts.append(self._own_exposition())
            if not texts:
                return self._require_ok(docs)[0]  # propagate the error
            return {"ok": True, "text": merge_expositions(texts)}
        if op == "checkpoint":
            docs = self._require_ok(await self._broadcast_json(request))
            return {"ok": True, "shards": docs}
        if op == "defrag":
            docs = self._require_ok(await self._broadcast_json(request))
            return {
                "ok": True,
                "moved": sum(d.get("moved", 0) for d in docs),
                "migrations": sum(d.get("migrations", 0) for d in docs),
                "shards": [d.get("moved", 0) for d in docs],
            }
        if op == "ping":
            return {"ok": True, "pong": True, "shards": self.num_shards}
        if op == "shutdown":
            await self._broadcast_json({"op": "shutdown"})
            return {"ok": True, "bye": True}
        if op == "handoff":
            if self.handoff_callback is None:
                raise ProtocolError("no fleet supervisor: handoff unavailable")
            shard = request.get("shard")
            if not isinstance(shard, int) or not 0 <= shard < self.num_shards:
                raise ProtocolError(
                    f"handoff needs a 'shard' in [0, {self.num_shards})"
                )
            detail = await self.handoff_callback(shard)
            out = {"ok": True, "shard": shard}
            if isinstance(detail, dict):
                out.update(detail)
            return out
        if op == "hello":
            proto = request.get("protocol", "json")
            if proto not in wire.PROTOCOLS:
                raise ProtocolError(
                    f"unknown protocol {proto!r}; known: {list(wire.PROTOCOLS)}"
                )
            version = request.get("version", wire.PROTOCOL_VERSION)
            if not isinstance(version, int):
                raise ProtocolError(
                    f"protocol version must be an integer, got {version!r}"
                )
            agreed = wire.negotiate_version(version)
            if agreed is None:
                raise ProtocolError(
                    f"unsupported protocol version {version!r} (this server "
                    f"speaks {wire.MIN_PROTOCOL_VERSION}.."
                    f"{wire.PROTOCOL_VERSION})"
                )
            return {"ok": True, "protocol": proto, "version": agreed}
        # anything else (including unknown ops): let shard 0 answer, so
        # the error taxonomy has exactly one source of truth
        return await self._forward_json(0, request)

    def _shard_for_raw(self, raw_id) -> int:
        """Routing for a client-supplied id that may be malformed.

        A bad id still goes to a real worker (shard 0) so the client
        gets the worker's own validation error, byte-identical to the
        single-process service's.
        """
        try:
            return self.shard_of(int(raw_id))
        except (TypeError, ValueError):
            return 0

    async def _forward_json(
        self, index: int, request: dict, budget_ms: Optional[float] = None
    ) -> dict:
        out = await self._forward(
            index, wire.encode_json_request(request), budget_ms
        )
        return wire.decode_response(out)

    async def _forward(
        self, index: int, payload, budget_ms: Optional[float] = None
    ) -> bytes:
        self.requests_routed[index] += 1
        return await self._call_shard(index, payload, budget_ms)

    async def _call_shard(
        self, index: int, payload, budget_ms: Optional[float] = None
    ) -> bytes:
        """The forwarding chokepoint: breaker, deadline, per-hop timeout.

        Every data-path forward lands here (the control lane —
        :meth:`shard_control` — deliberately does not: handoffs and
        health probes must reach a shard the breaker has written off).
        """
        breaker = self.breakers[index]
        if not breaker.allow():
            if self.degraded == "queue":
                budget_ms = await self._queue_for_breaker(index, budget_ms)
            else:
                self.breaker_rejected[index] += 1
                raise BreakerOpenError("circuit breaker open")
        link = self.links[index]
        send = payload
        timeout = self.request_timeout
        if budget_ms is not None:
            timeout = min(timeout, budget_ms / 1e3)
            if link.negotiated_version >= 2:
                # hand the worker its remaining budget so it can refuse
                # work nobody is waiting for any more
                if not isinstance(payload, bytes):
                    payload = bytes(payload)
                send = wire.wrap_deadline(payload, budget_ms)
        try:
            out = await asyncio.wait_for(link.request(send), timeout)
        except asyncio.TimeoutError:
            breaker.record_failure()
            # the cancelled request stays in the link's resend window —
            # the worker may still apply it, and with a request id the
            # retry dedups; the *client's* wait is what expired here
            if budget_ms is not None and budget_ms / 1e3 <= self.request_timeout:
                self.deadline_exceeded[index] += 1
                raise DeadlineExceededError(
                    f"no reply within the {budget_ms:.1f} ms deadline budget"
                ) from None
            raise ConnectionError(
                f"no reply within {self.request_timeout}s"
            ) from None
        except ConnectionError:
            breaker.record_failure()
            raise
        breaker.record_success()
        return out

    async def _queue_for_breaker(
        self, index: int, budget_ms: Optional[float]
    ) -> Optional[float]:
        """The ``queue`` degraded mode: park until the breaker admits us.

        Returns the caller's remaining deadline budget.  The wait is
        bounded by that budget (or ``request_timeout``); waiters poll
        :meth:`CircuitBreaker.allow` in slices so the first one past
        the cooldown becomes the half-open probe — pure event waiting
        would deadlock with every request parked and nobody probing.
        """
        breaker = self.breakers[index]
        wait = self.request_timeout
        if budget_ms is not None:
            wait = min(wait, budget_ms / 1e3)
        slice_s = max(0.01, min(0.05, breaker.cooldown / 4))
        started = monotonic()
        deadline = started + wait
        while True:
            if breaker.allow():
                break
            if monotonic() >= deadline:
                self.breaker_rejected[index] += 1
                raise BreakerOpenError(
                    f"circuit breaker open ({wait:.2f}s queue wait exhausted)"
                )
            try:
                await asyncio.wait_for(
                    breaker.wait_closed(),
                    min(slice_s, deadline - monotonic()),
                )
            except asyncio.TimeoutError:
                pass
        if budget_ms is None:
            return None
        remaining = budget_ms - (monotonic() - started) * 1e3
        if remaining <= 0:
            self.deadline_exceeded[index] += 1
            raise DeadlineExceededError(
                "deadline budget exhausted waiting for the circuit breaker"
            )
        return remaining

    async def _broadcast_json(
        self, request: dict, budget_ms: Optional[float] = None
    ) -> list[dict]:
        payload = wire.encode_json_request(request)

        async def one(index: int) -> bytes:
            return await self._call_shard(index, payload, budget_ms)

        outs = await asyncio.gather(
            *(one(i) for i in range(len(self.links))),
            return_exceptions=True,
        )
        docs: list[dict] = []
        for i, out in enumerate(outs):
            if isinstance(out, BaseException):
                docs.append(self._error_doc(i, out))
            else:
                docs.append(wire.decode_response(out))
        return docs

    def _error_doc(self, index: Optional[int], exc: BaseException) -> dict:
        """One forwarding failure as a client-facing error doc."""
        where = f"shard {index}: " if index is not None else ""
        if isinstance(exc, DeadlineExceededError):
            return {
                "ok": False,
                "error": f"{where}{exc}",
                "error_type": "deadline_exceeded",
            }
        doc = {
            "ok": False,
            "error": f"{where}{exc}",
            "error_type": "shard_unavailable",
        }
        if isinstance(exc, BreakerOpenError):
            doc["breaker"] = "open"
        return doc

    @staticmethod
    def _require_ok(docs: list[dict]) -> list[dict]:
        for doc in docs:
            if not doc.get("ok"):
                raise _ShardError(doc)
        return docs

    def _own_exposition(self) -> str:
        lines = [
            "# HELP repro_router_requests_total job ops routed to each shard",
            "# TYPE repro_router_requests_total counter",
        ]
        lines += [
            f'repro_router_requests_total{{shard="{i}"}} {n}'
            for i, n in enumerate(self.requests_routed)
        ]
        lines += [
            "# HELP repro_router_reconnects_total backend link reconnections",
            "# TYPE repro_router_reconnects_total counter",
        ]
        lines += [
            f'repro_router_reconnects_total{{shard="{i}"}} {link.reconnects}'
            for i, link in enumerate(self.links)
        ]
        lines += [
            "# HELP repro_router_breaker_state circuit state per shard "
            "(0=closed, 1=open, 2=half_open)",
            "# TYPE repro_router_breaker_state gauge",
        ]
        lines += [
            f'repro_router_breaker_state{{shard="{i}"}} {b.state_code}'
            for i, b in enumerate(self.breakers)
        ]
        lines += [
            "# HELP repro_router_breaker_transitions_total circuit state "
            "transitions per shard",
            "# TYPE repro_router_breaker_transitions_total counter",
        ]
        lines += [
            f'repro_router_breaker_transitions_total'
            f'{{shard="{i}",state="{state}"}} {n}'
            for i, b in enumerate(self.breakers)
            for state, n in sorted(b.transitions.items())
        ]
        lines += [
            "# HELP repro_router_breaker_rejected_total requests refused by "
            "an open circuit breaker",
            "# TYPE repro_router_breaker_rejected_total counter",
        ]
        lines += [
            f'repro_router_breaker_rejected_total{{shard="{i}"}} {n}'
            for i, n in enumerate(self.breaker_rejected)
        ]
        lines += [
            "# HELP repro_router_deadline_exceeded_total forwards that "
            "overran the request's deadline budget",
            "# TYPE repro_router_deadline_exceeded_total counter",
        ]
        lines += [
            f'repro_router_deadline_exceeded_total{{shard="{i}"}} {n}'
            for i, n in enumerate(self.deadline_exceeded)
        ]
        lines += [
            "# HELP repro_router_probe_failures_total supervisor health "
            "probes that timed out",
            "# TYPE repro_router_probe_failures_total counter",
        ]
        lines += [
            f'repro_router_probe_failures_total{{shard="{i}"}} {n}'
            for i, n in enumerate(self.probe_failures)
        ]
        return "\n".join(lines) + "\n"

    # -- front: binary frames -------------------------------------------------
    async def _handle_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        header_size = wire.HEADER.size
        unpack_header = wire.HEADER.unpack
        while True:
            try:
                head = await reader.readexactly(header_size)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            (length,) = unpack_header(head)
            if length == 0:
                self.requests_served += 1
                out = wire.encode_json_response({
                    "ok": False,
                    "error": "zero-length frame",
                    "error_type": "malformed_frame",
                })
                if not await self._write(writer, wire.frame(out)):
                    return
                continue
            if length > self.max_line_bytes:
                self.requests_served += 1
                out = wire.encode_json_response({
                    "ok": False,
                    "error": (
                        f"frame declares {length} bytes, "
                        f"limit is {self.max_line_bytes}"
                    ),
                    "error_type": "frame_too_long",
                })
                await self._write(writer, wire.frame(out))
                return
            try:
                payload = await asyncio.wait_for(
                    reader.readexactly(length), self.request_timeout
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError, OSError):
                return
            out, bye = await self._dispatch_frame(payload)
            if not await self._write(writer, wire.frame(out)):
                return
            if bye:
                self._shutdown.set()
                return

    async def _dispatch_frame(self, payload) -> tuple[bytes, bool]:
        try:
            payload, budget_ms = wire.unwrap_deadline(payload)
        except wire.FrameError as exc:
            self.requests_served += 1
            return wire.encode_json_response({
                "ok": False, "error": str(exc), "error_type": "malformed_frame",
            }), False
        if budget_ms is not None:
            if budget_ms <= 0:
                self.requests_served += 1
                return wire.encode_json_response({
                    "ok": False,
                    "error": (
                        f"deadline budget exhausted "
                        f"({budget_ms:.3f} ms remaining)"
                    ),
                    "error_type": "deadline_exceeded",
                }), False
            if not isinstance(payload, bytes):
                payload = bytes(payload)  # relay paths re-frame the payload
        op = payload[0]
        if op != wire.OP_JSON and self.num_shards == 1:
            # single-backend fast path: relay the frame verbatim — no
            # decode, no re-encode (the ≤15% 1-shard overhead budget)
            self.requests_served += 1
            self.requests_routed[0] += 1
            try:
                return await self._call_shard(0, payload, budget_ms), False
            except ConnectionError as exc:
                return self._unavailable(0, exc), False
        if op == wire.OP_SUBMIT or op == wire.OP_DEPART:
            self.requests_served += 1
            try:
                (item_id,) = _SUB_ID.unpack_from(payload, 2)
            except Exception:
                index = 0  # malformed: the worker owns the error message
            else:
                index = self.shard_of(item_id)
            try:
                return await self._forward(index, payload, budget_ms), False
            except ConnectionError as exc:
                return self._unavailable(index, exc), False
        if op == wire.OP_ADVANCE:
            self.requests_served += 1
            request: dict = {"op": "advance", "now": self._advance_now(payload)}
            if budget_ms is not None:
                request["deadline_ms"] = budget_ms
            response = await self._dispatch_safely(request)
            if response.get("ok"):
                return wire.encode_clock(
                    response["clock"], response["departed"]
                ), False
            return wire.encode_json_response(response), False
        if op == wire.OP_BATCH:
            return await self._dispatch_batch(payload, budget_ms)
        if op == wire.OP_JSON:
            return await self._dispatch_json_frame(payload, budget_ms)
        self.requests_served += 1
        return wire.encode_json_response({
            "ok": False,
            "error": f"unknown opcode 0x{op:02x}",
            "error_type": "protocol",
        }), False

    @staticmethod
    def _advance_now(payload: bytes):
        try:
            return wire.decode_advance(payload)
        except wire.FrameError:
            return None  # the JSON path reports "advance needs a 'now'"

    async def _dispatch_json_frame(
        self, payload: bytes, budget_ms: Optional[float] = None
    ) -> tuple[bytes, bool]:
        self.requests_served += 1
        try:
            request = json.loads(bytes(payload[1:]))
        except (ValueError, UnicodeDecodeError) as exc:
            return wire.encode_json_response({
                "ok": False,
                "error": f"malformed JSON: {exc}",
                "error_type": "malformed_json",
            }), False
        if not isinstance(request, dict):
            return wire.encode_json_response({
                "ok": False,
                "error": (
                    f"request must be a JSON object, got {type(request).__name__}"
                ),
                "error_type": "protocol",
            }), False
        if budget_ms is not None and "deadline_ms" not in request:
            # the frame wrapper's budget governs the inner request too
            request["deadline_ms"] = budget_ms
        op = request.get("op")
        if op in ("submit", "depart"):
            # single-shard JSON op: relay the original payload so the
            # worker's binary response (RESP_PLACEMENT/RESP_CLOCK)
            # reaches the client byte-identical to a direct connection
            if op == "submit":
                job = request.get("job")
                raw = job.get("id") if isinstance(job, dict) else None
            else:
                raw = request.get("id")
            index = self._shard_for_raw(raw)
            inner = request.get("deadline_ms")
            try:
                forward_budget = float(inner) if inner is not None else None
            except (TypeError, ValueError):
                forward_budget = None  # the worker reports the bad field
            try:
                return await self._forward(index, payload, forward_budget), False
            except ConnectionError as exc:
                return self._unavailable(index, exc), False
        response = await self._dispatch_safely(request)
        return self._encode_response(response), bool(response.get("bye"))

    async def _dispatch_batch(
        self, payload: bytes, budget_ms: Optional[float] = None
    ) -> tuple[bytes, bool]:
        try:
            subs = wire.split_batch(payload)
        except wire.FrameError as exc:
            self.requests_served += 1
            return wire.encode_json_response({
                "ok": False, "error": str(exc), "error_type": "malformed_frame",
            }), False
        self.requests_served += len(subs)
        if all(sub[0] == wire.OP_SUBMIT or sub[0] == wire.OP_DEPART
               for sub in subs):
            return await self._route_job_batch(payload, subs, budget_ms), False
        # a mixed batch (advance/JSON riding along): strictly sequential
        # per-sub dispatch, preserving the client's op order globally
        parts: list[bytes] = []
        bye = False
        for sub in subs:
            self.requests_served -= 1  # _dispatch_frame counts it again
            sub_payload = bytes(sub)
            if budget_ms is not None:
                # the batch budget governs every sub-op
                sub_payload = wire.wrap_deadline(sub_payload, budget_ms)
            out, sub_bye = await self._dispatch_frame(sub_payload)
            bye = bye or sub_bye
            parts.append(out)
        return wire.encode_batch(parts), bye

    async def _route_job_batch(
        self, payload: bytes, subs, budget_ms: Optional[float] = None
    ) -> bytes:
        """An all-job batch: split per shard, fan out, reassemble."""
        groups: dict[int, list[int]] = {}
        order: list[int] = []  # shard of each sub, in client order
        for sub in subs:
            try:
                (item_id,) = _SUB_ID.unpack_from(sub, 2)
                index = self.shard_of(item_id)
            except Exception:
                index = 0
            if index not in groups:
                groups[index] = []
            groups[index].append(len(order))
            order.append(index)
        if len(groups) == 1:
            index = next(iter(groups))
            self.requests_routed[index] += len(subs)
            try:
                return await self._call_shard(index, payload, budget_ms)
            except ConnectionError as exc:
                return wire.encode_batch(
                    [self._unavailable(index, exc)] * len(subs)
                )
        indices = list(groups)

        async def one(index: int) -> "bytes | Exception":
            sub_payload = wire.encode_batch(
                [bytes(subs[i]) for i in groups[index]]
            )
            self.requests_routed[index] += len(groups[index])
            try:
                return await self._call_shard(index, sub_payload, budget_ms)
            except ConnectionError as exc:
                return exc

        replies = await asyncio.gather(*(one(i) for i in indices))
        parts: list[Optional[bytes]] = [None] * len(subs)
        for index, reply in zip(indices, replies):
            positions = groups[index]
            if isinstance(reply, Exception):
                err = self._unavailable(index, reply)
                for pos in positions:
                    parts[pos] = err
                continue
            try:
                sub_replies = wire.split_batch(reply)
            except wire.FrameError as exc:
                err = wire.encode_json_response({
                    "ok": False,
                    "error": f"shard {index} sent a malformed batch: {exc}",
                    "error_type": "internal",
                })
                sub_replies = None
            if sub_replies is None or len(sub_replies) != len(positions):
                if sub_replies is not None:
                    err = wire.encode_json_response({
                        "ok": False,
                        "error": (
                            f"shard {index} answered {len(sub_replies)} of "
                            f"{len(positions)} batch ops"
                        ),
                        "error_type": "internal",
                    })
                for pos in positions:
                    parts[pos] = err
                continue
            for pos, sub_reply in zip(positions, sub_replies):
                parts[pos] = bytes(sub_reply)
        return wire.encode_batch(parts)  # type: ignore[arg-type]

    def _unavailable(self, index: int, exc: Exception) -> bytes:
        return wire.encode_json_response(self._error_doc(index, exc))

    def _encode_response(self, response: dict) -> bytes:
        """A router-composed dict in the binary response scheme."""
        if response.get("ok") and "clock" in response and "departed" in response:
            return wire.encode_clock(response["clock"], response["departed"])
        return wire.encode_json_response(response)


class _ShardError(Exception):
    """Carries a shard's error dict up through an aggregation."""

    def __init__(self, doc: dict):
        super().__init__(doc.get("error", "shard error"))
        self.doc = doc
