"""A durable write-ahead log for the allocation service.

The paper's setting is irreversibly online: a server allocator that
loses its open-bin state on a crash cannot re-pack the past — usage
time is already billed, jobs already live on servers.  Checkpoints
(:mod:`repro.service.snapshot`) bound the loss to one interval; the WAL
closes the remaining window by appending every accepted operation
*before* it is applied, so crash recovery (:mod:`repro.service.recovery`)
can replay the tail and land bit-identical to an uninterrupted run.

On-disk layout (one directory, shared with the checkpoints):

``wal-<first_seq:010d>.log``
    One segment per file, named by the sequence number of its first
    record.  Rotation at :attr:`~WriteAheadLog.segment_bytes` keeps
    segments prunable: once a checkpoint covers a whole segment the
    file is deleted (:meth:`WriteAheadLog.prune`).

Each record is one line::

    <seq> <crc32 of "seq payload", 8 hex digits> <payload JSON>\n

The CRC detects torn writes and bit rot; the sequence number makes
replay idempotent against a checkpoint (records ``<= wal_seq`` of the
checkpoint are skipped).  A *torn tail* — a partial final record from a
crash mid-write — is expected and tolerated: replay stops at the first
undecodable record of the **last** segment, and reopening the log for
append truncates the torn bytes.  An undecodable record anywhere else
is real corruption and raises :class:`WalCorruptionError` — recovery
must not silently skip acknowledged operations.

Durability knobs (``fsync`` policy):

``"always"``
    ``fsync`` after every append — no acknowledged record can be lost,
    at the cost of one disk flush per request.
``"interval"``
    ``fsync`` every :attr:`~WriteAheadLog.fsync_every` appends (and on
    rotation/close) — bounds power-failure loss to the last interval.
    The flush itself runs on a *background thread* (the classic group
    -commit arrangement, e.g. Redis ``appendfsync everysec``): appends
    push bytes into the OS page cache and return, and the disk barrier
    proceeds in parallel, so the request path never waits on the
    platter.  The default.
``"never"``
    Leave flushing to the OS page cache — fastest, loses up to the
    cache window on power failure (still crash-safe against *process*
    death, since the file descriptor's writes survive).
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional

__all__ = [
    "FSYNC_MODES",
    "MANIFEST_NAME",
    "WalCorruptionError",
    "WalError",
    "WalRecord",
    "WriteAheadLog",
    "read_manifest",
    "read_segment",
    "replay_wal",
    "verify_wal_dir",
    "wal_segments",
    "write_manifest",
]

FSYNC_MODES = ("never", "interval", "always")

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"

#: The WAL directory's identity card.  Written once when a shard first
#: claims the directory; recovery refuses to replay a log whose manifest
#: names a different shard or engine config (see
#: :func:`repro.service.recovery.recover` and ``repro.service.shard``).
#: Deliberately *outside* the WAL/checkpoint byte streams so that shard
#: identity never leaks into replayable state.
MANIFEST_NAME = "MANIFEST"

#: Default rotation threshold.  Segments are the unit of pruning, so
#: they should be small enough that a checkpoint usually retires a few.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


def read_manifest(directory: str) -> Optional[dict]:
    """Load the directory's MANIFEST, or ``None`` when it has none."""
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return None
    except ValueError as exc:
        raise WalError(f"unreadable manifest {path}: {exc}") from None
    if not isinstance(doc, dict):
        raise WalError(f"manifest {path} is not a JSON object")
    return doc


def write_manifest(directory: str, doc: dict) -> str:
    """Write the directory's MANIFEST atomically (tmp + ``os.replace``)."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(doc, f, sort_keys=True, separators=(",", ":"))
        f.write("\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)
    return path


class WalError(Exception):
    """Base class for WAL failures."""


class WalCorruptionError(WalError):
    """An undecodable record *before* the tail — acknowledged data is gone."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    payload: dict[str, Any]


def _encode(seq: int, payload: "dict[str, Any] | str") -> bytes:
    """Encode one record line; ``payload`` may be pre-serialized JSON.

    The pre-serialized form is the hot-path contract with the durable
    engine: its submit path formats the payload with an f-string (2-3x
    faster than ``json.dumps`` for these small fixed-shape objects), and
    the CRC covers whatever text was actually written.
    """
    body = (
        payload
        if isinstance(payload, str)
        else json.dumps(payload, sort_keys=True, separators=(",", ":"))
    )
    encoded = body.encode()
    crc = zlib.crc32(b"%d " % seq)
    crc = zlib.crc32(encoded, crc)
    return b"%d %08x %s\n" % (seq, crc, encoded)


def _decode(line: bytes) -> WalRecord:
    """Decode one record line; raises ``ValueError`` on any defect."""
    if not line.endswith(b"\n"):
        raise ValueError("record line is not newline-terminated (torn write)")
    text = line[:-1].decode("utf-8")
    seq_text, crc_text, body = text.split(" ", 2)
    seq = int(seq_text)
    if f"{zlib.crc32(f'{seq} {body}'.encode()):08x}" != crc_text:
        raise ValueError(f"CRC mismatch on record {seq}")
    payload = json.loads(body)
    if not isinstance(payload, dict):
        raise ValueError(f"record {seq} payload is not an object")
    return WalRecord(seq, payload)


def _segment_path(directory: str, first_seq: int) -> str:
    return os.path.join(
        directory, f"{SEGMENT_PREFIX}{first_seq:010d}{SEGMENT_SUFFIX}"
    )


def wal_segments(directory: str) -> list[str]:
    """Paths of the WAL segments under ``directory``, in sequence order."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return [
        os.path.join(directory, name)
        for name in sorted(names)
        if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)
    ]


def read_segment(path: str, *, tolerate_tail: bool = False) -> tuple[list[WalRecord], int]:
    """Decode one segment file.

    Returns ``(records, valid_bytes)`` where ``valid_bytes`` is the file
    offset up to which records decoded cleanly.  With ``tolerate_tail``
    a trailing undecodable region is accepted (the torn-write case);
    without it any defect raises :class:`WalCorruptionError`.
    """
    records: list[WalRecord] = []
    valid = 0
    with open(path, "rb") as f:
        data = f.read()
    offset = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        chunk = data[offset:] if end < 0 else data[offset : end + 1]
        try:
            records.append(_decode(chunk))
        except (ValueError, UnicodeDecodeError) as exc:
            if tolerate_tail:
                return records, valid
            raise WalCorruptionError(
                f"{os.path.basename(path)} at byte {offset}: {exc}"
            ) from exc
        offset += len(chunk)
        valid = offset
    return records, valid


def replay_wal(
    directory: str, after_seq: int = 0
) -> tuple[list[WalRecord], int]:
    """All records with ``seq > after_seq``, in order.

    Returns ``(records, torn_bytes)``.  Only the *last* segment may end
    in a torn tail (``torn_bytes`` counts the discarded bytes); a defect
    in any earlier segment raises :class:`WalCorruptionError`, as does a
    gap in the sequence numbers.
    """
    segments = wal_segments(directory)
    out: list[WalRecord] = []
    torn = 0
    last_seq: Optional[int] = None
    for i, path in enumerate(segments):
        tail = i == len(segments) - 1
        records, valid = read_segment(path, tolerate_tail=tail)
        if tail:
            torn = os.path.getsize(path) - valid
        for rec in records:
            if last_seq is not None and rec.seq != last_seq + 1:
                raise WalCorruptionError(
                    f"sequence gap: record {rec.seq} follows {last_seq} "
                    f"in {os.path.basename(path)}"
                )
            last_seq = rec.seq
            if rec.seq > after_seq:
                out.append(rec)
    return out, torn


def verify_wal_dir(directory: str) -> dict:
    """Offline integrity scan of a WAL directory — no engine required.

    Audits everything recovery would rely on, without booting anything:

    - every segment record's CRC and newline termination (a torn tail
      on the **last** segment is reported, not flagged — recovery
      truncates it by design; torn bytes anywhere else are corruption);
    - sequence continuity across the whole log (gaps mean acknowledged
      operations are gone);
    - each checkpoint file parses and passes the schema-version gate;
    - the newest loadable checkpoint is actually covered by the log
      (the first surviving record must not start past ``wal_seq + 1``);
    - the MANIFEST, when present, is well-formed and its recorded
      ``fingerprint`` matches a recomputation over its ``engine``
      config (bit rot in the identity card would otherwise surface as
      a confusing refusal at the next boot).

    Returns a JSON-ready report dict; ``report["ok"]`` is the CLI's
    exit status (``repro wal verify`` maps it to rc 0/1).  Every
    problem found is a line in ``report["errors"]``.
    """
    report: dict[str, Any] = {
        "directory": directory,
        "ok": True,
        "segments": [],
        "records": 0,
        "first_seq": None,
        "last_seq": None,
        "torn_tail_bytes": 0,
        "checkpoints": [],
        "manifest": None,
        "errors": [],
    }

    def problem(text: str) -> None:
        report["ok"] = False
        report["errors"].append(text)

    if not os.path.isdir(directory):
        problem(f"{directory} is not a directory")
        return report

    # -- segments: CRCs, torn tails, sequence continuity ---------------------
    segments = wal_segments(directory)
    last_seq: Optional[int] = None
    for i, path in enumerate(segments):
        tail = i == len(segments) - 1
        name = os.path.basename(path)
        entry: dict[str, Any] = {
            "file": name,
            "records": 0,
            "first_seq": None,
            "last_seq": None,
            "torn_bytes": 0,
        }
        report["segments"].append(entry)
        with open(path, "rb") as f:
            data = f.read()
        # decode every line independently (read_segment stops at the
        # first defect; an audit wants the whole picture) so a CRC-bad
        # record *between* intact ones is distinguishable from a
        # genuinely torn tail
        decoded: list[tuple[int, WalRecord]] = []
        first_bad: Optional[int] = None
        first_bad_error = ""
        offset = 0
        while offset < len(data):
            end = data.find(b"\n", offset)
            chunk = data[offset:] if end < 0 else data[offset : end + 1]
            try:
                decoded.append((offset, _decode(chunk)))
            except (ValueError, UnicodeDecodeError) as exc:
                if first_bad is None:
                    first_bad = offset
                    first_bad_error = str(exc)
            offset += len(chunk)
        intact_after_bad = first_bad is not None and any(
            off > first_bad for off, _ in decoded
        )
        if first_bad is not None:
            if tail and not intact_after_bad:
                # undecodable suffix of the last segment: the torn-write
                # crash window recovery truncates by design
                entry["torn_bytes"] = len(data) - first_bad
                report["torn_tail_bytes"] = entry["torn_bytes"]
            else:
                problem(
                    f"{name} at byte {first_bad}: {first_bad_error}"
                    + (
                        " — intact records follow, so this is mid-log "
                        "corruption, not a torn tail"
                        if intact_after_bad
                        else ""
                    )
                )
        # account what recovery would actually replay: records up to
        # the first defect
        records = [
            rec
            for off, rec in decoded
            if first_bad is None or off < first_bad
        ]
        entry["records"] = len(records)
        if records:
            entry["first_seq"] = records[0].seq
            entry["last_seq"] = records[-1].seq
            if report["first_seq"] is None:
                report["first_seq"] = records[0].seq
            report["last_seq"] = records[-1].seq
            report["records"] += len(records)
        # a segment's filename promises its first record's sequence
        expected_first = int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])
        if records and records[0].seq != expected_first:
            problem(
                f"{name} starts at seq {records[0].seq}, "
                f"its name promises {expected_first}"
            )
        for rec in records:
            if last_seq is not None and rec.seq != last_seq + 1:
                problem(
                    f"sequence gap: record {rec.seq} follows {last_seq} "
                    f"in {name}"
                )
            last_seq = rec.seq

    # -- checkpoints: parseable, version-gated, covered by the log -----------
    from .snapshot import check_version  # deferred: snapshot imports engine

    newest_good_seq: Optional[int] = None
    checkpoint_names = sorted(
        n
        for n in os.listdir(directory)
        if n.startswith("checkpoint-") and n.endswith(".json")
    )
    for name in checkpoint_names:
        path = os.path.join(directory, name)
        entry = {"file": name, "ok": False, "wal_seq": None}
        report["checkpoints"].append(entry)
        try:
            with open(path) as f:
                doc = json.load(f)
            if not isinstance(doc, dict):
                raise ValueError("checkpoint is not a JSON object")
            check_version(doc.get("version"))
            entry["wal_seq"] = int(doc["wal_seq"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            problem(f"unreadable checkpoint {name}: {exc}")
            continue
        entry["ok"] = True
        newest_good_seq = entry["wal_seq"]
    if (
        newest_good_seq is not None
        and report["first_seq"] is not None
        and report["first_seq"] > newest_good_seq + 1
    ):
        problem(
            f"log coverage gap: first surviving record is seq "
            f"{report['first_seq']} but the newest loadable checkpoint "
            f"only covers through seq {newest_good_seq}"
        )

    # -- MANIFEST: well-formed, fingerprint self-consistent ------------------
    try:
        manifest = read_manifest(directory)
    except WalError as exc:
        problem(str(exc))
        manifest = None
    if manifest is not None:
        entry = {"present": True, "fingerprint_ok": None}
        report["manifest"] = entry
        recorded = manifest.get("fingerprint")
        config = manifest.get("engine")
        if recorded is not None and isinstance(config, dict):
            from .snapshot import config_fingerprint

            entry["fingerprint_ok"] = config_fingerprint(config) == recorded
            if not entry["fingerprint_ok"]:
                problem(
                    f"MANIFEST fingerprint {recorded!r} does not match its "
                    f"own engine config (recomputed "
                    f"{config_fingerprint(config)!r})"
                )
    elif report["manifest"] is None:
        report["manifest"] = {"present": False, "fingerprint_ok": None}
    return report


class WriteAheadLog:
    """Append-only, CRC-checksummed, segment-rotated operation log.

    ``io_hook`` is the fault-injection seam: called as
    ``io_hook(op, seq)`` with ``op`` in ``("write", "fsync")`` before
    the matching I/O.  It may raise (an injected ``OSError`` leaves the
    record unwritten and the log usable), raise a kill exception, or
    return ``"tear"`` to make this *write* torn — the record's first
    half hits the disk and the kill propagates, which is exactly the
    crash window recovery must survive.
    """

    def __init__(
        self,
        directory: str,
        *,
        fsync: str = "interval",
        fsync_every: int = 512,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        io_hook: Optional[Callable[[str, int], Optional[str]]] = None,
    ):
        if fsync not in FSYNC_MODES:
            raise ValueError(
                f"fsync mode must be one of {FSYNC_MODES}, got {fsync!r}"
            )
        if fsync_every < 1:
            raise ValueError(f"fsync_every must be >= 1, got {fsync_every}")
        if segment_bytes < 1:
            raise ValueError(f"segment_bytes must be >= 1, got {segment_bytes}")
        self.directory = directory
        self.fsync = fsync
        self.fsync_every = int(fsync_every)
        self.segment_bytes = int(segment_bytes)
        self.io_hook = io_hook
        # observability (mirrored into the metrics registry by the
        # durable engine)
        self.records_written = 0
        self.fsyncs = 0
        self.bytes_written = 0
        #: torn bytes truncated from the tail when the log was reopened
        self.recovered_torn_bytes = 0

        os.makedirs(directory, exist_ok=True)
        self._file = None
        self._segment_size = 0
        self._unsynced = 0
        self.last_seq = 0
        # background group-commit machinery ("interval" mode): the lock
        # covers the (file object, fsync) pair — the flusher must never
        # fsync a descriptor the writer is rotating or closing
        self._fd_lock = threading.Lock()
        self._fsync_due = threading.Event()
        self._stopping = False
        self._flusher: Optional[threading.Thread] = None
        self._open_tail()

    # -- opening / rotation ---------------------------------------------------
    def _open_tail(self) -> None:
        """Resume the existing log: truncate a torn tail, continue appending."""
        segments = wal_segments(self.directory)
        for i, path in enumerate(segments):
            tail = i == len(segments) - 1
            records, valid = read_segment(path, tolerate_tail=tail)
            if records:
                self.last_seq = records[-1].seq
            if tail and valid < os.path.getsize(path):
                self.recovered_torn_bytes = os.path.getsize(path) - valid
                with open(path, "r+b") as f:
                    f.truncate(valid)
        if segments:
            # unbuffered: each append is one raw write straight into the
            # OS page cache — no userspace buffer to flush or lose
            self._file = open(segments[-1], "ab", buffering=0)
            self._segment_size = os.path.getsize(segments[-1])
        else:
            self._start_segment(1)

    def _start_segment(self, first_seq: int) -> None:
        with self._fd_lock:
            if self._file is not None:
                self._flush(force=self.fsync != "never")
                self._file.close()
            self._file = open(
                _segment_path(self.directory, first_seq), "ab", buffering=0
            )
            self._segment_size = 0

    # -- the write path -------------------------------------------------------
    def append(self, payload: "dict[str, Any] | str") -> int:
        """Durably record one operation; returns its sequence number.

        ``payload`` is a JSON object, either as a dict or pre-serialized
        text (the hot-path form — see :func:`_encode`).  The record is
        on disk (subject to the fsync policy) when this returns.  On an
        injected/real ``OSError`` nothing is logged and the caller must
        *not* apply the operation.
        """
        if self._file is None:
            raise WalError("write-ahead log is closed")
        seq = self.last_seq + 1
        data = _encode(seq, payload)
        if self._segment_size > 0 and self._segment_size + len(data) > self.segment_bytes:
            self._start_segment(seq)
        if self.io_hook is not None:
            if self.io_hook("write", seq) == "tear":
                # simulate a crash mid-write: half the record reaches
                # the disk, then the process dies (the hook's kill
                # fires below)
                self._file.write(data[: max(1, len(data) // 2)])
                self.io_hook("torn", seq)
                raise WalError(f"torn write injected at record {seq}")
        self._file.write(data)
        self.last_seq = seq
        self.records_written += 1
        self.bytes_written += len(data)
        self._segment_size += len(data)
        self._unsynced += 1
        if self.fsync == "always":
            self._flush(force=True)
        elif self.fsync == "interval" and self._unsynced >= self.fsync_every:
            if self._flusher is None:
                # started lazily: a log that never accumulates an
                # interval's worth of records never needs the thread
                self._flusher = threading.Thread(
                    target=self._flusher_loop, name="wal-fsync", daemon=True
                )
                self._flusher.start()
            self._fsync_due.set()
        return seq

    def append_many(self, payloads) -> list[int]:
        """Durably record a batch of operations; returns their sequences.

        One pipelined client batch becomes **one write and one fsync
        window**: the records are encoded, written with a single
        ``write`` call, and the durability policy is consulted once for
        the whole batch — under ``fsync="always"`` that is one barrier
        instead of ``len(payloads)``, which is the group-commit payoff.
        The record bytes on disk are identical to the same payloads
        appended one at a time (rotation happens on batch boundaries
        rather than mid-batch, so only segment *placement* can differ).

        Fault semantics (the ``io_hook`` seam): every injected fault is
        resolved *before* any byte is written, so an injected ``OSError``
        refuses the batch atomically — nothing is logged, the caller
        must not apply any of it.  A ``"tear"`` at record *k* writes
        records ``0..k-1`` whole plus half of record *k* and then dies,
        exactly the crash window a torn single append leaves behind.
        """
        if self._file is None:
            raise WalError("write-ahead log is closed")
        if not payloads:
            return []
        first = self.last_seq + 1
        blobs = [_encode(first + i, payload) for i, payload in enumerate(payloads)]
        total = sum(len(b) for b in blobs)
        if self._segment_size > 0 and self._segment_size + total > self.segment_bytes:
            self._start_segment(first)
        if self.io_hook is not None:
            tear_at = None
            for i in range(len(blobs)):
                if self.io_hook("write", first + i) == "tear":
                    tear_at = i
                    break
            if tear_at is not None:
                torn = blobs[tear_at]
                self._file.write(
                    b"".join(blobs[:tear_at]) + torn[: max(1, len(torn) // 2)]
                )
                self.io_hook("torn", first + tear_at)
                raise WalError(f"torn write injected at record {first + tear_at}")
        data = b"".join(blobs)
        self._file.write(data)
        self.last_seq = first + len(blobs) - 1
        self.records_written += len(blobs)
        self.bytes_written += len(data)
        self._segment_size += len(data)
        self._unsynced += len(blobs)
        if self.fsync == "always":
            self._flush(force=True)
        elif self.fsync == "interval" and self._unsynced >= self.fsync_every:
            if self._flusher is None:
                self._flusher = threading.Thread(
                    target=self._flusher_loop, name="wal-fsync", daemon=True
                )
                self._flusher.start()
            self._fsync_due.set()
        return list(range(first, self.last_seq + 1))

    def _flush(self, force: bool) -> None:
        assert self._file is not None
        if force:
            if self.io_hook is not None:
                self.io_hook("fsync", self.last_seq)
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self._unsynced = 0

    def _flusher_loop(self) -> None:
        """Background group commit: fsync when an interval's worth is due.

        Runs ``os.fsync`` off the request path (the GIL is released for
        the syscall's duration, so appends proceed in parallel).  The
        fault-injection ``io_hook`` is *not* consulted here — injected
        I/O faults stay on the deterministic synchronous paths.
        """
        while True:
            self._fsync_due.wait()
            self._fsync_due.clear()
            if self._stopping:
                return
            with self._fd_lock:
                if self._stopping or self._file is None:
                    return
                covered = self._unsynced
                try:
                    os.fsync(self._file.fileno())
                except (OSError, ValueError):  # pragma: no cover - racing close
                    continue
                self.fsyncs += 1
                self._unsynced = max(0, self._unsynced - covered)

    def sync(self) -> None:
        """Force a synchronous fsync regardless of policy (checkpoint barrier)."""
        with self._fd_lock:
            if self._file is not None:
                self._flush(force=True)

    # -- maintenance ----------------------------------------------------------
    def prune(self, upto_seq: int) -> int:
        """Delete whole segments entirely covered by ``upto_seq``.

        A segment is removable when the *next* segment starts at or
        below ``upto_seq + 1`` — i.e. every record in it is already
        captured by a checkpoint.  Returns the number of files removed.
        """
        segments = wal_segments(self.directory)
        removed = 0
        for path, nxt in zip(segments, segments[1:]):
            name = os.path.basename(nxt)
            first_of_next = int(name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])
            if first_of_next <= upto_seq + 1:
                os.remove(path)
                removed += 1
            else:
                break
        return removed

    def close(self) -> None:
        self._stopping = True
        if self._flusher is not None:
            self._fsync_due.set()
            self._flusher.join(timeout=5.0)
            self._flusher = None
        with self._fd_lock:
            if self._file is not None:
                self._flush(force=self.fsync != "never")
                self._file.close()
                self._file = None
