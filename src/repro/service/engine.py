"""The streaming allocation engine — the push-based core of the service.

Every batch engine in the repository consumes a fully materialised
instance; the paper's setting is a *stream*: jobs arrive one at a time
with unknown departures and must be placed immediately (Section I).
:class:`StreamingEngine` is that missing layer.  It exposes a push API —

- :meth:`submit` — place one arriving job *now*, through admission
  control, and (by default) schedule its departure;
- :meth:`depart` — process an explicit departure (the live-operation
  path, where departures are only known when they happen);
- :meth:`advance` — move the service clock forward, applying every
  scheduled departure on the way and retrying queued jobs as capacity
  frees up;
- :meth:`finish` — drain the stream and return the same result object
  the batch engines produce.

It is layered on the unified driver's incremental stepper
(:class:`~repro.core.driver.EventStepper`) over the same packing states
the batch engines use, so replaying any trace through the stream path
is **bit-identical** to :func:`~repro.core.packing.run_packing` /
:func:`~repro.multidim.packing.run_vector_packing` — same placements,
same usage time, on the indexed and reference paths alike (pinned by
``tests/service/test_stream_differential.py`` on the frozen corpora).

Ordering semantics match the batch driver exactly: events apply in time
order, departures before arrivals at equal times (half-open intervals),
ties within a kind in submission order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..core.driver import EventStepper, Observer
from ..core.items import Item, ItemList
from ..core.result import PackingResult
from ..core.state import PackingState
from .admission import ADMIT, QUEUE, AdmissionPolicy, AdmitAll
from .metrics import (
    DEFAULT_LEVEL_BUCKETS,
    DEFAULT_WAIT_BUCKETS,
    DecisionLog,
    MetricsRegistry,
)

__all__ = ["Placement", "StreamingEngine"]

#: Placement actions, as they appear in responses and the decision log.
PLACED = "placed"
REJECTED = "rejected"
QUEUED = "queued"
SHED = "shed"
EXPIRED = "expired"


@dataclass(frozen=True)
class Placement:
    """The service's answer to one submitted job."""

    item_id: int
    action: str  # placed | rejected | queued | shed
    bin_index: Optional[int]  # set iff action == "placed"
    new_bin: bool
    time: float

    @property
    def accepted(self) -> bool:
        return self.action in (PLACED, QUEUED)

    def to_dict(self) -> dict:
        return {
            "item_id": self.item_id,
            "action": self.action,
            "bin": self.bin_index,
            "new_bin": self.new_bin,
            "time": self.time,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "Placement":
        """Inverse of :meth:`to_dict` (used by the idempotency cache)."""
        return cls(
            item_id=doc["item_id"],
            action=doc["action"],
            bin_index=doc["bin"],
            new_bin=doc["new_bin"],
            time=doc["time"],
        )


class StreamingEngine:
    """Push-based online packing over the unified driver state machinery.

    Use the :meth:`scalar` / :meth:`vector` factories unless you are
    wiring a custom state.  The engine owns the event ordering that the
    batch driver gets from sorting: the service clock never moves
    backwards, and scheduled departures are applied before any arrival
    at the same instant.

    >>> from repro.algorithms import FirstFit
    >>> from repro.core.items import Item
    >>> eng = StreamingEngine.scalar(FirstFit())
    >>> eng.submit(Item(1, 0.4, 0.0, 2.0)).action
    'placed'
    >>> eng.submit(Item(2, 0.5, 1.0, 3.0)).bin_index
    0
    >>> eng.finish().num_bins
    1
    """

    def __init__(
        self,
        algorithm,
        state,
        *,
        hook_base: type | None = None,
        admission: Optional[AdmissionPolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        decision_log: Optional[DecisionLog] = None,
        observers: Sequence[Observer] = (),
        result_factory: Optional[Callable] = None,
    ):
        self.algorithm = algorithm
        self.state = state
        self.admission = admission if admission is not None else AdmitAll()
        self.metrics = metrics
        self.decision_log = decision_log
        self._stepper = EventStepper(algorithm, state, observers, hook_base)
        self._stepper.migration_hook = self._on_migration
        self._result_factory = result_factory
        #: callbacks invoked with each bin the moment it closes (the
        #: cloud layer bills servers on this hook)
        self.bin_closed_callbacks: list[Callable] = []
        #: migration accounting (live regardless of the metrics registry;
        #: checkpointed and restored by repro.service.snapshot)
        self.migrations = 0
        self.defrag_runs = 0
        self.bins_evacuated = 0

        #: service clock: the time of the last applied event
        self.clock: float = 0.0
        self._started = False  # clock is meaningless until the first event
        #: scheduled departures: heap of (time, seq, item)
        self._pending: list[tuple[float, int, object]] = []
        self._departed: set[int] = set()  # lazy deletion for the heap
        #: admission queue (FIFO): (submit_time, seq, item)
        self._queue: list[tuple[float, int, object]] = []
        self._seq = 0
        #: items placed, in placement order (builds the result instance)
        self._placed_items: list = []
        self._active: dict[int, object] = {}  # item_id -> item, placed & not departed

        # metric objects resolved once at declaration: the submit path
        # touches half a dozen of them per job, and two dict lookups
        # through the registry each time is measurable at stream rates
        self._metric_cache: dict[str, object] = {}
        self._h_bin_level = None
        self._h_job_load = None
        self._h_queue_wait = None
        self._m_submitted = None
        self._m_placed = None
        self._m_departures = None
        self._m_bins_opened = None
        self._m_bins_closed = None
        self._m_open_bins = None
        self._m_load = None
        self._m_clock = None
        self._m_migrations = None
        self._m_defrag_runs = None
        self._m_bins_evacuated = None
        if metrics is not None:
            self._declare_metrics(metrics)

    # -- construction ---------------------------------------------------------
    @classmethod
    def scalar(
        cls,
        algorithm,
        capacity: float = 1.0,
        indexed: bool = True,
        state: Optional[PackingState] = None,
        **kwargs,
    ) -> "StreamingEngine":
        """A streaming engine over the scalar (1-D) packing state.

        ``state`` is for checkpoint restoration: a pre-populated state
        takes precedence over ``capacity``/``indexed``.
        """
        from ..algorithms.base import PackingAlgorithm

        if state is None:
            state = PackingState(capacity=capacity, indexed=indexed)
        capacity = state.capacity

        def result(items, bins, name, item_bin):
            return PackingResult(
                items=ItemList(items, capacity=capacity),
                bins=bins,
                algorithm_name=name,
                item_bin=item_bin,
            )

        return cls(
            algorithm,
            state,
            hook_base=PackingAlgorithm,
            result_factory=result,
            **kwargs,
        )

    @classmethod
    def vector(
        cls,
        algorithm,
        capacity: Sequence[float] = (1.0,),
        indexed: bool = True,
        state=None,
        **kwargs,
    ) -> "StreamingEngine":
        """A streaming engine over the multi-dimensional packing state."""
        from ..multidim.algorithms import VectorAlgorithm
        from ..multidim.items import VectorItemList
        from ..multidim.packing import VectorPackingResult
        from ..multidim.state import VectorPackingState

        if state is None:
            state = VectorPackingState(capacity=capacity, indexed=indexed)

        def result(items, bins, name, item_bin):
            return VectorPackingResult(
                items=VectorItemList(items, capacity=state.capacity),
                bins=bins,
                algorithm_name=name,
                item_bin=item_bin,
            )

        return cls(
            algorithm,
            state,
            hook_base=VectorAlgorithm,
            result_factory=result,
            **kwargs,
        )

    # -- views ----------------------------------------------------------------
    def can_fit(self, item) -> bool:
        """Whether any currently open bin can accommodate ``item``."""
        return self.state.first_fit_bin(item.size) is not None

    def load(self) -> float:
        """Fleet-wide load in bins' worth of work (binding resource)."""
        total = self.state.total_level
        if isinstance(total, tuple):
            return max(t / c for t, c in zip(total, self.state.capacity))
        return total / self.state.capacity

    def item_load(self, item) -> float:
        """``item``'s contribution to :meth:`load`."""
        size = item.size
        if isinstance(size, tuple):
            return max(s / c for s, c in zip(size, self.state.capacity))
        return size / self.state.capacity

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def pending_departures(self) -> int:
        return sum(
            1 for _, _, it in self._pending if it.item_id not in self._departed
        )

    def stats(self) -> dict:
        """A light status snapshot for the service's ``stats`` op."""
        return {
            "clock": self.clock,
            "open_bins": self.state.num_open,
            "bins_used": self.state.num_bins_used,
            "placed": len(self._placed_items),
            "active": len(self._active),
            "queue_depth": self.queue_depth,
            "pending_departures": self.pending_departures,
            "load": self.load(),
            "migrations": self.migrations,
            "defrag_runs": self.defrag_runs,
            "bins_evacuated": self.bins_evacuated,
            "admission": dict(self.admission.counts),
            "policy": self.admission.name,
            "algorithm": self.algorithm.name,
        }

    def config(self) -> dict:
        """The engine's static configuration, as a canonical dict.

        This is the identity a WAL directory is bound to (the shard
        MANIFEST fingerprints it): two engines with equal configs replay
        the same log to the same state, two with different configs must
        never share a log.  Only construction-time knobs belong here —
        nothing that changes as the stream runs.
        """
        capacity = self.state.capacity
        return {
            "kind": "scalar" if isinstance(self.state, PackingState) else "vector",
            "algorithm": self.algorithm.name,
            "capacity": list(capacity) if isinstance(capacity, tuple) else capacity,
            "indexed": self.state.indexed,
            "admission": self.admission.name,
        }

    # -- the push API ---------------------------------------------------------
    def submit(self, item, *, schedule_departure: bool = True) -> Placement:
        """Handle one arriving job at its arrival time.

        Moves the clock to ``item.arrival`` (applying any scheduled
        departure due on the way — departures precede arrivals at equal
        times), runs admission control, and places / queues / turns the
        job away.  With ``schedule_departure`` (default) the item's
        departure time is queued for :meth:`advance`; pass ``False``
        when departures are only known live (then call :meth:`depart`).
        """
        arrival = item.arrival
        if self._started and arrival < self.clock:
            raise ValueError(
                f"item {item.item_id} arrives at {arrival}, before the service "
                f"clock {self.clock} — the stream must be time-ordered"
            )
        # ids are forever: reusing one would corrupt the item→bin map and
        # the scheduled-departure bookkeeping, so it is refused *before*
        # any state is touched (the reply is a clean protocol error)
        if item.item_id in self.state.item_bin or (
            self._queue
            and any(it.item_id == item.item_id for _, _, it in self._queue)
        ):
            raise ValueError(
                f"item {item.item_id} was already submitted — job ids must be "
                f"unique for the life of the service"
            )
        self._drain_until(arrival)
        self._set_clock(arrival)

        decision = self.admission.decide(self, item)
        self.admission.account(decision)
        if decision == ADMIT:
            placement = self._place(item, arrival, self._next_seq(), schedule_departure)
        elif decision == QUEUE:
            self._queue.append((arrival, self._next_seq(), item))
            placement = Placement(item.item_id, QUEUED, None, False, arrival)
            self._count("repro_service_jobs_queued_total")
            self._gauge("repro_service_queue_depth", len(self._queue))
        else:  # reject | shed
            action = REJECTED if decision == "reject" else SHED
            placement = Placement(item.item_id, action, None, False, arrival)
            self._count(f"repro_service_jobs_{action}_total")
        if self._m_submitted is not None:
            self._m_submitted.value += 1.0
        if self.decision_log is not None:
            self._log(
                t=arrival,
                op="submit",
                item=item.item_id,
                action=placement.action,
                bin=placement.bin_index,
                new_bin=placement.new_bin,
                open=self.state.num_open,
                queue_depth=len(self._queue),
            )
        return placement

    def depart(self, item_id: int, now: Optional[float] = None) -> None:
        """Process an explicit departure of a placed item at time ``now``.

        ``now`` defaults to the item's recorded departure time.  The
        live-operation path: a client that submitted with
        ``schedule_departure=False`` announces departures itself.

        Idempotent against the scheduler: if the item's *scheduled*
        departure already fired (or fires during the drain below —
        which is guaranteed when ``now`` defaults to the recorded
        departure time and the submit scheduled it), the explicit
        depart is a no-op rather than a double-apply.  Trace replay
        leans on this: the load generator announces every departure to
        a server that also schedules them.
        """
        item = self._active.get(item_id)
        if item is None:
            if item_id in self._departed:
                return  # scheduled departure already applied
            raise KeyError(f"item {item_id} is not active in the service")
        when = item.departure if now is None else now
        if self._started and when < self.clock:
            raise ValueError(
                f"departure of item {item_id} at {when} is before the "
                f"service clock {self.clock}"
            )
        self._drain_until(when)
        if item.item_id in self._departed:
            return  # the drain applied this item's scheduled departure
        self._apply_departure(when, self._next_seq(), item)
        self._retry_queue(when)

    def advance(self, now: float) -> int:
        """Move the clock to ``now``; apply all scheduled departures due.

        Returns the number of departures applied.  Queued jobs are
        retried as departures free capacity.
        """
        if self._started and now < self.clock:
            raise ValueError(f"cannot advance to {now}: clock is at {self.clock}")
        before = len(self._departed)
        self._drain_until(now, inclusive=True)
        self._set_clock(now)
        self._retry_queue(self.clock)
        return len(self._departed) - before

    def finish(self):
        """Drain the stream completely and return the batch-shaped result.

        Applies every scheduled departure, gives queued jobs their last
        chance (a job the policy still refuses on an empty fleet can
        never be placed and is dropped as shed), asserts the terminal
        invariant, and builds the same result object the corresponding
        batch engine returns.
        """
        while True:
            nxt = self._next_pending()
            if nxt is None:
                break
            self.advance(nxt)
        # queued leftovers: nothing else will ever depart, so a refusal
        # now is a refusal forever
        while self._queue:
            when, seq, item = self._queue[0]
            if item.departure > self.clock and self.admission.admit_queued(self, item):
                self._queue.pop(0)
                self._place(item, max(self.clock, item.arrival), seq, True, queued_at=when)
                while True:
                    nxt = self._next_pending()
                    if nxt is None:
                        break
                    self.advance(nxt)
            else:
                self._queue.pop(0)
                self._drop_queued(item, EXPIRED if item.departure <= self.clock else SHED)
        self._gauge("repro_service_queue_depth", 0)
        self._stepper.finish()
        return self.result()

    def result(self):
        """The result object for everything placed so far.

        Requires all placed items to have departed (the batch result
        types assume closed bins); :meth:`finish` guarantees that.
        """
        if self._result_factory is None:
            raise RuntimeError("engine was built without a result factory")
        return self._result_factory(
            list(self._placed_items),
            tuple(self.state.bins),
            self.algorithm.name,
            dict(self.state.item_bin),
        )

    # -- the background defragmenter ------------------------------------------
    def plan_defrag(self, budget: int) -> list:
        """Plan (without applying) one defragmenter pass at the current clock.

        The same resource-generic evacuation planner the budgeted-repack
        policies use per event
        (:func:`repro.algorithms.migration.plan_evacuation_moves`):
        evacuate the highest-waste open bin completely, or do nothing.
        """
        from ..algorithms.migration import plan_evacuation_moves

        return plan_evacuation_moves(self.state, int(budget))

    def defrag(self, budget: int) -> int:
        """Run one defragmenter pass: up to ``budget`` migrations, now.

        Moves are applied through the stepper (validation, kill-points,
        and the migration accounting hook included), at the current
        service clock — a migration is an operator action, not a trace
        event, so the clock does not move.  Returns the number of items
        moved (0 when no complete evacuation fits the budget).

        ``defrag_runs`` counts *effective* passes only (ones that moved
        something): a planned no-op leaves every counter untouched, so
        the durable layer can skip logging it entirely and recovery
        still reproduces the uninterrupted run bit for bit.
        """
        moves = self.plan_defrag(budget)
        if not moves:
            return 0
        moved = self._stepper.apply_migrations(moves)
        self.defrag_runs += 1
        if self._m_defrag_runs is not None:
            self._m_defrag_runs.value += 1.0
        if self.decision_log is not None:
            self._log(
                t=self.clock,
                op="defrag",
                budget=int(budget),
                moved=moved,
                open=self.state.num_open,
            )
        return moved

    def _on_migration(self, item, src, target) -> None:
        """Stepper hook: account one applied migration (any origin)."""
        self.migrations += 1
        if self._m_migrations is not None:
            self._m_migrations.value += 1.0
        if src.is_closed:
            self.bins_evacuated += 1
            if self._m_bins_evacuated is not None:
                self._m_bins_evacuated.value += 1.0
            if self._m_bins_closed is not None:
                self._m_bins_closed.inc()
                self._m_open_bins.value = self.state.num_open
            for cb in self.bin_closed_callbacks:
                cb(src)

    # -- internals ------------------------------------------------------------
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _set_clock(self, now: float) -> None:
        if not self._started or now > self.clock:
            self.clock = now
        self._started = True
        if self._m_clock is not None:
            self._m_clock.value = self.clock

    def _next_pending(self) -> Optional[float]:
        """Time of the next live scheduled departure, skipping cancelled."""
        while self._pending and self._pending[0][2].item_id in self._departed:
            heapq.heappop(self._pending)
        return self._pending[0][0] if self._pending else None

    def _drain_until(self, bound: float, inclusive: bool = True) -> None:
        """Apply scheduled departures with time <= ``bound``.

        Departures at one instant are applied together (in schedule
        order) before the queue is retried at that instant, preserving
        the batch driver's departures-before-arrivals tie rule.
        """
        while True:
            nxt = self._next_pending()
            if nxt is None or (nxt > bound if inclusive else nxt >= bound):
                return
            t = nxt
            while True:
                nxt = self._next_pending()
                if nxt is None or nxt != t:
                    break
                _, seq, item = heapq.heappop(self._pending)
                self._apply_departure(t, seq, item)
            self._retry_queue(t)

    def _apply_departure(self, time: float, seq: int, item) -> None:
        self._set_clock(time)
        source = self._stepper.depart(time, seq, item)
        self._departed.add(item.item_id)
        self._active.pop(item.item_id, None)
        if self._m_departures is not None:
            # direct .value stores: same values as inc()/set(), minus
            # one method call each — this runs once per departure
            self._m_departures.value += 1.0
            self._m_open_bins.value = self.state.num_open
            self._m_load.value = self.load()
        if source.is_closed:
            if self._m_bins_closed is not None:
                self._m_bins_closed.inc()
            for cb in self.bin_closed_callbacks:
                cb(source)
        if self.decision_log is not None:
            self._log(
                t=time,
                op="depart",
                item=item.item_id,
                action="departed",
                bin=source.index,
                closed=source.is_closed,
                open=self.state.num_open,
            )

    def _place(
        self, item, time: float, seq: int, schedule_departure: bool, queued_at=None
    ) -> Placement:
        bins_before = self.state.num_bins_used
        target = self._stepper.arrive(time, seq, item)
        new_bin = self.state.num_bins_used > bins_before
        self._placed_items.append(item)
        self._active[item.item_id] = item
        if schedule_departure:
            heapq.heappush(self._pending, (item.departure, seq, item))
        if self._m_placed is not None:
            # direct .value stores (see _apply_departure)
            self._m_placed.value += 1.0
            if new_bin:
                self._m_bins_opened.value += 1.0
            self._m_open_bins.value = self.state.num_open
            self._m_load.value = self.load()
        if self._h_bin_level is not None:
            level = target.level
            fullness = (
                max(l / c for l, c in zip(level, self.state.capacity))
                if isinstance(level, tuple)
                else level / self.state.capacity
            )
            self._h_bin_level.observe(fullness)
            self._h_job_load.observe(self.item_load(item))
            if queued_at is not None:
                self._h_queue_wait.observe(time - queued_at)
        if queued_at is not None:
            self.admission.account(ADMIT)
            self._gauge("repro_service_queue_depth", len(self._queue))
            self._log(
                t=time,
                op="dequeue",
                item=item.item_id,
                action=PLACED,
                bin=target.index,
                new_bin=new_bin,
                waited=time - queued_at,
                open=self.state.num_open,
            )
        return Placement(item.item_id, PLACED, target.index, new_bin, time)

    def _retry_queue(self, time: float) -> None:
        """Give the queue head its chance after capacity may have freed."""
        while self._queue:
            queued_at, seq, item = self._queue[0]
            if item.departure <= time:
                self._queue.pop(0)
                self._drop_queued(item, EXPIRED)
                continue
            if not self.admission.admit_queued(self, item):
                return  # FIFO: head-of-line blocks, preserving order
            self._queue.pop(0)
            self._place(item, time, seq, True, queued_at=queued_at)

    def _drop_queued(self, item, why: str) -> None:
        self.admission.account("shed")
        self._count("repro_service_jobs_shed_total")
        self._gauge("repro_service_queue_depth", len(self._queue))
        self._log(
            t=self.clock, op="dequeue", item=item.item_id, action=why,
            bin=None, open=self.state.num_open,
        )

    # -- metrics plumbing (no-ops when no registry is attached) ---------------
    def _declare_metrics(self, reg: MetricsRegistry) -> None:
        cache = self._metric_cache
        for name, help_text in (
            ("repro_service_jobs_submitted_total", "jobs submitted"),
            ("repro_service_jobs_placed_total", "jobs placed into a bin"),
            ("repro_service_jobs_rejected_total", "jobs rejected by admission"),
            ("repro_service_jobs_queued_total", "jobs parked in the admission queue"),
            ("repro_service_jobs_shed_total", "jobs shed (dropped under load)"),
            ("repro_service_departures_total", "departures processed"),
            ("repro_service_bins_opened_total", "servers opened"),
            ("repro_service_bins_closed_total", "servers closed"),
            ("repro_service_migrations_total", "items moved between bins"),
            ("repro_service_defrag_runs_total",
             "defragmenter passes that moved at least one item"),
            ("repro_service_bins_evacuated_total",
             "servers closed by migrating their last items away"),
        ):
            cache[name] = reg.counter(name, help_text)
        for name, help_text in (
            ("repro_service_open_bins", "currently open servers"),
            ("repro_service_queue_depth", "jobs waiting in the admission queue"),
            ("repro_service_load", "total open-bin load, in bins' worth of work"),
            ("repro_service_clock", "service clock (trace time)"),
        ):
            cache[name] = reg.gauge(name, help_text)
        self._h_bin_level = reg.histogram(
            "repro_service_bin_level",
            "bin fullness after each placement",
            DEFAULT_LEVEL_BUCKETS,
        )
        self._h_job_load = reg.histogram(
            "repro_service_job_load",
            "normalised demand of each placed job",
            DEFAULT_LEVEL_BUCKETS,
        )
        self._h_queue_wait = reg.histogram(
            "repro_service_queue_wait",
            "trace-time wait of queued jobs until placement",
            DEFAULT_WAIT_BUCKETS,
        )
        # the per-submit path touches these on every job: bind the
        # metric objects as attributes so the hot methods skip even the
        # cache dict hop (all-or-nothing with the declarations above)
        self._m_submitted = cache["repro_service_jobs_submitted_total"]
        self._m_placed = cache["repro_service_jobs_placed_total"]
        self._m_departures = cache["repro_service_departures_total"]
        self._m_bins_opened = cache["repro_service_bins_opened_total"]
        self._m_bins_closed = cache["repro_service_bins_closed_total"]
        self._m_open_bins = cache["repro_service_open_bins"]
        self._m_load = cache["repro_service_load"]
        self._m_clock = cache["repro_service_clock"]
        self._m_migrations = cache["repro_service_migrations_total"]
        self._m_defrag_runs = cache["repro_service_defrag_runs_total"]
        self._m_bins_evacuated = cache["repro_service_bins_evacuated_total"]

    def _count(self, name: str, amount: float = 1.0) -> None:
        metric = self._metric_cache.get(name)
        if metric is not None:
            metric.inc(amount)

    def _gauge(self, name: str, value: float) -> None:
        metric = self._metric_cache.get(name)
        if metric is not None:
            metric.set(value)

    def _log(self, **record) -> None:
        if self.decision_log is not None:
            self.decision_log.log(**record)
