"""Service observability: a metrics registry and a per-decision trace log.

The live allocation service is long-running, so its observables cannot
be computed after the fact from a :class:`~repro.core.result.PackingResult`
the way the batch experiments do — they must be *maintained* as the
stream flows.  This module provides the three standard metric kinds
(counter, gauge, histogram), a registry that renders them in the
Prometheus text exposition format (version 0.0.4, what ``/metrics``
endpoints serve), and a structured per-decision trace log.

Everything here is snapshot/restorable: a checkpoint of the streaming
engine includes its metric values, so a restored service reports the
same counters as one that never stopped (pinned by
``tests/service/test_checkpoint.py``).
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Iterable, Optional, Sequence, TextIO

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DecisionLog",
    "DEFAULT_LEVEL_BUCKETS",
    "DEFAULT_WAIT_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_expositions",
    "relabel_exposition",
]

#: Bin levels and job sizes live in [0, capacity] with capacity 1.0
#: throughout the paper, so the level buckets are utilisation deciles
#: plus the near-full band where Any Fit behaviour is decided.
DEFAULT_LEVEL_BUCKETS: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0,
)

#: Queue waits are in trace time units (the minimum job duration is ~1
#: after the paper's normalisation), so the buckets span sub-unit waits
#: to pathological backlogs.
DEFAULT_WAIT_BUCKETS: tuple[float, ...] = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 50.0)

#: Server-side request latencies are wall-clock seconds: microseconds
#: for an in-memory placement, milliseconds once a WAL fsync or a batch
#: of pipelined ops sits in front of it.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.5, 1.0,
)


def _fmt(value: float) -> str:
    """Prometheus number formatting: integers without the trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def expose(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def snapshot(self) -> Any:
        return self.value

    def restore(self, payload: Any) -> None:
        self.value = float(payload)


class Gauge:
    """A value that can go up and down (open servers, queue depth, ...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def expose(self) -> list[str]:
        return [f"{self.name} {_fmt(self.value)}"]

    def snapshot(self) -> Any:
        return self.value

    def restore(self, payload: Any) -> None:
        self.value = float(payload)


class Histogram:
    """A cumulative histogram with fixed upper bounds (Prometheus shape).

    ``observe(v)`` increments every bucket whose bound is >= v, plus the
    implicit ``+Inf`` bucket; ``_sum`` and ``_count`` are maintained so
    scrapers can derive means and rates.
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LEVEL_BUCKETS):
        self.name = name
        self.help = help
        self.bounds: tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.bounds:
            raise ValueError(f"histogram {name}: needs at least one bucket")
        # counts[i] = observations with value <= bounds[i] (cumulative on
        # exposition; stored per-bucket and summed when rendering)
        self._counts: list[int] = [0] * (len(self.bounds) + 1)  # +1 = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def expose(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, n in zip(self.bounds, self._counts):
            cumulative += n
            lines.append(f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}')
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_fmt(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines

    def snapshot(self) -> Any:
        return {"counts": list(self._counts), "sum": self.sum, "count": self.count}

    def restore(self, payload: Any) -> None:
        counts = [int(c) for c in payload["counts"]]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"histogram {self.name}: snapshot has {len(counts)} buckets, "
                f"registry has {len(self._counts)}"
            )
        self._counts = counts
        self.sum = float(payload["sum"])
        self.count = int(payload["count"])


class MetricsRegistry:
    """A named collection of metrics with Prometheus text exposition.

    >>> reg = MetricsRegistry()
    >>> c = reg.counter("repro_jobs_total", "jobs seen")
    >>> c.inc()
    >>> print(reg.expose_text().splitlines()[2])
    repro_jobs_total 1
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _register(self, metric):
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} already registered")
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_LEVEL_BUCKETS
    ) -> Histogram:
        return self._register(Histogram(name, help, buckets))

    def get(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def expose_text(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        for metric in self._metrics.values():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n"

    def as_dict(self) -> dict[str, Any]:
        """Flat name → value view (histograms as sum/count dicts)."""
        out: dict[str, Any] = {}
        for name, metric in self._metrics.items():
            if isinstance(metric, Histogram):
                out[name] = {"sum": metric.sum, "count": metric.count}
            else:
                out[name] = metric.value
        return out

    # -- checkpoint support ---------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        return {name: m.snapshot() for name, m in self._metrics.items()}

    def restore(self, payload: dict[str, Any]) -> None:
        """Restore values into an already-declared registry.

        The metric *declarations* (names, kinds, buckets) come from the
        engine that owns the registry; the snapshot carries values only.
        """
        for name, value in payload.items():
            if name in self._metrics:
                self._metrics[name].restore(value)


# -- fleet aggregation --------------------------------------------------------
def relabel_exposition(text: str, labels: dict[str, str]) -> str:
    """Attach ``labels`` to every sample line of an exposition text.

    The fleet router scrapes each worker's (label-free) registry and
    re-exposes the union under a ``shard`` label; individual registries
    stay label-free so engine metrics remain checkpointable as plain
    name → value maps.  Comment lines (``# HELP`` / ``# TYPE``) pass
    through; sample lines gain the labels, merged in front of any
    existing ones (histogram ``le`` bounds keep working).
    """
    blob = ",".join(f'{k}="{v}"' for k, v in labels.items())
    out: list[str] = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            out.append(line)
            continue
        name_part, _, value = line.rpartition(" ")
        if "{" in name_part:
            name, rest = name_part.split("{", 1)
            out.append(f"{name}{{{blob},{rest} {value}")
        else:
            out.append(f"{name_part}{{{blob}}} {value}")
    return "\n".join(out) + "\n"


def merge_expositions(texts: Iterable[str]) -> str:
    """Concatenate exposition texts, keeping one ``#`` header per metric.

    Every shard declares the same metric families, so a plain
    concatenation would repeat each ``# HELP``/``# TYPE`` N times (and
    Prometheus rejects duplicate TYPE lines).  Sample lines are kept in
    order of appearance.
    """
    seen: set[str] = set()
    out: list[str] = []
    for text in texts:
        for line in text.splitlines():
            if line.startswith("#"):
                if line in seen:
                    continue
                seen.add(line)
            out.append(line)
    return "\n".join(out) + "\n"


class DecisionLog:
    """Structured per-decision trace of the streaming engine.

    Every placement decision (placed / rejected / queued / shed /
    departed) is appended as one dict; with a ``sink`` the record is
    also written immediately as one JSON line (the service's audit
    trail).  The in-memory tail is bounded by ``keep`` so a long-lived
    service does not grow without bound.
    """

    def __init__(self, sink: Optional[TextIO] = None, keep: int = 10_000):
        self.sink = sink
        self.keep = int(keep)
        self.records: list[dict[str, Any]] = []
        self.total: int = 0

    def log(self, **record: Any) -> None:
        self.total += 1
        self.records.append(record)
        if len(self.records) > self.keep:
            del self.records[: len(self.records) - self.keep]
        if self.sink is not None:
            self.sink.write(json.dumps(record, sort_keys=True) + "\n")

    def tail(self, n: int = 10) -> list[dict[str, Any]]:
        return self.records[-n:]
