"""Deterministic fault injection for the allocation service.

Crash recovery and protocol hardening are only trustworthy if failure
is *reproducible*: a bug found by a random kill must replay from its
seed.  A :class:`FaultPlan` is a small declarative description of what
goes wrong — kill-points, I/O errors, torn WAL writes, clock skew,
delayed or dropped connections — and a :class:`FaultInjector` executes
it deterministically (one seeded ``random.Random``, explicit hit
counters).  Plans load from JSON (``repro serve --fault-plan plan.json``)
or are built inline by the chaos tests.

Kill semantics: :class:`KillPoint` subclasses ``BaseException`` on
purpose — the service's protocol boundary catches ``Exception`` so a
malformed request can never crash the server, but an injected kill
*must* tear the process down through those handlers, exactly like
``kill -9`` would.

Plan format (all fields optional)::

    {
      "seed": 7,
      "kill": {"wal.write": 120},      // die at the 120th hit of a point
      "torn_tail": true,               // that kill tears the in-flight record
      "torn_reply": true,              // a "reply" kill tears the in-flight reply
      "io_error_rate": 0.01,           // P[OSError] per WAL write/fsync
      "clock_skew": 0.5,               // +/- uniform skew on client times
      "delay_ms": 5.0,                 // max server-side reply delay
      "drop_rate": 0.02                // P[close connection before reply]
    }

Named points currently wired: ``wal.write`` / ``wal.fsync`` (inside
:class:`~repro.service.wal.WriteAheadLog`), ``wal.appended`` /
``applied`` / ``checkpoint`` (inside the durable engine),
``arrive.pre`` / ``arrive.post`` / ``depart.pre`` / ``depart.post``
(inside :class:`~repro.core.driver.EventStepper` — mid-step kills), and
``reply`` (inside the server, before a response line/frame is written —
with ``torn_reply`` the client receives *half* the reply bytes before
the process dies, the mid-frame crash the binary protocol must survive).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional
import random

__all__ = ["FaultInjected", "KillPoint", "FaultPlan", "FaultInjector"]


class FaultInjected(Exception):
    """An injected recoverable fault (I/O error stand-in base)."""


class KillPoint(BaseException):
    """An injected crash.  ``BaseException`` so no handler 'survives' it."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of the injected failure mode."""

    seed: int = 0
    #: point name -> 1-based hit count at which the process dies
    kill: dict[str, int] = field(default_factory=dict)
    #: when the kill lands on ``wal.write``, tear the in-flight record
    torn_tail: bool = False
    #: when the kill lands on ``reply``, tear the in-flight reply frame
    torn_reply: bool = False
    #: probability of an injected ``OSError`` per WAL write/fsync
    io_error_rate: float = 0.0
    #: max absolute uniform skew added to client-supplied times
    clock_skew: float = 0.0
    #: max server-side delay before each reply, milliseconds
    delay_ms: float = 0.0
    #: probability the server drops the connection instead of replying
    drop_rate: float = 0.0

    def __post_init__(self) -> None:
        for name, rate in (
            ("io_error_rate", self.io_error_rate),
            ("drop_rate", self.drop_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name, value in (
            ("clock_skew", self.clock_skew),
            ("delay_ms", self.delay_ms),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        for point, hit in self.kill.items():
            if int(hit) < 1:
                raise ValueError(f"kill[{point!r}] must be >= 1, got {hit}")

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        known = {
            "seed", "kill", "torn_tail", "torn_reply", "io_error_rate",
            "clock_skew", "delay_ms", "drop_rate",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {', '.join(unknown)}")
        kill = {str(k): int(v) for k, v in dict(doc.get("kill", {})).items()}
        return cls(
            seed=int(doc.get("seed", 0)),
            kill=kill,
            torn_tail=bool(doc.get("torn_tail", False)),
            torn_reply=bool(doc.get("torn_reply", False)),
            io_error_rate=float(doc.get("io_error_rate", 0.0)),
            clock_skew=float(doc.get("clock_skew", 0.0)),
            delay_ms=float(doc.get("delay_ms", 0.0)),
            drop_rate=float(doc.get("drop_rate", 0.0)),
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as f:
            doc = json.load(f)
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan {path} must be a JSON object")
        return cls.from_dict(doc)


class FaultInjector:
    """Executes a :class:`FaultPlan`; all decisions come from one seed.

    The injector is shared across the layers it haunts: the WAL passes
    it as its ``io_hook``, the durable engine and the event stepper call
    :meth:`point`, the server asks :meth:`reply_fate` before each reply
    and :meth:`skew` on each client-supplied time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.hits: dict[str, int] = {}
        self.injected_io_errors = 0
        self.kills = 0

    # -- kill-points ----------------------------------------------------------
    def point(self, name: str) -> None:
        """Register a hit at a named point; dies when the plan says so."""
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            self.kills += 1
            raise KillPoint(f"injected kill at {name} (hit {count})")

    # -- WAL io_hook contract -------------------------------------------------
    def __call__(self, op: str, seq: int) -> Optional[str]:
        if op == "torn":
            # the WAL wrote the partial record; now the process dies
            self.kills += 1
            raise KillPoint(f"injected kill after torn write of record {seq}")
        if self.plan.io_error_rate and self.rng.random() < self.plan.io_error_rate:
            self.injected_io_errors += 1
            raise OSError(f"injected I/O error on wal {op} (record {seq})")
        name = f"wal.{op}"
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            if op == "write" and self.plan.torn_tail:
                return "tear"  # the WAL half-writes, then calls back with "torn"
            self.kills += 1
            raise KillPoint(f"injected kill at {name} (hit {count})")
        return None

    # -- connection faults ----------------------------------------------------
    def reply_kill(self) -> Optional[str]:
        """Kill-point check before the server writes a reply.

        Counts a hit at the ``reply`` point.  When the plan's kill lands
        here, either dies immediately or — with ``torn_reply`` — returns
        ``"tear"``: the server then writes *half* the reply bytes and
        calls :meth:`reply_torn`, so the client observes a torn frame
        from a process that crashed mid-write.
        """
        name = "reply"
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            if self.plan.torn_reply:
                return "tear"
            self.kills += 1
            raise KillPoint(f"injected kill at reply (hit {count})")
        return None

    def reply_torn(self) -> None:
        """The server wrote the partial reply; now the process dies."""
        self.kills += 1
        raise KillPoint("injected kill mid-reply (torn frame)")

    def reply_fate(self) -> tuple[str, float]:
        """What happens to the next reply: ``("drop"|"ok", delay_seconds)``."""
        delay = 0.0
        if self.plan.delay_ms:
            delay = self.rng.uniform(0.0, self.plan.delay_ms) / 1e3
        if self.plan.drop_rate and self.rng.random() < self.plan.drop_rate:
            return "drop", delay
        return "ok", delay

    def skew(self, t: float) -> float:
        """A client clock gone wrong: uniform skew on a submitted time."""
        if not self.plan.clock_skew:
            return t
        return t + self.rng.uniform(-self.plan.clock_skew, self.plan.clock_skew)
