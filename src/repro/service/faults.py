"""Deterministic fault injection for the allocation service.

Crash recovery and protocol hardening are only trustworthy if failure
is *reproducible*: a bug found by a random kill must replay from its
seed.  A :class:`FaultPlan` is a small declarative description of what
goes wrong — kill-points, I/O errors, torn WAL writes, clock skew,
delayed or dropped connections — and a :class:`FaultInjector` executes
it deterministically (one seeded ``random.Random``, explicit hit
counters).  Plans load from JSON (``repro serve --fault-plan plan.json``)
or are built inline by the chaos tests.

Kill semantics: :class:`KillPoint` subclasses ``BaseException`` on
purpose — the service's protocol boundary catches ``Exception`` so a
malformed request can never crash the server, but an injected kill
*must* tear the process down through those handlers, exactly like
``kill -9`` would.

Plan format (all fields optional)::

    {
      "seed": 7,
      "kill": {"wal.write": 120},      // die at the 120th hit of a point
      "torn_tail": true,               // that kill tears the in-flight record
      "torn_reply": true,              // a "reply" kill tears the in-flight reply
      "io_error_rate": 0.01,           // P[OSError] per WAL write/fsync
      "clock_skew": 0.5,               // +/- uniform skew on client times
      "delay_ms": 5.0,                 // max server-side reply delay
      "drop_rate": 0.02,               // P[close connection before reply]
      "hang": {"request": 50},         // stop answering at the 50th request
      "net": {                         // per-link transport faults
        "backend-1": {
          "delay_ms": 5.0,             //   max per-frame delay (virtual clock)
          "drop_rate": 0.02,           //   P[discard frame + close connection]
          "truncate_rate": 0.01,       //   P[write half the frame + close]
          "reorder_rate": 0.05,        //   P[hold a reply back one slot]
          "partition": [10, 20]        //   refuse hits 10..19 (then heal)
        }
      }
    }

A ``hang`` differs from a ``kill``: the process stays *alive* but stops
answering — the supervisor's liveness poll sees a running process, so
only the health-probe path (missed-probe threshold) can detect and
restart it.  ``net`` faults are transport-level and live in the
*clients* of a link (the router's backend links, the load generator):
each named link draws from its own ``Random(f"{seed}:{name}")`` stream,
so one link's faults never shift another's schedule.

Named points currently wired: ``wal.write`` / ``wal.fsync`` (inside
:class:`~repro.service.wal.WriteAheadLog`), ``wal.appended`` /
``applied`` / ``checkpoint`` (inside the durable engine),
``arrive.pre`` / ``arrive.post`` / ``depart.pre`` / ``depart.post``
(inside :class:`~repro.core.driver.EventStepper` — mid-step kills), and
``reply`` (inside the server, before a response line/frame is written —
with ``torn_reply`` the client receives *half* the reply bytes before
the process dies, the mid-frame crash the binary protocol must survive).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional
import random

__all__ = [
    "FaultInjected", "KillPoint", "FaultPlan", "FaultInjector", "LinkFaults",
]

#: fields a per-link ``net`` spec may carry
_NET_FIELDS = {
    "delay_ms", "drop_rate", "truncate_rate", "reorder_rate", "partition",
}


class FaultInjected(Exception):
    """An injected recoverable fault (I/O error stand-in base)."""


class KillPoint(BaseException):
    """An injected crash.  ``BaseException`` so no handler 'survives' it."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative, seeded description of the injected failure mode."""

    seed: int = 0
    #: point name -> 1-based hit count at which the process dies
    kill: dict[str, int] = field(default_factory=dict)
    #: when the kill lands on ``wal.write``, tear the in-flight record
    torn_tail: bool = False
    #: when the kill lands on ``reply``, tear the in-flight reply frame
    torn_reply: bool = False
    #: probability of an injected ``OSError`` per WAL write/fsync
    io_error_rate: float = 0.0
    #: max absolute uniform skew added to client-supplied times
    clock_skew: float = 0.0
    #: max server-side delay before each reply, milliseconds
    delay_ms: float = 0.0
    #: probability the server drops the connection instead of replying
    drop_rate: float = 0.0
    #: point name -> 1-based hit count at which the process hangs forever
    hang: dict[str, int] = field(default_factory=dict)
    #: link name -> transport fault spec (see :class:`LinkFaults`)
    net: dict[str, dict[str, Any]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, rate in (
            ("io_error_rate", self.io_error_rate),
            ("drop_rate", self.drop_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name, value in (
            ("clock_skew", self.clock_skew),
            ("delay_ms", self.delay_ms),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        for label, points in (("kill", self.kill), ("hang", self.hang)):
            for point, hit in points.items():
                if int(hit) < 1:
                    raise ValueError(
                        f"{label}[{point!r}] must be >= 1, got {hit}"
                    )
        for link, spec in self.net.items():
            unknown = sorted(set(spec) - _NET_FIELDS)
            if unknown:
                raise ValueError(
                    f"net[{link!r}] has unknown fields: {', '.join(unknown)}"
                )
            for rate_name in ("drop_rate", "truncate_rate", "reorder_rate"):
                rate = float(spec.get(rate_name, 0.0))
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(
                        f"net[{link!r}].{rate_name} must be in [0, 1], got {rate}"
                    )
            if float(spec.get("delay_ms", 0.0)) < 0:
                raise ValueError(f"net[{link!r}].delay_ms must be >= 0")
            partition = spec.get("partition")
            if partition is not None:
                start, stop = partition
                if int(start) < 1 or int(stop) <= int(start):
                    raise ValueError(
                        f"net[{link!r}].partition must be [start >= 1, "
                        f"stop > start], got {partition!r}"
                    )

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "FaultPlan":
        known = {
            "seed", "kill", "torn_tail", "torn_reply", "io_error_rate",
            "clock_skew", "delay_ms", "drop_rate", "hang", "net",
        }
        unknown = sorted(set(doc) - known)
        if unknown:
            raise ValueError(f"unknown fault-plan fields: {', '.join(unknown)}")
        kill = {str(k): int(v) for k, v in dict(doc.get("kill", {})).items()}
        hang = {str(k): int(v) for k, v in dict(doc.get("hang", {})).items()}
        net = {str(k): dict(v) for k, v in dict(doc.get("net", {})).items()}
        return cls(
            seed=int(doc.get("seed", 0)),
            kill=kill,
            torn_tail=bool(doc.get("torn_tail", False)),
            torn_reply=bool(doc.get("torn_reply", False)),
            io_error_rate=float(doc.get("io_error_rate", 0.0)),
            clock_skew=float(doc.get("clock_skew", 0.0)),
            delay_ms=float(doc.get("delay_ms", 0.0)),
            drop_rate=float(doc.get("drop_rate", 0.0)),
            hang=hang,
            net=net,
        )

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path) as f:
            doc = json.load(f)
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan {path} must be a JSON object")
        return cls.from_dict(doc)


class FaultInjector:
    """Executes a :class:`FaultPlan`; all decisions come from one seed.

    The injector is shared across the layers it haunts: the WAL passes
    it as its ``io_hook``, the durable engine and the event stepper call
    :meth:`point`, the server asks :meth:`reply_fate` before each reply
    and :meth:`skew` on each client-supplied time.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.hits: dict[str, int] = {}
        self.injected_io_errors = 0
        self.kills = 0
        #: latched once a hang point fires; the process never answers again
        self.hung = False

    # -- kill-points ----------------------------------------------------------
    def point(self, name: str) -> None:
        """Register a hit at a named point; dies when the plan says so."""
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            self.kills += 1
            raise KillPoint(f"injected kill at {name} (hit {count})")

    # -- hang points ----------------------------------------------------------
    def hang_point(self, name: str) -> bool:
        """Register a hit at a named hang point.

        Returns ``True`` once the plan's threshold is reached — and on
        every call thereafter: a hung process never recovers on its own,
        only an external restart (the supervisor's health prober) clears
        it.  The caller is expected to await forever while this is true.
        """
        if self.hung:
            return True
        threshold = self.plan.hang.get(name)
        if threshold is None:
            return False
        count = self.hits.get(f"hang.{name}", 0) + 1
        self.hits[f"hang.{name}"] = count
        if count >= threshold:
            self.hung = True
        return self.hung

    # -- link faults ----------------------------------------------------------
    def link(self, name: str) -> Optional["LinkFaults"]:
        """The transport fault stream for a named link, if the plan has one."""
        spec = self.plan.net.get(name)
        if spec is None:
            return None
        return LinkFaults(name, spec, self.plan.seed)

    # -- WAL io_hook contract -------------------------------------------------
    def __call__(self, op: str, seq: int) -> Optional[str]:
        if op == "torn":
            # the WAL wrote the partial record; now the process dies
            self.kills += 1
            raise KillPoint(f"injected kill after torn write of record {seq}")
        if self.plan.io_error_rate and self.rng.random() < self.plan.io_error_rate:
            self.injected_io_errors += 1
            raise OSError(f"injected I/O error on wal {op} (record {seq})")
        name = f"wal.{op}"
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            if op == "write" and self.plan.torn_tail:
                return "tear"  # the WAL half-writes, then calls back with "torn"
            self.kills += 1
            raise KillPoint(f"injected kill at {name} (hit {count})")
        return None

    # -- connection faults ----------------------------------------------------
    def reply_kill(self) -> Optional[str]:
        """Kill-point check before the server writes a reply.

        Counts a hit at the ``reply`` point.  When the plan's kill lands
        here, either dies immediately or — with ``torn_reply`` — returns
        ``"tear"``: the server then writes *half* the reply bytes and
        calls :meth:`reply_torn`, so the client observes a torn frame
        from a process that crashed mid-write.
        """
        name = "reply"
        count = self.hits.get(name, 0) + 1
        self.hits[name] = count
        if self.plan.kill.get(name) == count:
            if self.plan.torn_reply:
                return "tear"
            self.kills += 1
            raise KillPoint(f"injected kill at reply (hit {count})")
        return None

    def reply_torn(self) -> None:
        """The server wrote the partial reply; now the process dies."""
        self.kills += 1
        raise KillPoint("injected kill mid-reply (torn frame)")

    def reply_fate(self) -> tuple[str, float]:
        """What happens to the next reply: ``("drop"|"ok", delay_seconds)``."""
        delay = 0.0
        if self.plan.delay_ms:
            delay = self.rng.uniform(0.0, self.plan.delay_ms) / 1e3
        if self.plan.drop_rate and self.rng.random() < self.plan.drop_rate:
            return "drop", delay
        return "ok", delay

    def skew(self, t: float) -> float:
        """A client clock gone wrong: uniform skew on a submitted time."""
        if not self.plan.clock_skew:
            return t
        return t + self.rng.uniform(-self.plan.clock_skew, self.plan.clock_skew)


class LinkFaults:
    """Deterministic transport faults for one named link.

    Lives on the *client* side of a connection (a router backend link,
    the load generator's socket) and is consulted before every connect
    and send.  Each link draws from its own ``Random(f"{seed}:{name}")``
    stream so fault schedules are independent per link and reproducible
    per seed.

    Fault semantics are chosen so the exactly-once machinery above the
    transport stays sound:

    - **drop** / **truncate** discard (or half-write) the frame *and
      sever the connection*.  A silently swallowed frame would desync
      the FIFO request/response matching that pipelined links rely on;
      a severed connection triggers the normal reconnect + resend-window
      + idempotency path, which is exactly the failure the resilience
      layer must absorb.
    - **delay** is accounted on a virtual clock (:attr:`virtual_delay_s`)
      and the caller yields to the event loop, so chaos suites measure
      injected latency without wall-clock sleeps.
    - **partition** refuses connects/sends for a window of hits
      ``[start, stop)`` — the link heals itself once reconnect attempts
      advance the hit counter past ``stop``.
    """

    def __init__(self, name: str, spec: dict[str, Any], seed: int):
        self.name = name
        self.rng = random.Random(f"{seed}:{name}")
        self.delay_ms = float(spec.get("delay_ms", 0.0))
        self.drop_rate = float(spec.get("drop_rate", 0.0))
        self.truncate_rate = float(spec.get("truncate_rate", 0.0))
        self.reorder_rate = float(spec.get("reorder_rate", 0.0))
        partition = spec.get("partition")
        self.partition: Optional[tuple[int, int]] = (
            (int(partition[0]), int(partition[1])) if partition else None
        )
        #: hits against the partition window (connects + sends)
        self.partition_hits = 0
        #: injected latency, accumulated on a virtual clock (seconds)
        self.virtual_delay_s = 0.0
        self.dropped = 0
        self.truncated = 0
        self.reordered = 0
        self.partition_refusals = 0

    def partitioned(self) -> bool:
        """Advance the partition hit counter; ``True`` while inside the window."""
        if self.partition is None:
            return False
        self.partition_hits += 1
        start, stop = self.partition
        if start <= self.partition_hits < stop:
            self.partition_refusals += 1
            return True
        return False

    def connect_check(self) -> None:
        """Raise ``ConnectionRefusedError`` while the link is partitioned."""
        if self.partitioned():
            raise ConnectionRefusedError(
                f"injected partition on link {self.name!r} "
                f"(hit {self.partition_hits})"
            )

    def send_fate(self) -> tuple[str, float]:
        """Fate of the next outgoing frame: ``(verdict, delay_seconds)``.

        ``verdict`` is ``"ok"``, ``"drop"`` (discard + sever), or
        ``"truncate"`` (half-write + sever).  The delay component is
        charged to :attr:`virtual_delay_s` by the caller.
        """
        delay = 0.0
        if self.delay_ms:
            delay = self.rng.uniform(0.0, self.delay_ms) / 1e3
            self.virtual_delay_s += delay
        if self.drop_rate and self.rng.random() < self.drop_rate:
            self.dropped += 1
            return "drop", delay
        if self.truncate_rate and self.rng.random() < self.truncate_rate:
            self.truncated += 1
            return "truncate", delay
        return "ok", delay

    def reorder(self) -> bool:
        """Whether to hold the next inbound reply back one slot.

        Only safe on links whose consumer tallies replies order-
        independently (the load generator); never applied to the
        router's backend links, whose FIFO matching is order-critical.
        """
        if self.reorder_rate and self.rng.random() < self.reorder_rate:
            self.reordered += 1
            return True
        return False
