"""The live allocation service layer.

Everything below this package serves *streams*, not materialised
instances: a push-based :class:`StreamingEngine` bit-identical to the
batch engines on any replayed trace, checkpoint/restore of the full
packing state, admission control with per-policy accounting, a metrics
registry with Prometheus text exposition, a per-decision trace log, and
an asyncio JSON-lines server with a matching load generator (``repro
serve`` / ``repro loadgen``).  See the "Service layer" section of
``docs/ARCHITECTURE.md``.
"""

from .admission import (
    ADMIT,
    QUEUE,
    REJECT,
    SHED,
    AdmissionPolicy,
    AdmitAll,
    LoadShedding,
    OpenServerBudget,
    make_admission_policy,
)
from .engine import Placement, StreamingEngine
from .loadgen import LoadgenReport, loadgen, run_loadgen
from .metrics import (
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .server import AllocationService, build_engine, serve
from .snapshot import dumps, loads, restore_engine, snapshot_engine

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "SHED",
    "AdmissionPolicy",
    "AdmitAll",
    "AllocationService",
    "Counter",
    "DecisionLog",
    "Gauge",
    "Histogram",
    "LoadShedding",
    "LoadgenReport",
    "MetricsRegistry",
    "OpenServerBudget",
    "Placement",
    "StreamingEngine",
    "build_engine",
    "dumps",
    "loadgen",
    "loads",
    "make_admission_policy",
    "restore_engine",
    "run_loadgen",
    "serve",
    "snapshot_engine",
]
