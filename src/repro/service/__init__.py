"""The live allocation service layer.

Everything below this package serves *streams*, not materialised
instances: a push-based :class:`StreamingEngine` bit-identical to the
batch engines on any replayed trace, checkpoint/restore of the full
packing state, admission control with per-policy accounting, a metrics
registry with Prometheus text exposition, a per-decision trace log, and
an asyncio server with a matching load generator (``repro serve`` /
``repro loadgen``).  The server speaks JSON lines by default and
negotiates up to a length-prefixed binary protocol (:mod:`.protocol`)
for the hot path; the load generator adds request pipelining and
batched frames on top.  On top of that sits the fault-tolerance
layer: a CRC-checksummed write-ahead log (:mod:`.wal`), crash recovery
by checkpoint + replay (:mod:`.recovery`), and a deterministic fault
-injection harness (:mod:`.faults`) — see ``docs/OPERATIONS.md`` for
the operator's view.

The fleet layer scales the same service horizontally: each worker is a
shard-scoped context (:mod:`.shard` — engine + WAL dir + manifest-bound
identity), a consistent-hash router (:mod:`.router`) fronts N of them
on both wire protocols, and a supervisor (:mod:`.fleet` /
``repro fleet``) spawns, restarts, and live-hands-off the workers.
"""

from .admission import (
    ADMIT,
    QUEUE,
    REJECT,
    SHED,
    AdmissionPolicy,
    AdmitAll,
    LoadShedding,
    OpenServerBudget,
    make_admission_policy,
)
from .engine import Placement, StreamingEngine
from .faults import FaultInjected, FaultInjector, FaultPlan, KillPoint
from .fleet import FleetSupervisor
from .loadgen import LoadgenReport, RetryPolicy, loadgen, run_loadgen, tenantize
from .metrics import (
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_expositions,
    relabel_exposition,
)
from .protocol import (
    PROTOCOL_VERSION,
    PROTOCOLS,
    FrameError,
)
from .recovery import (
    DedupWindow,
    DurableEngine,
    RecoveryReport,
    latest_checkpoint,
    recover,
)
from .router import BackendLink, HashRing, ShardRouter, partition_items, route_key
from .server import AllocationService, ProtocolError, build_engine, serve
from .shard import ShardContext, ShardSpec, shard_manifest
from .snapshot import (
    config_fingerprint,
    dumps,
    loads,
    read_checkpoint,
    restore_engine,
    snapshot_engine,
    write_checkpoint,
)
from .wal import (
    WalCorruptionError,
    WalError,
    WriteAheadLog,
    read_manifest,
    replay_wal,
    write_manifest,
)

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "SHED",
    "AdmissionPolicy",
    "AdmitAll",
    "AllocationService",
    "BackendLink",
    "Counter",
    "DecisionLog",
    "DedupWindow",
    "DurableEngine",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FleetSupervisor",
    "FrameError",
    "HashRing",
    "KillPoint",
    "PROTOCOLS",
    "PROTOCOL_VERSION",
    "Gauge",
    "Histogram",
    "LoadShedding",
    "LoadgenReport",
    "MetricsRegistry",
    "OpenServerBudget",
    "Placement",
    "ProtocolError",
    "RecoveryReport",
    "RetryPolicy",
    "ShardContext",
    "ShardRouter",
    "ShardSpec",
    "StreamingEngine",
    "WalCorruptionError",
    "WalError",
    "WriteAheadLog",
    "build_engine",
    "config_fingerprint",
    "dumps",
    "latest_checkpoint",
    "loadgen",
    "loads",
    "make_admission_policy",
    "merge_expositions",
    "partition_items",
    "read_checkpoint",
    "read_manifest",
    "recover",
    "relabel_exposition",
    "replay_wal",
    "restore_engine",
    "route_key",
    "run_loadgen",
    "serve",
    "shard_manifest",
    "snapshot_engine",
    "tenantize",
    "write_checkpoint",
    "write_manifest",
]
