"""The live allocation service layer.

Everything below this package serves *streams*, not materialised
instances: a push-based :class:`StreamingEngine` bit-identical to the
batch engines on any replayed trace, checkpoint/restore of the full
packing state, admission control with per-policy accounting, a metrics
registry with Prometheus text exposition, a per-decision trace log, and
an asyncio server with a matching load generator (``repro serve`` /
``repro loadgen``).  The server speaks JSON lines by default and
negotiates up to a length-prefixed binary protocol (:mod:`.protocol`)
for the hot path; the load generator adds request pipelining and
batched frames on top.  On top of that sits the fault-tolerance
layer: a CRC-checksummed write-ahead log (:mod:`.wal`), crash recovery
by checkpoint + replay (:mod:`.recovery`), and a deterministic fault
-injection harness (:mod:`.faults`) — see ``docs/OPERATIONS.md`` for
the operator's view.
"""

from .admission import (
    ADMIT,
    QUEUE,
    REJECT,
    SHED,
    AdmissionPolicy,
    AdmitAll,
    LoadShedding,
    OpenServerBudget,
    make_admission_policy,
)
from .engine import Placement, StreamingEngine
from .faults import FaultInjected, FaultInjector, FaultPlan, KillPoint
from .loadgen import LoadgenReport, RetryPolicy, loadgen, run_loadgen
from .metrics import (
    Counter,
    DecisionLog,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .protocol import (
    PROTOCOL_VERSION,
    PROTOCOLS,
    FrameError,
)
from .recovery import (
    DedupWindow,
    DurableEngine,
    RecoveryReport,
    latest_checkpoint,
    recover,
)
from .server import AllocationService, ProtocolError, build_engine, serve
from .snapshot import (
    dumps,
    loads,
    read_checkpoint,
    restore_engine,
    snapshot_engine,
    write_checkpoint,
)
from .wal import WalCorruptionError, WalError, WriteAheadLog, replay_wal

__all__ = [
    "ADMIT",
    "QUEUE",
    "REJECT",
    "SHED",
    "AdmissionPolicy",
    "AdmitAll",
    "AllocationService",
    "Counter",
    "DecisionLog",
    "DedupWindow",
    "DurableEngine",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FrameError",
    "KillPoint",
    "PROTOCOLS",
    "PROTOCOL_VERSION",
    "Gauge",
    "Histogram",
    "LoadShedding",
    "LoadgenReport",
    "MetricsRegistry",
    "OpenServerBudget",
    "Placement",
    "ProtocolError",
    "RecoveryReport",
    "RetryPolicy",
    "StreamingEngine",
    "WalCorruptionError",
    "WalError",
    "WriteAheadLog",
    "build_engine",
    "dumps",
    "latest_checkpoint",
    "loadgen",
    "loads",
    "make_admission_policy",
    "read_checkpoint",
    "recover",
    "replay_wal",
    "restore_engine",
    "run_loadgen",
    "serve",
    "snapshot_engine",
    "write_checkpoint",
]
