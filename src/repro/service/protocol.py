"""The binary wire protocol: length-prefixed frames over TCP.

The JSON-lines protocol (:mod:`repro.service.server`) is the service's
debug/compat surface — anything that can speak ``nc`` can drive it.  It
is also ~30x slower than the engine it fronts: one request per round
trip, ``json.dumps``/``json.loads`` per message.  This module is the
fast path: a length-prefixed binary encoding of the *same operation
set*, negotiated per-connection, with batch frames so a pipelined
client amortises the round trip and the event-loop wakeup over hundreds
of operations.

Negotiation
-----------
Every connection starts in JSON-lines mode.  A client that wants the
binary protocol sends one ordinary JSON request as its first line::

    {"op": "hello", "protocol": "binary", "version": 2}

and the server answers with a JSON line
(``{"ok": true, "protocol": "binary", "version": 2}``); from the next
byte onward **both directions speak binary frames**.  A hello naming
``"protocol": "json"`` (or no hello at all) leaves the connection in
JSON-lines mode, so old clients keep working unchanged.

The ack echoes the client's version when the server speaks it — any
version in ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` — so a v1
client talks to a v2 server unchanged, and a v2 client talking to a v1
server (whose hello handler refuses 2) falls back rather than
mis-framing.  Version 2 adds exactly one encoding: the ``0x05``
DEADLINE wrapper, which prefixes any request payload with the remaining
deadline budget in milliseconds.  Peers that negotiated v1 never
receive it.

Frame format
------------
Every frame, both directions::

    +----------------+---------------------+
    | length, u32 BE | payload (length B)  |
    +----------------+---------------------+

The payload's first byte is an opcode.  All integers are big-endian;
all floats are IEEE-754 doubles (bit-exact with the engine's Python
floats, which is what makes the JSON/binary differential land
bit-identical).  Request opcodes:

========  ======  =====================================================
``0x00``  JSON    UTF-8 JSON object — any op the JSON protocol accepts
``0x01``  SUBMIT  flags u8, id i64, then scalar ``size f64`` or vector
                  ``dim-count u16 + f64 per dim``, arrival f64,
                  departure f64, optional request-id (u16 len + UTF-8)
``0x02``  DEPART  flags u8, id i64, optional ``now`` f64
``0x03``  ADVANCE ``now`` f64
``0x05``  DEADLINE  budget-ms f64, then one inner request payload (any
                  opcode above except DEADLINE; v2 only)
``0x10``  BATCH   count u32, then count sub-requests, each u32
                  length-prefixed (any opcode above; no nesting)
========  ======  =====================================================

Response opcodes mirror the JSON response shapes: ``0x01`` PLACEMENT is
a fixed 23-byte record (flags/action/item-id/bin/time), ``0x02`` CLOCK
acknowledges depart/advance, ``0x00`` JSON carries anything else
(stats, metrics, checkpoints, every error), and ``0x10`` BATCH bundles
one sub-response per sub-request, in order.  :func:`decode_response`
returns exactly the dict the JSON protocol would have sent, so client
code above the codec is protocol-agnostic.

A malformed payload *inside* a well-formed frame is answered with a
structured error and the connection survives (the length prefix keeps
the stream in sync); only an oversized declared length or a torn frame
forces a close — the binary analogues of the JSON protocol's
``line_too_long`` and half-line disconnects.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional, Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "PROTOCOLS",
    "FrameError",
    "HEADER",
    "OP_JSON",
    "OP_SUBMIT",
    "OP_DEPART",
    "OP_ADVANCE",
    "OP_DEADLINE",
    "OP_BATCH",
    "RESP_JSON",
    "RESP_PLACEMENT",
    "RESP_CLOCK",
    "RESP_BATCH",
    "ACTIONS",
    "hello_line",
    "frame",
    "encode_json_request",
    "encode_submit",
    "encode_depart",
    "encode_advance",
    "encode_batch",
    "split_batch",
    "decode_submit",
    "decode_depart",
    "decode_advance",
    "encode_json_response",
    "encode_placement",
    "encode_clock",
    "decode_response",
    "scan_batch_actions",
    "wrap_deadline",
    "unwrap_deadline",
    "negotiate_version",
]

#: the newest dialect this build speaks (v2 = v1 + DEADLINE wrapper)
PROTOCOL_VERSION = 2
#: the oldest dialect this build still accepts in a hello
MIN_PROTOCOL_VERSION = 1
PROTOCOLS = ("json", "binary")

#: Frame header: payload length as an unsigned 32-bit big-endian int.
HEADER = struct.Struct(">I")

# request opcodes
OP_JSON = 0x00
OP_SUBMIT = 0x01
OP_DEPART = 0x02
OP_ADVANCE = 0x03
OP_DEADLINE = 0x05  # v2: deadline-budget wrapper around any request payload
OP_BATCH = 0x10

# response opcodes
RESP_JSON = 0x00
RESP_PLACEMENT = 0x01
RESP_CLOCK = 0x02
RESP_BATCH = 0x10

# submit flags
FLAG_RID = 0x01
FLAG_VECTOR = 0x02

# depart flags
FLAG_NOW = 0x01

# placement-response flags
FLAG_DUPLICATE = 0x01
FLAG_NEW_BIN = 0x02
FLAG_HAS_BIN = 0x04

#: Placement actions by wire code (the response carries the index).
ACTIONS = ("placed", "rejected", "queued", "shed")
_ACTION_CODE = {name: i for i, name in enumerate(ACTIONS)}

_SUBMIT_SCALAR = struct.Struct(">BBqddd")  # op, flags, id, size, arrival, departure
_SUBMIT_VECTOR = struct.Struct(">BBqddH")  # op, flags, id, arrival, departure, dims
_RID_LEN = struct.Struct(">H")
_DEPART = struct.Struct(">BBq")  # op, flags, id
_NOW = struct.Struct(">d")
_ADVANCE = struct.Struct(">Bd")  # op, now
_DEADLINE = struct.Struct(">Bd")  # op, budget ms
_BATCH_HEAD = struct.Struct(">BI")  # op, count
_SUB_LEN = struct.Struct(">I")
_PLACEMENT = struct.Struct(">BBBqid")  # op, flags, action, item_id, bin, time
_CLOCK = struct.Struct(">BBid")  # op, kind (0=depart, 1=advance), departed, clock


class FrameError(ValueError):
    """A structurally invalid frame payload (reported, never fatal)."""


def hello_line(protocol: str = "binary", version: int = PROTOCOL_VERSION) -> bytes:
    """The negotiation request, as one JSON line (sent *before* upgrade)."""
    return (
        json.dumps({"op": "hello", "protocol": protocol, "version": version}) + "\n"
    ).encode()


def negotiate_version(client_version: int) -> Optional[int]:
    """The dialect to ack for a client's hello, or ``None`` to refuse.

    Any version in ``[MIN_PROTOCOL_VERSION, PROTOCOL_VERSION]`` is
    spoken as-is — an old client simply never receives newer frames.
    A version from the future is refused loudly (the connection stays
    JSON): silently downgrading a client that expects v3 semantics
    could mis-frame its stream.
    """
    if MIN_PROTOCOL_VERSION <= client_version <= PROTOCOL_VERSION:
        return client_version
    return None


def frame(payload: bytes) -> bytes:
    """Wrap one payload in the length-prefixed frame header."""
    return HEADER.pack(len(payload)) + payload


# -- request encoding (client side) -------------------------------------------
def encode_json_request(request: dict[str, Any]) -> bytes:
    """Any JSON-protocol request as an ``OP_JSON`` payload."""
    return b"\x00" + json.dumps(request).encode()


def encode_submit(item, request_id: Optional[str] = None) -> bytes:
    """One submit payload from an ``Item``/``VectorItem``.

    Falls back to the ``OP_JSON`` encoding for values the fixed-width
    fields cannot carry (a job id beyond int64, a request id beyond
    64 KiB) — correctness never depends on the fast encoding.
    """
    flags = 0
    rid_blob = b""
    if request_id is not None:
        encoded = request_id.encode()
        if len(encoded) > 0xFFFF:
            return _submit_json_fallback(item, request_id)
        flags |= FLAG_RID
        rid_blob = _RID_LEN.pack(len(encoded)) + encoded
    sizes = getattr(item, "sizes", None)
    try:
        if sizes is not None:
            body = _SUBMIT_VECTOR.pack(
                OP_SUBMIT, flags | FLAG_VECTOR, item.item_id,
                item.arrival, item.departure, len(sizes),
            ) + struct.pack(f">{len(sizes)}d", *sizes)
        else:
            body = _SUBMIT_SCALAR.pack(
                OP_SUBMIT, flags, item.item_id,
                item.size, item.arrival, item.departure,
            )
    except struct.error:
        return _submit_json_fallback(item, request_id)
    return body + rid_blob


def _submit_json_fallback(item, request_id: Optional[str]) -> bytes:
    sizes = getattr(item, "sizes", None)
    job: dict[str, Any] = {"id": item.item_id, "arrival": item.arrival,
                           "departure": item.departure}
    if sizes is not None:
        job["sizes"] = list(sizes)
    else:
        job["size"] = item.size
    request: dict[str, Any] = {"op": "submit", "job": job}
    if request_id is not None:
        request["request_id"] = request_id
    return encode_json_request(request)


def encode_depart(item_id: int, now: Optional[float] = None) -> bytes:
    if now is None:
        return _DEPART.pack(OP_DEPART, 0, item_id)
    return _DEPART.pack(OP_DEPART, FLAG_NOW, item_id) + _NOW.pack(now)


def encode_advance(now: float) -> bytes:
    return _ADVANCE.pack(OP_ADVANCE, now)


def wrap_deadline(payload: bytes, budget_ms: float) -> bytes:
    """Prefix one request payload with its remaining deadline budget.

    v2-only: never send this to a peer that negotiated version 1.
    The wrapper composes with every request opcode (including BATCH —
    one budget covers the whole batch) but does not nest.
    """
    return _DEADLINE.pack(OP_DEADLINE, budget_ms) + payload


def unwrap_deadline(payload):
    """``(inner_payload, budget_ms_or_None)`` for one request payload.

    Payloads not starting with ``OP_DEADLINE`` pass through untouched
    with a ``None`` budget, so decode paths can call this
    unconditionally.  Raises :class:`FrameError` on a truncated or
    nested wrapper.
    """
    try:
        if payload[0] != OP_DEADLINE:
            return payload, None
    except IndexError:
        raise FrameError("empty frame payload") from None
    try:
        _, budget_ms = _DEADLINE.unpack_from(payload)
    except struct.error as exc:
        raise FrameError(f"malformed deadline wrapper: {exc}") from None
    inner = memoryview(payload)[_DEADLINE.size:]
    if len(inner) == 0:
        raise FrameError("deadline wrapper carries no inner request")
    if inner[0] == OP_DEADLINE:
        raise FrameError("nested deadline wrapper")
    return inner, budget_ms


def encode_batch(subs: Sequence[bytes]) -> bytes:
    """Bundle sub-request (or sub-response) payloads into one BATCH payload."""
    parts = [_BATCH_HEAD.pack(OP_BATCH, len(subs))]
    pack_len = _SUB_LEN.pack
    for sub in subs:
        parts.append(pack_len(len(sub)))
        parts.append(sub)
    return b"".join(parts)


def split_batch(payload) -> "list[memoryview]":
    """The length-prefixed sub-payloads of a BATCH frame, in order.

    Works for request and response batches alike (the layout is shared).
    Raises :class:`FrameError` on any structural defect — a count or a
    sub-length that disagrees with the actual byte count.
    """
    try:
        _, count = _BATCH_HEAD.unpack_from(payload)
    except struct.error as exc:
        raise FrameError(f"malformed batch header: {exc}") from None
    if count == 0:
        raise FrameError("batch frame declares zero sub-requests")
    mv = memoryview(payload)
    total = len(mv)
    offset = _BATCH_HEAD.size
    unpack_len = _SUB_LEN.unpack_from
    subs: list[memoryview] = []
    for _ in range(count):
        if offset + 4 > total:
            raise FrameError(
                f"batch declares {count} sub-requests but the payload "
                f"ends after {len(subs)}"
            )
        (length,) = unpack_len(mv, offset)
        offset += 4
        if length == 0 or offset + length > total:
            raise FrameError(
                f"batch sub-request {len(subs)} declares {length} bytes "
                f"with {total - offset} remaining"
            )
        subs.append(mv[offset : offset + length])
        offset += length
    if offset != total:
        raise FrameError(
            f"batch payload has {total - offset} trailing bytes"
        )
    return subs


# -- request decoding (server side) -------------------------------------------
def decode_submit(payload):
    """``(item_id, size_or_sizes, arrival, departure, vector, rid)``.

    ``size_or_sizes`` is a float for scalar submits, a tuple of floats
    for vector submits (``vector`` tells which).  Raises
    :class:`FrameError` on any structural defect, including trailing
    bytes (a declared-length mismatch smuggled inside a valid frame).
    """
    try:
        if payload[1] & FLAG_VECTOR:
            (_, flags, item_id, arrival, departure, dims
             ) = _SUBMIT_VECTOR.unpack_from(payload)
            if dims == 0:
                raise FrameError("vector submit declares zero dimensions")
            offset = _SUBMIT_VECTOR.size
            size = struct.unpack_from(f">{dims}d", payload, offset)
            offset += 8 * dims
        else:
            (_, flags, item_id, size, arrival, departure
             ) = _SUBMIT_SCALAR.unpack_from(payload)
            offset = _SUBMIT_SCALAR.size
        rid = None
        if flags & FLAG_RID:
            (rid_len,) = _RID_LEN.unpack_from(payload, offset)
            offset += 2
            if offset + rid_len > len(payload):
                raise FrameError("request id overruns the submit payload")
            rid = bytes(payload[offset : offset + rid_len]).decode()
            offset += rid_len
        if offset != len(payload):
            raise FrameError(
                f"submit payload has {len(payload) - offset} trailing bytes"
            )
        return item_id, size, arrival, departure, bool(flags & FLAG_VECTOR), rid
    except FrameError:
        raise
    except (struct.error, IndexError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed submit payload: {exc}") from None


def decode_depart(payload) -> tuple[int, Optional[float]]:
    try:
        _, flags, item_id = _DEPART.unpack_from(payload)
        now = None
        offset = _DEPART.size
        if flags & FLAG_NOW:
            (now,) = _NOW.unpack_from(payload, offset)
            offset += 8
        if offset != len(payload):
            raise FrameError("depart payload length mismatch")
        return item_id, now
    except FrameError:
        raise
    except struct.error as exc:
        raise FrameError(f"malformed depart payload: {exc}") from None


def decode_advance(payload) -> float:
    try:
        if len(payload) != _ADVANCE.size:
            raise FrameError("advance payload length mismatch")
        _, now = _ADVANCE.unpack(payload)
        return now
    except FrameError:
        raise
    except struct.error as exc:
        raise FrameError(f"malformed advance payload: {exc}") from None


# -- response encoding (server side) ------------------------------------------
def encode_json_response(response: dict[str, Any]) -> bytes:
    """Any JSON-protocol response dict as a ``RESP_JSON`` payload."""
    return b"\x00" + json.dumps(response).encode()


def encode_placement(
    item_id: int,
    action: str,
    bin_index: Optional[int],
    new_bin: bool,
    time: float,
    duplicate: bool = False,
) -> bytes:
    """A submit acknowledgement as the fixed-width PLACEMENT record."""
    code = _ACTION_CODE.get(action)
    if code is None:  # future actions ride the JSON fallback
        doc: dict[str, Any] = {"ok": True, "placement": {
            "item_id": item_id, "action": action, "bin": bin_index,
            "new_bin": new_bin, "time": time}}
        if duplicate:
            doc["duplicate"] = True
        return encode_json_response(doc)
    flags = 0
    if duplicate:
        flags |= FLAG_DUPLICATE
    if new_bin:
        flags |= FLAG_NEW_BIN
    if bin_index is not None:
        flags |= FLAG_HAS_BIN
    try:
        return _PLACEMENT.pack(
            RESP_PLACEMENT, flags, code, item_id,
            bin_index if bin_index is not None else -1, time,
        )
    except struct.error:
        doc = {"ok": True, "placement": {
            "item_id": item_id, "action": action, "bin": bin_index,
            "new_bin": new_bin, "time": time}}
        if duplicate:
            doc["duplicate"] = True
        return encode_json_response(doc)


def encode_clock(clock: float, departed: Optional[int] = None) -> bytes:
    """The depart (``departed is None``) / advance acknowledgement."""
    if departed is None:
        return _CLOCK.pack(RESP_CLOCK, 0, 0, clock)
    return _CLOCK.pack(RESP_CLOCK, 1, departed, clock)


# -- response decoding (client side) ------------------------------------------
def decode_response(payload) -> dict[str, Any]:
    """One response payload as the dict the JSON protocol would send."""
    try:
        kind = payload[0]
        if kind == RESP_PLACEMENT:
            _, flags, action, item_id, bin_index, time = _PLACEMENT.unpack(payload)
            doc: dict[str, Any] = {"ok": True, "placement": {
                "item_id": item_id,
                "action": ACTIONS[action],
                "bin": bin_index if flags & FLAG_HAS_BIN else None,
                "new_bin": bool(flags & FLAG_NEW_BIN),
                "time": time,
            }}
            if flags & FLAG_DUPLICATE:
                doc["duplicate"] = True
            return doc
        if kind == RESP_CLOCK:
            _, ack_kind, departed, clock = _CLOCK.unpack(payload)
            if ack_kind == 0:
                return {"ok": True, "clock": clock}
            return {"ok": True, "departed": departed, "clock": clock}
        if kind == RESP_JSON:
            doc = json.loads(bytes(payload[1:]))
            if not isinstance(doc, dict):
                raise FrameError("JSON response payload is not an object")
            return doc
    except FrameError:
        raise
    except (struct.error, IndexError, ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"malformed response payload: {exc}") from None
    raise FrameError(f"unknown response opcode 0x{kind:02x}")


def scan_batch_actions(payload) -> tuple[list[int], int, list[dict[str, Any]]]:
    """Fast client-side scan of one BATCH response.

    Returns ``(action_counts, duplicates, other_docs)`` where
    ``action_counts[i]`` counts PLACEMENT records with action code
    ``i`` (see :data:`ACTIONS`) and ``other_docs`` holds every
    non-PLACEMENT sub-response fully decoded (errors, JSON fallbacks).
    The load generator's hot loop only needs the tallies, so the
    placement records are never materialised as dicts.
    """
    counts = [0] * len(ACTIONS)
    duplicates = 0
    others: list[dict[str, Any]] = []
    for sub in split_batch(payload):
        if sub[0] == RESP_PLACEMENT and len(sub) == _PLACEMENT.size:
            counts[sub[2]] += 1
            if sub[1] & FLAG_DUPLICATE:
                duplicates += 1
        else:
            others.append(decode_response(sub))
    return counts, duplicates, others
