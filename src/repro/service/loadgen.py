"""Closed/open-loop load generator for the allocation service.

``repro loadgen`` replays any workload the repository can generate (or
any saved trace) as live traffic against a running ``repro serve``
endpoint, measuring what the *client* sees: request throughput and
response-time percentiles, plus the placement outcomes.

Two driving modes:

- **closed-loop** (``speed = 0``, default): each submission waits for
  the previous response — back-to-back requests, measuring the
  service's sustainable throughput;
- **open-loop** (``speed > 0``): submissions are paced to the trace's
  arrival times, with ``speed`` trace-time units per wall-clock second
  — measuring latency at a controlled offered load.

Departures ride on the server's own scheduler (the engine applies each
job's departure when the clock passes it), so by default the generator
only sends arrivals plus one final ``drain``.  With ``departs=True``
(trace replay: ``repro loadgen --trace``) the generator *also* announces
every departure as an explicit ``depart`` request at its trace time —
the event stream then interleaves submits and departs exactly as the
trace orders them (departures first at simultaneous instants, matching
the engines' tie rule).  The engine's depart idempotence makes the
announcements safe alongside its own scheduler.

Both protocols drive one shared timed event loop (:func:`build_events`):
synthetic arrival-only runs and trace replays differ only in whether the
event stream carries depart events, never in pacing or accounting.

Retry policy (``retries > 0``): every submit carries a client-generated
``request_id``, and a timed-out or dropped request is resent — after an
exponential backoff with full jitter (the standard contention-avoiding
schedule), over a fresh connection if the old one died.  The server's
idempotency window makes the retried submit **exactly-once**: a job
whose first attempt was applied but whose reply was lost is not applied
again (pinned by ``tests/service/test_faults.py`` under injected reply
drops).

Fast path (``protocol="binary"``): the connection is upgraded to the
length-prefixed binary protocol (:mod:`repro.service.protocol`), jobs
are packed ``batch`` per frame, and up to ``pipeline`` frames ride the
wire unacknowledged — the client stops paying one round trip per job,
which is where ~97% of the JSON sequential wall-clock goes.  Retries
still work frame-wise: an unacknowledged window is resent over a fresh
connection, and the per-job request ids make the replay exactly-once.
Latency is then measured per *frame* (every job in a batch records its
frame's round-trip time).
"""

from __future__ import annotations

import asyncio
import json
import random
import time
import zlib
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Optional

from ..core.items import ItemList
from . import protocol as wire
from .faults import LinkFaults

__all__ = [
    "LoadgenReport",
    "RetryPolicy",
    "build_events",
    "run_loadgen",
    "loadgen",
    "tenantize",
    "DEPART_EVENT",
    "SUBMIT_EVENT",
]

#: Event kinds in the unified timed stream.  DEPART sorts before SUBMIT
#: at equal times — the same departures-before-arrivals tie rule the
#: batch driver and the streaming engine apply.
DEPART_EVENT = 0
SUBMIT_EVENT = 1


def build_events(ordered: list, departs: bool) -> list:
    """The unified timed event stream: ``(time, kind, item)`` tuples.

    ``ordered`` must already be in submission (arrival) order.  Without
    ``departs`` the stream is just the arrivals — the synthetic
    workload path.  With ``departs`` every item contributes a second,
    explicit depart event at its departure time, and the merge is a
    stable sort on ``(time, kind)`` so simultaneous events keep
    departures first and preserve instance order within a kind.
    """
    events = [(it.arrival, SUBMIT_EVENT, it) for it in ordered]
    if departs:
        events.extend((it.departure, DEPART_EVENT, it) for it in ordered)
        events.sort(key=lambda ev: (ev[0], ev[1]))
    return events


def tenantize(ordered: list, tenants: int) -> list:
    """Rewrite job ids so each job belongs to one of ``tenants`` tenants.

    Multi-tenant traffic against the fleet router: the router keys
    ``id % tenants``, so every job of a tenant must carry that residue.
    Job ``i`` (in submission order) is assigned tenant
    ``crc32("tenant-i") % tenants`` — deterministic across runs and
    processes, no extra seed — and its id becomes
    ``tenant + tenants * k`` where ``k`` counts the tenant's jobs so
    far.  Ids stay unique; sizes and times are untouched.
    """
    if tenants < 1:
        raise ValueError(f"tenants must be >= 1, got {tenants}")
    counts = [0] * tenants
    out = []
    for i, it in enumerate(ordered):
        tenant = zlib.crc32(b"tenant-%d" % i) % tenants
        out.append(replace(it, item_id=tenant + tenants * counts[tenant]))
        counts[tenant] += 1
    return out


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    Attempt ``k`` (0-based retry) sleeps ``uniform(0, base * 2**k)``
    seconds, capped at ``max_backoff``.  ``seed`` makes a run's jitter
    reproducible.
    """

    retries: int = 0
    base: float = 0.05
    max_backoff: float = 2.0
    seed: int = 0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        return rng.uniform(0.0, min(self.max_backoff, self.base * (2 ** attempt)))


@dataclass
class LoadgenReport:
    """What the load generator observed, client side."""

    jobs: int = 0
    #: explicit depart requests sent (trace replay); scheduled
    #: departures the server applies on its own are *not* client events
    #: and are never mixed into this count
    departs: int = 0
    actions: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    drain: dict = field(default_factory=dict)
    #: every failed outcome, whatever its class (the breakouts below
    #: are sub-counts of this total)
    errors: int = 0
    retries: int = 0
    reconnects: int = 0
    #: client-side waits that expired with no reply at all
    timeouts: int = 0
    #: replies refused by an open circuit breaker (``"breaker": "open"``)
    breaker_rejected: int = 0
    #: replies with ``error_type == "deadline_exceeded"``
    deadline_exceeded: int = 0
    #: outcome class -> latencies (ms); classes: ok, error,
    #: breaker_rejected, deadline_exceeded.  Timeouts have no latency —
    #: nothing came back to measure.
    class_latencies: dict[str, list[float]] = field(default_factory=dict)
    #: shard index -> job ops routed there (fleet runs with ``tenants``;
    #: empty against a plain single-process server)
    per_shard: dict[str, int] = field(default_factory=dict)
    #: tenant -> {"submits": n, "departs": n} — submits and departs
    #: tallied separately (a depart is not a job)
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)

    def count_tenant(self, tenant: int, kind: str) -> None:
        row = self.per_tenant.setdefault(str(tenant), {"submits": 0, "departs": 0})
        row[kind] += 1

    @property
    def requests_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return (self.jobs + self.departs) / self.wall_seconds

    def note_outcome(self, cls: str, latency_ms: Optional[float]) -> None:
        """File one response's latency under its outcome class."""
        if latency_ms is not None:
            self.class_latencies.setdefault(cls, []).append(latency_ms)

    def latency_percentile(self, q: float) -> float:
        """q-th latency percentile in milliseconds (nearest-rank)."""
        return self._percentile(self.latencies_ms, q)

    def class_percentile(self, cls: str, q: float) -> float:
        """q-th latency percentile for one outcome class."""
        return self._percentile(self.class_latencies.get(cls, ()), q)

    @staticmethod
    def _percentile(sample, q: float) -> float:
        if not sample:
            return 0.0
        ordered = sorted(sample)
        rank = min(len(ordered) - 1, max(0, int(q / 100.0 * len(ordered))))
        return ordered[rank]

    def render(self) -> str:
        jobs = f"{self.jobs} jobs"
        if self.departs:
            jobs += f" + {self.departs} departs"
        lines = [
            f"loadgen: {jobs} in {self.wall_seconds:.3f}s "
            f"({self.requests_per_sec:.0f} req/s)",
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.actions.items())),
            f"latency ms: p50={self.latency_percentile(50):.3f} "
            f"p90={self.latency_percentile(90):.3f} "
            f"p95={self.latency_percentile(95):.3f} "
            f"p99={self.latency_percentile(99):.3f}",
        ]
        if self.retries or self.reconnects:
            lines.append(
                f"retries: {self.retries} ({self.reconnects} reconnects)"
            )
        if self.timeouts or self.breaker_rejected or self.deadline_exceeded:
            lines.append(
                f"failure classes: timeouts={self.timeouts} "
                f"breaker_rejected={self.breaker_rejected} "
                f"deadline_exceeded={self.deadline_exceeded}"
            )
        if self.class_latencies:
            lines.append(
                "p99 ms by outcome: "
                + ", ".join(
                    f"{cls}={self.class_percentile(cls, 99):.3f}"
                    for cls in sorted(self.class_latencies)
                )
            )
        if self.drain:
            lines.append(
                f"final packing: {self.drain.get('bins')} servers, "
                f"usage time {self.drain.get('total_usage_time', 0.0):.4f}"
            )
        if self.per_shard:
            lines.append(
                "per-shard requests: "
                + ", ".join(
                    f"shard {k}={v}" for k, v in sorted(self.per_shard.items())
                )
            )
        if self.per_tenant:
            lines.append(
                "per-tenant (submits/departs): "
                + ", ".join(
                    f"{k}={v['submits']}/{v['departs']}"
                    for k, v in sorted(self.per_tenant.items(), key=lambda kv: int(kv[0]))
                )
            )
        if self.errors:
            lines.append(f"errors: {self.errors}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "departs": self.departs,
            "actions": self.actions,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_sec": round(self.requests_per_sec, 1),
            "latency_ms": {
                "p50": round(self.latency_percentile(50), 3),
                "p90": round(self.latency_percentile(90), 3),
                "p95": round(self.latency_percentile(95), 3),
                "p99": round(self.latency_percentile(99), 3),
            },
            "drain": self.drain,
            "errors": self.errors,
            "retries": self.retries,
            "reconnects": self.reconnects,
            "timeouts": self.timeouts,
            "breaker_rejected": self.breaker_rejected,
            "deadline_exceeded": self.deadline_exceeded,
            "latency_ms_by_outcome": {
                cls: {
                    "count": len(sample),
                    "p50": round(self.class_percentile(cls, 50), 3),
                    "p99": round(self.class_percentile(cls, 99), 3),
                }
                for cls, sample in sorted(self.class_latencies.items())
            },
            "per_shard": self.per_shard,
            "per_tenant": self.per_tenant,
        }


class _Connection:
    """One reconnectable client connection (JSON lines or binary frames).

    With ``protocol="binary"`` every (re)connect replays the hello
    handshake before any frame is sent, so a mid-run reconnect lands in
    the same protocol the run started in.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float,
        protocol: str = "json",
        faults: Optional[LinkFaults] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.protocol = protocol
        self.faults = faults
        self.version = 1  # refined by the binary handshake ack
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self._held: Optional[bytes] = None  # one reorder-delayed frame
        self._fault_severed = False  # a send fate cut the link mid-window

    async def ensure(self) -> None:
        if self._fault_severed:
            # An injected drop/truncate closed the writer after frames
            # were already queued as in-flight.  Reconnecting silently
            # here would strand those frames: the pump would keep
            # pipelining on the fresh socket and match replies to the
            # wrong window slots.  Surface the severed link as the
            # connection error a real half-open TCP link would raise, so
            # the retry machinery resends the whole unacknowledged
            # window.
            self._fault_severed = False
            raise ConnectionError("injected link fault severed the connection")
        if self.writer is None or self.writer.is_closing():
            if self.faults is not None:
                self.faults.connect_check()
            self.reader, self.writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
            if self.protocol == "binary":
                await self._handshake()

    async def _handshake(self) -> None:
        assert self.reader is not None and self.writer is not None
        self.writer.write(wire.hello_line())
        await self.writer.drain()
        line = await asyncio.wait_for(self.reader.readline(), self.timeout)
        if not line:
            raise ConnectionError("service closed during the binary handshake")
        ack = json.loads(line)
        if not ack.get("ok") or ack.get("protocol") != "binary":
            raise ConnectionError(f"binary handshake refused: {ack}")
        try:
            self.version = int(ack.get("version", 1))
        except (TypeError, ValueError):
            self.version = 1

    def _faulty_write(self, data: bytes) -> bool:
        """Apply the link's send fate; ``True`` if the data was sent.

        Drops and truncations sever the connection instead of silently
        skipping a frame — the retry machinery resends the whole
        unacknowledged window, so the failure is visible and recoverable
        exactly like a real half-open TCP link.
        """
        assert self.writer is not None
        faults = self.faults
        if faults is None:
            self.writer.write(data)
            return True
        verdict, _delay = faults.send_fate()  # delay is virtual-clock only
        if verdict == "drop":
            self._fault_severed = True
            self.writer.close()
            return False
        if verdict == "truncate":
            self._fault_severed = True
            self.writer.write(data[: max(1, len(data) // 2)])
            self.writer.close()
            return False
        self.writer.write(data)
        return True

    def send(self, payload: bytes) -> None:
        """Queue one binary frame (no flush — the caller drains)."""
        assert self.writer is not None
        data = wire.frame(payload)
        faults = self.faults
        if faults is not None and faults.reorder():
            if self._held is None:
                self._held = data  # the next frame will overtake this one
                return
            data, held = data + self._held, None
            self._held = held
        elif self._held is not None:
            data += self._held
            self._held = None
        self._faulty_write(data)

    def flush_held(self) -> None:
        """Release a reorder-delayed frame at a window boundary."""
        if self._held is not None and self.writer is not None:
            held, self._held = self._held, None
            self._faulty_write(held)

    async def read_frame(self) -> bytes:
        assert self.reader is not None
        head = await asyncio.wait_for(
            self.reader.readexactly(wire.HEADER.size), self.timeout
        )
        (length,) = wire.HEADER.unpack(head)
        return await asyncio.wait_for(
            self.reader.readexactly(length), self.timeout
        )

    async def call(self, payload: dict) -> dict:
        await self.ensure()
        assert self.reader is not None and self.writer is not None
        if self.protocol == "binary":
            # control ops (drain, shutdown, ...) ride OP_JSON frames
            self.flush_held()
            self._faulty_write(wire.frame(wire.encode_json_request(payload)))
            await self.writer.drain()
            return wire.decode_response(await self.read_frame())
        self._faulty_write((json.dumps(payload) + "\n").encode())
        await self.writer.drain()
        line = await asyncio.wait_for(self.reader.readline(), self.timeout)
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    async def drop(self) -> None:
        """Abandon the current connection (it is presumed broken)."""
        self._held = None  # the resend window re-sends it anyway
        self._fault_severed = False  # the breakage is now acknowledged
        if self.writer is not None:
            self.writer.close()
            try:
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self.reader = self.writer = None

    async def close(self) -> None:
        await self.drop()


def _job_payload(it) -> dict:
    """One item as the JSON-protocol job object (scalar or vector)."""
    job = {"id": it.item_id, "arrival": it.arrival, "departure": it.departure}
    sizes = getattr(it, "sizes", None)
    if sizes is not None:
        job["sizes"] = list(sizes)
    else:
        job["size"] = it.size
    return job


def _tally(
    report: LoadgenReport, doc: dict, latency_ms: Optional[float] = None
) -> None:
    """Fold one decoded sub-response into the report.

    Three shapes are success: a placement (submit ack, counted per
    action), a bare clock (depart ack — the server applied or had
    already applied the departure), and a clock with a departed count
    (advance ack).  Only a non-ok document is an error; a depart ack
    must never be miscounted as one.  Failures are classified:
    ``deadline_exceeded`` replies and breaker rejections get their own
    counters (and latency class) on top of the ``errors`` total.
    """
    if doc.get("ok"):
        placement = doc.get("placement")
        if placement is not None:
            action = placement["action"]
            report.actions[action] = report.actions.get(action, 0) + 1
            report.note_outcome("ok", latency_ms)
            return
        if "clock" in doc:
            report.note_outcome("ok", latency_ms)
            return  # depart/advance acknowledgement
    cls = "error"
    if doc.get("error_type") == "deadline_exceeded":
        report.deadline_exceeded += 1
        cls = "deadline_exceeded"
    elif doc.get("breaker") == "open":
        report.breaker_rejected += 1
        cls = "breaker_rejected"
    report.errors += 1
    report.note_outcome(cls, latency_ms)


class _FrameMeta:
    """Static accounting for one wire frame built from event groups."""

    __slots__ = ("first_time", "submits", "departs", "tenant_events")

    def __init__(self, group: list, tenants: int):
        self.first_time = group[0][0]
        self.submits = sum(1 for _, kind, _ in group if kind == SUBMIT_EVENT)
        self.departs = len(group) - self.submits
        #: (tenant, kind-name) pairs, resolved once at build time
        self.tenant_events: list = []
        if tenants > 0:
            self.tenant_events = [
                (
                    it.item_id % tenants,
                    "submits" if kind == SUBMIT_EVENT else "departs",
                )
                for _, kind, it in group
            ]

    def account(self, report: LoadgenReport) -> None:
        """Count this frame's events (called on ack *or* on loss)."""
        report.jobs += self.submits
        report.departs += self.departs
        for tenant, kind in self.tenant_events:
            report.count_tenant(tenant, kind)


def _build_frames(
    events: list, batch: int, policy: RetryPolicy, tenants: int
) -> tuple[list[bytes], list[_FrameMeta]]:
    """Pack the timed event stream into wire frames of ``batch`` events.

    Submits and departs may share a frame (the server dispatches each
    sub-request by opcode), so the frame sequence preserves the event
    stream's order exactly — a replayed trace hits the engine in trace
    order even at batch > 1.
    """
    frames: list[bytes] = []
    metas: list[_FrameMeta] = []
    for gi in range(0, len(events), batch):
        group = events[gi : gi + batch]
        subs = [
            wire.encode_submit(
                it,
                request_id=(
                    f"lg-{policy.seed}-{gi}-{k}" if policy.retries else None
                ),
            )
            if kind == SUBMIT_EVENT
            else wire.encode_depart(it.item_id)
            for k, (_, kind, it) in enumerate(group)
        ]
        frames.append(wire.encode_batch(subs) if batch > 1 else subs[0])
        metas.append(_FrameMeta(group, tenants))
    return frames, metas


async def _run_pipelined(
    events: list,
    conn: _Connection,
    report: LoadgenReport,
    policy: RetryPolicy,
    rng: random.Random,
    speed: float,
    pipeline: int,
    batch: int,
    t0: float,
    tenants: int,
    deadline_ms: float = 0.0,
) -> None:
    """The binary fast path: batched frames, ``pipeline`` in flight.

    One coroutine owns the socket: it fills the window, drains the
    writer once per fill, then blocks on the oldest outstanding frame.
    On a connection failure the whole unacknowledged window is resent
    (same frames, same request ids) over a fresh connection — the
    server's idempotency window makes replayed submits exactly-once,
    and the engine's depart idempotence does the same for departs.
    """
    frames, metas = _build_frames(events, batch, policy, tenants)

    def outbound(gi: int) -> bytes:
        """The frame as sent: deadline-wrapped when the peer speaks v2.

        Wrapped at send time, not build time, so every (re)send carries
        a fresh full budget — a retry is a new request as far as the
        deadline is concerned.
        """
        if deadline_ms > 0 and conn.version >= 2:
            return wire.wrap_deadline(frames[gi], deadline_ms)
        return frames[gi]

    trace_start = events[0][0] if events else 0.0
    pending: deque = deque()  # (frame index, sent perf_counter)
    next_gi = 0
    total = len(frames)
    failures = 0
    resp_batch = wire.RESP_BATCH
    while next_gi < total or pending:
        try:
            while next_gi < total and len(pending) < pipeline:
                if speed > 0:
                    due = t0 + (metas[next_gi].first_time - trace_start) / speed
                    now = time.perf_counter()
                    if now < due:
                        if pending:
                            break  # reap acks while the next frame is not due
                        await asyncio.sleep(due - now)
                await conn.ensure()
                conn.send(outbound(next_gi))
                pending.append((next_gi, time.perf_counter()))
                next_gi += 1
            conn.flush_held()
            assert conn.writer is not None
            await conn.writer.drain()
            gi, sent = pending[0]
            payload = await conn.read_frame()
            pending.popleft()
            failures = 0
            latency = (time.perf_counter() - sent) * 1e3
            meta = metas[gi]
            meta.account(report)
            # every event in the frame shares the frame's round trip
            report.latencies_ms.extend(
                [latency] * (meta.submits + meta.departs)
            )
            if payload[0] == resp_batch:
                counts, _dups, others = wire.scan_batch_actions(payload)
                placed = 0
                for code, count in enumerate(counts):
                    if count:
                        name = wire.ACTIONS[code]
                        report.actions[name] = report.actions.get(name, 0) + count
                        placed += count
                if placed:
                    report.class_latencies.setdefault("ok", []).extend(
                        [latency] * placed
                    )
                for doc in others:
                    _tally(report, doc, latency)
            else:
                _tally(report, wire.decode_response(payload), latency)
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            OSError,
        ) as exc:
            if isinstance(exc, asyncio.TimeoutError):
                report.timeouts += 1
            await conn.drop()
            if policy.retries and failures < policy.retries:
                # resend the whole unacknowledged window, oldest first
                failures += 1
                report.retries += len(pending)
                report.reconnects += 1
                await asyncio.sleep(policy.backoff(failures - 1, rng))
                now = time.perf_counter()
                pending = deque((gi, now) for gi, _ in pending)
                try:
                    await conn.ensure()
                    for gi, _ in pending:
                        conn.send(outbound(gi))
                    conn.flush_held()
                except (ConnectionError, asyncio.TimeoutError, OSError):
                    continue  # the next loop iteration retries again
                continue
            # out of retries (or none configured): the window is lost
            window_was_empty = not pending
            for gi, _ in pending:
                metas[gi].account(report)
                report.errors += metas[gi].submits + metas[gi].departs
            pending.clear()
            failures = 0
            if window_was_empty and next_gi < total:
                # nothing was in flight (the connect itself failed):
                # charge the next frame so the loop always advances
                metas[next_gi].account(report)
                report.errors += metas[next_gi].submits + metas[next_gi].departs
                next_gi += 1


async def run_loadgen(
    items: ItemList,
    host: str = "127.0.0.1",
    port: int = 7077,
    speed: float = 0.0,
    drain: bool = True,
    shutdown: bool = False,
    timeout: float = 30.0,
    retry: Optional[RetryPolicy] = None,
    protocol: str = "json",
    pipeline: int = 1,
    batch: int = 1,
    tenants: int = 0,
    departs: bool = False,
    deadline_ms: float = 0.0,
    faults: Optional[LinkFaults] = None,
) -> LoadgenReport:
    """Replay ``items`` as live traffic; returns the client-side report.

    Jobs are submitted in arrival order (the online order).  ``speed``
    selects the driving mode — see the module docstring.  With a
    :class:`RetryPolicy`, submits carry request ids and lost replies are
    retried exactly-once.  ``protocol="binary"`` switches to the
    length-prefixed fast path; ``batch`` events share one frame and up
    to ``pipeline`` frames stay in flight (both require the binary
    protocol).  ``tenants > 0`` rewrites job ids into ``tenants``
    stable per-tenant key streams (:func:`tenantize`) and, after the
    drain, asks the endpoint for its per-shard request counts — the
    fleet router reports them; a plain server leaves them empty.
    ``departs=True`` (trace replay) interleaves explicit depart
    requests at each job's departure time — see the module docstring.
    ``deadline_ms > 0`` attaches that budget to every submit/depart (a
    fresh full budget per attempt — a retry is a new request); the
    service answers ``deadline_exceeded`` when the budget cannot be
    met.  ``faults`` injects deterministic transport faults (delay,
    drop, truncate, reorder, partition) on the client↔service link.
    """
    if deadline_ms < 0:
        raise ValueError(f"deadline_ms must be >= 0, got {deadline_ms}")
    if protocol not in wire.PROTOCOLS:
        raise ValueError(
            f"unknown protocol {protocol!r}; known: {list(wire.PROTOCOLS)}"
        )
    if pipeline < 1:
        raise ValueError(f"pipeline must be >= 1, got {pipeline}")
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    if protocol != "binary" and (pipeline > 1 or batch > 1):
        raise ValueError("pipelining and batching require protocol='binary'")
    policy = retry if retry is not None else RetryPolicy()
    rng = random.Random(policy.seed)
    conn = _Connection(host, port, timeout, protocol, faults=faults)
    await conn.ensure()
    report = LoadgenReport()

    async def call(payload: dict, idempotent: bool) -> dict:
        """One request, retried per the policy when it is safe to."""
        attempts = policy.retries + 1 if idempotent else 1
        for attempt in range(attempts):
            try:
                return await conn.call(payload)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ) as exc:
                if isinstance(exc, asyncio.TimeoutError):
                    report.timeouts += 1
                if attempt + 1 >= attempts:
                    raise
                report.retries += 1
                await conn.drop()
                report.reconnects += 1
                await asyncio.sleep(policy.backoff(attempt, rng))
        raise AssertionError("unreachable")

    ordered = sorted(items, key=lambda it: it.arrival)
    if tenants > 0:
        ordered = tenantize(ordered, tenants)
    events = build_events(ordered, departs)
    t0 = time.perf_counter()
    if protocol == "binary":
        await _run_pipelined(
            events, conn, report, policy, rng, speed, pipeline, batch, t0,
            tenants, deadline_ms,
        )
    else:
        trace_start = events[0][0] if events else 0.0
        for n, (when, kind, it) in enumerate(events):
            if speed > 0:
                due = t0 + (when - trace_start) / speed
                delay = due - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
            is_submit = kind == SUBMIT_EVENT
            if is_submit:
                payload = {"op": "submit", "job": _job_payload(it)}
                if policy.retries:
                    # the request id is what makes the retry exactly-once
                    payload["request_id"] = f"lg-{policy.seed}-{n}"
                idempotent = bool(policy.retries)
            else:
                # depart is engine-idempotent, so always safe to retry
                payload = {"op": "depart", "id": it.item_id}
                idempotent = True
            if deadline_ms > 0:
                payload["deadline_ms"] = deadline_ms
            sent = time.perf_counter()
            try:
                response = await call(payload, idempotent=idempotent)
            except (
                ConnectionError,
                asyncio.IncompleteReadError,
                asyncio.TimeoutError,
                OSError,
            ):
                report.errors += 1
                await conn.drop()
                response = None
            if is_submit:
                report.jobs += 1
            else:
                report.departs += 1
            if tenants > 0:
                report.count_tenant(
                    it.item_id % tenants, "submits" if is_submit else "departs"
                )
            if response is None:
                continue
            latency = (time.perf_counter() - sent) * 1e3
            report.latencies_ms.append(latency)
            _tally(report, response, latency)
    if drain:
        # drain is not idempotent-tagged, but it *is* safe to retry: a
        # second drain on a drained engine returns the same summary
        response = await call({"op": "drain"}, idempotent=bool(policy.retries))
        if response.get("ok"):
            report.drain = {
                k: v for k, v in response.items() if k not in ("ok",)
            }
        else:
            report.errors += 1
    report.wall_seconds = time.perf_counter() - t0
    if tenants > 0:
        # stats is read-only, so always safe to retry
        response = await call({"op": "stats"}, idempotent=True)
        router = response.get("stats", {}).get("router") if response.get("ok") else None
        if isinstance(router, dict):
            report.per_shard = {
                str(i): int(n)
                for i, n in enumerate(router.get("per_shard_requests", ()))
            }
    if shutdown:
        await call({"op": "shutdown"}, idempotent=False)
    await conn.close()
    return report


def loadgen(items: ItemList, **kwargs) -> LoadgenReport:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(items, **kwargs))
