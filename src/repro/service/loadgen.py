"""Closed/open-loop load generator for the allocation service.

``repro loadgen`` replays any workload the repository can generate (or
any saved trace) as live traffic against a running ``repro serve``
endpoint, measuring what the *client* sees: request throughput and
response-time percentiles, plus the placement outcomes.

Two driving modes:

- **closed-loop** (``speed = 0``, default): each submission waits for
  the previous response — back-to-back requests, measuring the
  service's sustainable throughput;
- **open-loop** (``speed > 0``): submissions are paced to the trace's
  arrival times, with ``speed`` trace-time units per wall-clock second
  — measuring latency at a controlled offered load.

Departures ride on the server's own scheduler (the engine applies each
job's departure when the clock passes it), so the generator only sends
arrivals plus one final ``drain``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.items import ItemList

__all__ = ["LoadgenReport", "run_loadgen", "loadgen"]


@dataclass
class LoadgenReport:
    """What the load generator observed, client side."""

    jobs: int = 0
    actions: dict[str, int] = field(default_factory=dict)
    wall_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    drain: dict = field(default_factory=dict)
    errors: int = 0

    @property
    def requests_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.jobs / self.wall_seconds

    def latency_percentile(self, q: float) -> float:
        """q-th latency percentile in milliseconds (nearest-rank)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = min(len(ordered) - 1, max(0, int(q / 100.0 * len(ordered))))
        return ordered[rank]

    def render(self) -> str:
        lines = [
            f"loadgen: {self.jobs} jobs in {self.wall_seconds:.3f}s "
            f"({self.requests_per_sec:.0f} req/s)",
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.actions.items())),
            f"latency ms: p50={self.latency_percentile(50):.3f} "
            f"p90={self.latency_percentile(90):.3f} "
            f"p99={self.latency_percentile(99):.3f}",
        ]
        if self.drain:
            lines.append(
                f"final packing: {self.drain.get('bins')} servers, "
                f"usage time {self.drain.get('total_usage_time', 0.0):.4f}"
            )
        if self.errors:
            lines.append(f"errors: {self.errors}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        return {
            "jobs": self.jobs,
            "actions": self.actions,
            "wall_seconds": round(self.wall_seconds, 6),
            "requests_per_sec": round(self.requests_per_sec, 1),
            "latency_ms": {
                "p50": round(self.latency_percentile(50), 3),
                "p90": round(self.latency_percentile(90), 3),
                "p99": round(self.latency_percentile(99), 3),
            },
            "drain": self.drain,
            "errors": self.errors,
        }


async def run_loadgen(
    items: ItemList,
    host: str = "127.0.0.1",
    port: int = 7077,
    speed: float = 0.0,
    drain: bool = True,
    shutdown: bool = False,
    timeout: float = 30.0,
) -> LoadgenReport:
    """Replay ``items`` as live traffic; returns the client-side report.

    Jobs are submitted in arrival order (the online order).  ``speed``
    selects the driving mode — see the module docstring.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    report = LoadgenReport()

    async def call(payload: dict) -> dict:
        writer.write((json.dumps(payload) + "\n").encode())
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout)
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line)

    ordered = sorted(items, key=lambda it: it.arrival)
    t0 = time.perf_counter()
    trace_start = ordered[0].arrival if ordered else 0.0
    for it in ordered:
        if speed > 0:
            due = t0 + (it.arrival - trace_start) / speed
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
        sent = time.perf_counter()
        response = await call(
            {
                "op": "submit",
                "job": {
                    "id": it.item_id,
                    "size": it.size,
                    "arrival": it.arrival,
                    "departure": it.departure,
                },
            }
        )
        report.latencies_ms.append((time.perf_counter() - sent) * 1e3)
        report.jobs += 1
        if response.get("ok"):
            action = response["placement"]["action"]
            report.actions[action] = report.actions.get(action, 0) + 1
        else:
            report.errors += 1
    if drain:
        response = await call({"op": "drain"})
        if response.get("ok"):
            report.drain = {
                k: v for k, v in response.items() if k not in ("ok",)
            }
        else:
            report.errors += 1
    report.wall_seconds = time.perf_counter() - t0
    if shutdown:
        await call({"op": "shutdown"})
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
        pass
    return report


def loadgen(items: ItemList, **kwargs) -> LoadgenReport:
    """Synchronous wrapper around :func:`run_loadgen`."""
    return asyncio.run(run_loadgen(items, **kwargs))
