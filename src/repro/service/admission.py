"""Admission control for the live allocation service.

A batch experiment packs every item unconditionally — the instance is
the instance.  A live service facing heavy traffic cannot: open-server
budgets (a fleet quota) and utilisation budgets (a load ceiling) bound
what it may accept, and the remaining choices are the classic three —
**reject** the job outright, **queue** it until capacity frees up, or
**shed** it under overload.  Policies here decide; the
:class:`~repro.service.engine.StreamingEngine` executes the decision
and accounts it per policy and in the metrics registry.

Decisions are plain strings (``"admit" | "reject" | "queue" | "shed"``)
so the per-decision trace log stays schema-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import StreamingEngine

__all__ = [
    "ADMIT",
    "REJECT",
    "QUEUE",
    "SHED",
    "AdmissionPolicy",
    "AdmitAll",
    "OpenServerBudget",
    "LoadShedding",
    "make_admission_policy",
]

ADMIT = "admit"
REJECT = "reject"
QUEUE = "queue"
SHED = "shed"

_ACTIONS = (ADMIT, REJECT, QUEUE, SHED)


class AdmissionPolicy:
    """Base policy: admit everything, count everything.

    Subclasses override :meth:`decide`; the engine calls
    :meth:`account` with the action actually taken, so ``counts`` is
    the per-policy accounting the service exposes (a queued job that is
    later placed is counted once under ``queue`` and once under
    ``admit`` at placement time).
    """

    name = "admit-all"

    def __init__(self) -> None:
        self.counts: dict[str, int] = {a: 0 for a in _ACTIONS}

    def decide(self, engine: "StreamingEngine", item) -> str:
        """Classify an arriving item.  Must not mutate the engine."""
        return ADMIT

    def admit_queued(self, engine: "StreamingEngine", item) -> bool:
        """Whether a queued item may be placed now (head-of-line retry)."""
        return self.decide(engine, item) == ADMIT

    def account(self, action: str) -> None:
        if action not in self.counts:
            raise ValueError(f"unknown admission action {action!r}")
        self.counts[action] += 1

    # -- checkpoint support ---------------------------------------------------
    def snapshot(self) -> dict:
        return dict(self.counts)

    def restore(self, payload: dict) -> None:
        self.counts = {a: int(payload.get(a, 0)) for a in _ACTIONS}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} {self.counts}>"


class AdmitAll(AdmissionPolicy):
    """The no-op policy — the default, and the bit-identity baseline.

    Replaying a trace through an engine with :class:`AdmitAll` must
    reproduce the batch engines exactly (the differential tests run
    through this policy).
    """


class OpenServerBudget(AdmissionPolicy):
    """Cap the number of simultaneously open servers.

    A job is turned away only when admitting it would *open a new
    server* beyond the budget — jobs that fit into an already-open bin
    are always admitted (they consume no new fleet quota).  ``on_full``
    selects the overload behaviour: ``"reject"`` (default) or
    ``"queue"`` (hold in FIFO order until a departure frees capacity).
    """

    def __init__(self, max_open: int, on_full: str = REJECT):
        super().__init__()
        if max_open < 1:
            raise ValueError(f"max_open must be >= 1, got {max_open}")
        if on_full not in (REJECT, QUEUE):
            raise ValueError(f"on_full must be 'reject' or 'queue', got {on_full!r}")
        self.max_open = int(max_open)
        self.on_full = on_full
        self.name = f"open-server-budget({max_open},{on_full})"

    def decide(self, engine: "StreamingEngine", item) -> str:
        if engine.state.num_open < self.max_open or engine.can_fit(item):
            return ADMIT
        return self.on_full


class LoadShedding(AdmissionPolicy):
    """Shed arrivals once the fleet-wide load crosses a ceiling.

    Load is measured in *bins' worth of work*: the running sum of open
    bin levels divided by capacity (per dimension for the vector
    engine, taking the binding resource).  When placing the item would
    push the load above ``max_load`` the job is shed — dropped under
    overload rather than queued, the standard backpressure behaviour
    for latency-sensitive traffic.
    """

    def __init__(self, max_load: float):
        super().__init__()
        if max_load <= 0:
            raise ValueError(f"max_load must be positive, got {max_load}")
        self.max_load = float(max_load)
        self.name = f"load-shedding({max_load:g})"

    def decide(self, engine: "StreamingEngine", item) -> str:
        if engine.load() + engine.item_load(item) > self.max_load:
            return SHED
        return ADMIT


def make_admission_policy(
    spec: str, max_open: int | None = None, max_load: float | None = None
) -> AdmissionPolicy:
    """Build a policy from CLI-ish arguments.

    ``spec`` ∈ {"admit-all", "reject", "queue", "shed"}; the budgeted
    specs require the matching budget argument.
    """
    if spec == "admit-all":
        return AdmitAll()
    if spec in (REJECT, QUEUE):
        if max_open is None:
            raise ValueError(f"admission policy {spec!r} requires --max-open")
        return OpenServerBudget(max_open, on_full=spec)
    if spec == SHED:
        if max_load is None:
            raise ValueError("admission policy 'shed' requires --max-load")
        return LoadShedding(max_load)
    raise ValueError(
        f"unknown admission policy {spec!r}; known: admit-all, reject, queue, shed"
    )
