"""Rendering for offline assignments and repacking schedules.

Completes the visualisation set: :mod:`repro.viz.timeline` draws online
packings; these renderers draw the two offline artifacts — the
non-migratory :class:`~repro.offline.assignment.Assignment` (one row per
server group, busy episodes marked) and the repacking adversary's
:class:`~repro.opt.schedule.RepackingSchedule` (bin count over time with
migration markers).
"""

from __future__ import annotations

from ..offline.assignment import Assignment
from ..opt.schedule import RepackingSchedule

__all__ = ["render_assignment", "render_schedule"]

_WIDTH = 72


def _scale(t: float, t0: float, t1: float, width: int) -> int:
    if t1 <= t0:
        return 0
    pos = int(round((t - t0) / (t1 - t0) * (width - 1)))
    return max(0, min(width - 1, pos))


def render_assignment(assignment: Assignment, width: int = _WIDTH) -> str:
    """One row per group; busy episodes solid, idle (unbilled) gaps dots."""
    items = assignment.items
    period = items.packing_period
    t0, t1 = period.left, period.right
    lines = [
        f"offline non-migratory assignment: {assignment.num_groups} groups, "
        f"cost {assignment.cost():.3f}"
    ]
    for gi in range(assignment.num_groups):
        row = [" "] * width
        episodes = assignment.busy_intervals(gi)
        if episodes:
            first = _scale(episodes[0].left, t0, t1, width)
            last = max(_scale(episodes[-1].right, t0, t1, width), first + 1)
            for i in range(first, last):
                row[i] = "·"  # span of the group (idle shown as dots)
        for ep in episodes:
            lo = _scale(ep.left, t0, t1, width)
            hi = max(_scale(ep.right, t0, t1, width), lo + 1)
            for i in range(lo, hi):
                row[i] = "█"
        jobs = len(assignment.groups[gi])
        lines.append(f"group {gi:>3d} |{''.join(row)}| {jobs} jobs")
    return "\n".join(lines)


def render_schedule(schedule: RepackingSchedule, width: int = _WIDTH) -> str:
    """The adversary's bin count over time; '!' marks migration steps."""
    if not schedule.intervals:
        return "(empty schedule)"
    t0 = schedule.intervals[0].start
    t1 = schedule.intervals[-1].end
    max_bins = max(iv.num_bins for iv in schedule.intervals)
    lines = [
        f"repacking adversary: cost {schedule.total_usage_time:.3f}, "
        f"{schedule.migrations} migrations "
        f"({schedule.migrations_per_item_event:.2f}/step)"
    ]
    for level in range(max_bins, 0, -1):
        row = [" "] * width
        for iv in schedule.intervals:
            if iv.num_bins >= level:
                lo = _scale(iv.start, t0, t1, width)
                hi = max(_scale(iv.end, t0, t1, width), lo + 1)
                for i in range(lo, hi):
                    row[i] = "█"
        lines.append(f"{level:>3d} bins |{''.join(row)}|")
    # migration markers between consecutive intervals
    from ..opt.schedule import _count_migrations

    row = [" "] * width
    for a, b in zip(schedule.intervals, schedule.intervals[1:]):
        if _count_migrations(a.bins, b.bins) > 0:
            row[_scale(b.start, t0, t1, width)] = "!"
    lines.append(f"{'moves':>8s} |{''.join(row)}|")
    return "\n".join(lines)
