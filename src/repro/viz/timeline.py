"""ASCII timeline rendering for the paper's structural figures.

The paper's Figures 1–4 are timeline diagrams: item intervals, bin usage
periods with their V/W split, subperiods, supplier periods.  These
renderers draw the same structures as fixed-width text so the figure
benchmarks can regenerate them from computed data (no plotting
dependencies; output diffs cleanly in CI).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.intervals import Interval
from ..core.items import ItemList
from ..core.result import PackingResult
from ..analysis.supplier import SupplierAnalysis
from ..analysis.usage_periods import UsagePeriodDecomposition

__all__ = [
    "render_items",
    "render_bins",
    "render_usage_decomposition",
    "render_subperiods",
]

_WIDTH = 72


def _scale(t: float, t0: float, t1: float, width: int) -> int:
    if t1 <= t0:
        return 0
    pos = int(round((t - t0) / (t1 - t0) * (width - 1)))
    return max(0, min(width - 1, pos))


def _bar(interval: Interval, t0: float, t1: float, width: int, ch: str) -> str:
    lo = _scale(interval.left, t0, t1, width)
    hi = _scale(interval.right, t0, t1, width)
    hi = max(hi, lo + 1)
    return " " * lo + ch * (hi - lo) + " " * (width - hi)


def render_items(items: ItemList, width: int = _WIDTH) -> str:
    """Figure-1 style: one row per item, plus the span row."""
    period = items.packing_period
    t0, t1 = period.left, period.right
    lines = [f"time {t0:g} .. {t1:g}   (span = {items.span:g})"]
    for it in items:
        bar = _bar(it.interval, t0, t1, width, "█")
        lines.append(f"item {it.item_id:>3d} s={it.size:<5.3g} |{bar}|")
    # span row: union of intervals
    from ..core.intervals import merge_intervals

    union = merge_intervals(it.interval for it in items)
    row = [" "] * width
    for iv in union:
        lo = _scale(iv.left, t0, t1, width)
        hi = max(_scale(iv.right, t0, t1, width), lo + 1)
        for i in range(lo, hi):
            row[i] = "─"
    lines.append(f"{'span':>14s} |{''.join(row)}|")
    return "\n".join(lines)


def render_bins(result: PackingResult, width: int = _WIDTH) -> str:
    """One row per bin: its usage period."""
    period = result.items.packing_period
    t0, t1 = period.left, period.right
    lines = [f"{result.algorithm_name}: {result.num_bins} bins"]
    for b in result.bins:
        bar = _bar(b.usage_period, t0, t1, width, "█")
        lines.append(f"bin {b.index:>3d} |{bar}| |U|={b.usage_time:g}")
    return "\n".join(lines)


def render_usage_decomposition(
    result: PackingResult, deco: UsagePeriodDecomposition, width: int = _WIDTH
) -> str:
    """Figure-2 style: V (light) and W (solid) parts of each usage period."""
    period = result.items.packing_period
    t0, t1 = period.left, period.right
    lines = [
        f"usage periods of {result.algorithm_name} "
        f"(V=░ overlapped, W=█ exclusive; ΣW = span = {deco.span:g})"
    ]
    for bp in deco.per_bin:
        row = [" "] * width
        for iv, ch in ((bp.overlapped, "░"), (bp.exclusive, "█")):
            if iv.is_empty:
                continue
            lo = _scale(iv.left, t0, t1, width)
            hi = max(_scale(iv.right, t0, t1, width), lo + 1)
            for i in range(lo, hi):
                row[i] = ch
        lines.append(
            f"bin {bp.index:>3d} |{''.join(row)}| "
            f"|V|={bp.v_length:g} |W|={bp.w_length:g} E={bp.latest_earlier_close:g}"
        )
    return "\n".join(lines)


def render_subperiods(
    result: PackingResult, analysis: SupplierAnalysis, width: int = _WIDTH
) -> str:
    """Figures 3–4 style: l/h subperiods plus supplier periods per bin."""
    period = result.items.packing_period
    t0, t1 = period.left, period.right
    lines = [
        "subperiods (l=▒ low-utilisation candidate, h=█ level ≥ 1/2) and "
        "supplier periods (s, on the supplier bin's row)"
    ]
    supplier_rows: dict[int, list[str]] = {}
    for g in analysis.groups:
        row = supplier_rows.setdefault(g.supplier_index, [" "] * width)
        lo = _scale(g.supplier_period.left, t0, t1, width)
        hi = max(_scale(g.supplier_period.right, t0, t1, width), lo + 1)
        for i in range(lo, hi):
            row[i] = "s"
    for bsp in analysis.per_bin:
        row = [" "] * width
        for y in bsp.h_subperiods:
            lo = _scale(y.interval.left, t0, t1, width)
            hi = max(_scale(y.interval.right, t0, t1, width), lo + 1)
            for i in range(lo, hi):
                row[i] = "█"
        for x in bsp.l_subperiods:
            lo = _scale(x.interval.left, t0, t1, width)
            hi = max(_scale(x.interval.right, t0, t1, width), lo + 1)
            for i in range(lo, hi):
                row[i] = "▒"
        lines.append(f"bin {bsp.bin_index:>3d} |{''.join(row)}|")
        srow = supplier_rows.get(bsp.bin_index)
        if srow is not None:
            lines.append(f"  as supplier |{''.join(srow)}|")
    return "\n".join(lines)
