"""ASCII rendering of the paper's timeline figures."""

from .schedule_view import render_assignment, render_schedule
from .timeline import (
    render_bins,
    render_items,
    render_subperiods,
    render_usage_decomposition,
)

__all__ = [
    "render_assignment",
    "render_bins",
    "render_schedule",
    "render_items",
    "render_subperiods",
    "render_usage_decomposition",
]
