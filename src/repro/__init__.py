"""repro — MinUsageTime Dynamic Bin Packing for online cloud server allocation.

A complete, from-scratch reproduction of

    Xueyan Tang, Yusen Li, Runtian Ren, Wentong Cai.
    "On First Fit Bin Packing for Online Cloud Server Allocation."
    IEEE IPDPS 2016.

Quick start
-----------
>>> from repro import Item, ItemList, FirstFit, run_packing, opt_total
>>> items = ItemList([
...     Item(0, size=0.6, arrival=0.0, departure=2.0),
...     Item(1, size=0.5, arrival=0.5, departure=1.5),
...     Item(2, size=0.4, arrival=1.0, departure=3.0),
... ])
>>> result = run_packing(items, FirstFit())
>>> result.total_usage_time
4.0
>>> opt = opt_total(items)
>>> result.total_usage_time <= (items.mu + 4) * opt.lower + 1e-9   # Theorem 1
True

Package map
-----------
- :mod:`repro.core` — intervals, items, events, bins, packing driver.
- :mod:`repro.algorithms` — First/Best/Worst/Last/Random/Next Fit, hybrids.
- :mod:`repro.opt` — the repacking adversary (OPT_total) and bounds.
- :mod:`repro.analysis` — mechanisation of the paper's proof structures.
- :mod:`repro.workloads` — random, adversarial and cloud-gaming generators.
- :mod:`repro.cloud` — servers, billing, dispatching (the application layer).
- :mod:`repro.multidim` — multi-dimensional extension (paper's future work).
- :mod:`repro.experiments` — the per-figure/table reproduction harness.
"""

from .algorithms import (
    ALGORITHM_REGISTRY,
    AnyFitAlgorithm,
    BestFit,
    ClassifiedNextFit,
    FirstFit,
    HybridFirstFit,
    LastFit,
    NextFit,
    PackingAlgorithm,
    RandomFit,
    WorstFit,
    make_algorithm,
)
from .core import (
    Bin,
    Interval,
    Item,
    ItemList,
    PackingResult,
    PackingState,
    event_sequence,
    run_packing,
    span,
)
from .opt import (
    BinCountBracket,
    OptTotalBracket,
    competitive_ratio_bracket,
    exact_bin_count,
    fractional_ceiling_bound,
    opt_total,
    prop1_time_space_bound,
    prop2_span_bound,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHM_REGISTRY",
    "AnyFitAlgorithm",
    "BestFit",
    "Bin",
    "BinCountBracket",
    "ClassifiedNextFit",
    "FirstFit",
    "HybridFirstFit",
    "Interval",
    "Item",
    "ItemList",
    "LastFit",
    "NextFit",
    "OptTotalBracket",
    "PackingAlgorithm",
    "PackingResult",
    "PackingState",
    "RandomFit",
    "WorstFit",
    "__version__",
    "competitive_ratio_bracket",
    "event_sequence",
    "exact_bin_count",
    "fractional_ceiling_bound",
    "make_algorithm",
    "opt_total",
    "prop1_time_space_bound",
    "prop2_span_bound",
    "run_packing",
    "span",
]
